//! Fabric-scaling experiment: how the control-plane gap grows with the
//! array.
//!
//! The paper models a centralized configuration change as a CCU round
//! trip of "~corner distance" of the mesh — a cost that *grows* with the
//! fabric, while Marionette's proactive switch stays one cycle. This
//! sweep runs every kernel on the same presets instantiated at several
//! fabric sizes (default 4×4, 6×6 and 8×8 — scales the paper didn't
//! plot) and reports, per fabric, the geomean cycle gap of each preset
//! against full Marionette. Every point is driven through the complete
//! compile → bitstream → simulate stack and bit-verified against the
//! reference interpreter (arrays, sink streams, out-of-bounds counts and
//! firing totals).
//!
//! ```text
//! fabric_sweep [--fabrics 4x4,6x6,8x8] [--presets vN,DF,M-PE,M-CN,M]
//!              [--kernels A,B] [--scale tiny|small|paper]
//!              [--search MOVES[,RESTARTS]] [--max-cycles N]
//!              [--out BENCH_fabric.json]
//! ```
//!
//! With `--search`, each point is additionally compiled with the
//! annealing mapping explorer and re-verified (`cycles_search`).
//! Exit codes: `0` every point verified, `1` any pipeline or
//! verification failure, `2` usage errors.

use marionette::arch::{Architecture, FabricDims};
use marionette::compiler::SearchBudget;
use marionette::experiments::geomean;
use marionette::kernels::traits::Scale;
use marionette::parallel::{par_map, sweep_threads};
use marionette::report::json_escape;
use marionette_lang::driver::{reference, run_preset, Reference, INTERP_BUDGET};
use std::time::Instant;

const SEED: u64 = 1;
const DEFAULT_MAX_CYCLES: u64 = 4_000_000_000;

struct Args {
    fabrics: Vec<FabricDims>,
    presets: String,
    kernels: Option<String>,
    scale: Scale,
    search: Option<(u32, u32)>,
    max_cycles: u64,
    out: String,
}

fn usage() -> String {
    "usage: fabric_sweep [--fabrics 4x4,6x6,8x8] [--presets vN,DF,M-PE,M-CN,M] \
     [--kernels A,B] [--scale tiny|small|paper] [--search MOVES[,RESTARTS]] \
     [--max-cycles N] [--out PATH]"
        .to_string()
}

const KNOWN_FLAGS: &[&str] = &[
    "--fabrics",
    "--presets",
    "--kernels",
    "--scale",
    "--search",
    "--max-cycles",
    "--out",
];

fn parse_args(argv: &[String]) -> Result<Args, String> {
    // Strict argv validation: every token must be a known flag or the
    // value of the preceding one (a typo'd `--fabric` must error, not
    // silently run the default 4x4,6x6,8x8 sweep).
    let mut i = 1;
    while i < argv.len() {
        if !KNOWN_FLAGS.contains(&argv[i].as_str()) {
            return Err(format!("unknown argument `{}`\n{}", argv[i], usage()));
        }
        i += 2; // the flag's value (validated by the per-flag parser)
    }
    let get = |flag: &str| -> Result<Option<String>, String> {
        match argv.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
                _ => Err(format!("{flag} needs a value\n{}", usage())),
            },
        }
    };
    let fabrics = get("--fabrics")?
        .unwrap_or_else(|| "4x4,6x6,8x8".to_string())
        .split(',')
        .map(|s| s.trim().parse::<FabricDims>())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("--fabrics: {e}"))?;
    if fabrics.is_empty() {
        return Err("--fabrics needs at least one RxC entry".to_string());
    }
    let search = match get("--search")? {
        None => None,
        Some(spec) => {
            let mut it = spec.split(',').map(str::trim);
            let moves: u32 = it
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("--search needs MOVES[,RESTARTS], got `{spec}`"))?;
            let restarts: u32 = match it.next() {
                None => 1,
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("--search RESTARTS must be numeric, got `{v}`"))?,
            };
            Some((moves, restarts))
        }
    };
    Ok(Args {
        fabrics,
        presets: get("--presets")?.unwrap_or_else(|| "vN,DF,M-PE,M-CN,M".to_string()),
        kernels: get("--kernels")?,
        scale: match get("--scale")?.as_deref() {
            None | Some("small") => Scale::Small,
            Some("tiny") => Scale::Tiny,
            Some("paper") => Scale::Paper,
            Some(other) => {
                return Err(format!(
                    "--scale: `{other}` is not one of tiny, small, paper"
                ))
            }
        },
        search,
        max_cycles: match get("--max-cycles")? {
            None => DEFAULT_MAX_CYCLES,
            Some(v) => v
                .parse()
                .map_err(|_| format!("--max-cycles must be numeric, got `{v}`"))?,
        },
        out: get("--out")?.unwrap_or_else(|| "BENCH_fabric.json".to_string()),
    })
}

/// Kernel tags, filtered by `--kernels`.
fn kernel_tags(filter: Option<&str>) -> Result<Vec<String>, String> {
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    if let Some(filter) = filter {
        let want: Vec<String> = filter
            .split(',')
            .map(|s| s.trim().to_uppercase())
            .filter(|s| !s.is_empty())
            .collect();
        tags.retain(|t| want.iter().any(|w| w == &t.to_uppercase()));
        if tags.is_empty() {
            return Err(format!("no kernels match --kernels {filter}"));
        }
    }
    Ok(tags)
}

struct Measured {
    kernel: String,
    fabric: FabricDims,
    arch: String,
    cycles: u64,
    fires: u64,
    switch_stalls: u64,
    cycles_search: Option<u64>,
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fabric_sweep: {e}");
            std::process::exit(2);
        }
    };
    // Selection problems (unknown kernel/preset tags) are usage errors.
    let selection = (|| -> Result<_, String> {
        let tags = kernel_tags(args.kernels.as_deref())?;
        let mut grids: Vec<(FabricDims, Vec<Architecture>)> = Vec::new();
        for &dims in &args.fabrics {
            let mut archs = marionette::arch::presets_by_tags_on(dims, &args.presets)?;
            if archs.is_empty() {
                return Err("empty preset selection".to_string());
            }
            for a in &mut archs {
                a.opts.search = SearchBudget::Off;
            }
            grids.push((dims, archs));
        }
        Ok((tags, grids))
    })();
    let (tags, grids) = match selection {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fabric_sweep: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args, tags, grids) {
        eprintln!("fabric_sweep: {e}");
        std::process::exit(1);
    }
}

fn run(
    args: &Args,
    tags: Vec<String>,
    grids: Vec<(FabricDims, Vec<Architecture>)>,
) -> Result<(), String> {
    let t0 = Instant::now();
    let threads = sweep_threads();

    // The CDFG and its reference interpretation are fabric-independent:
    // build and interpret each kernel once, then fan the fabric × preset
    // simulations out over threads.
    let refs: Vec<Result<(String, marionette::cdfg::Cdfg, Reference), String>> =
        par_map(tags.clone(), threads, |tag| {
            let k = marionette::kernels::by_short(&tag)
                .ok_or_else(|| format!("{tag}: unknown kernel tag"))?;
            let wl = k.workload(args.scale, SEED);
            let g = k.build(&wl).map_err(|e| format!("{tag}: build: {e}"))?;
            let r =
                reference(&g, &[], INTERP_BUDGET).map_err(|e| format!("{tag}: reference: {e}"))?;
            Ok((tag, g, r))
        });
    let mut kernels = Vec::with_capacity(refs.len());
    for r in refs {
        kernels.push(r?);
    }

    let points: Vec<(usize, FabricDims, Architecture)> = (0..kernels.len())
        .flat_map(|ki| {
            grids
                .iter()
                .flat_map(move |(dims, archs)| archs.iter().map(move |a| (ki, *dims, a.clone())))
        })
        .collect();
    let npoints = points.len();
    let kernels_ref = &kernels;
    let outcomes = par_map(
        points,
        threads,
        |(ki, dims, arch)| -> Result<Measured, String> {
            let (tag, g, reference) = &kernels_ref[ki];
            let what = || format!("{tag} on {} at {dims}", arch.short);
            let run = run_preset(g, reference, &arch, &[], args.max_cycles, false)
                .map_err(|e| format!("{}: {e}", what()))?;
            let cycles_search = match args.search {
                None => None,
                Some((moves, restarts)) => {
                    let mut searched = arch.clone();
                    searched.opts.search = SearchBudget::Anneal {
                        moves,
                        restarts,
                        base_seed: 0xA11E,
                    };
                    let rs = run_preset(g, reference, &searched, &[], args.max_cycles, false)
                        .map_err(|e| format!("{} (search): {e}", what()))?;
                    Some(rs.cycles)
                }
            };
            Ok(Measured {
                kernel: tag.clone(),
                fabric: dims,
                arch: arch.short.to_string(),
                cycles: run.cycles,
                fires: run.fires,
                switch_stalls: run.switch_stall_cycles,
                cycles_search,
            })
        },
    );
    let mut measured = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        measured.push(o?);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Control-plane gap: per fabric, the geomean over kernels of each
    // preset's cycles relative to full Marionette on the same fabric.
    let preset_order: Vec<String> = grids[0].1.iter().map(|a| a.short.to_string()).collect();
    let has_m = preset_order.iter().any(|p| p == "M");
    let mut gap: Vec<(FabricDims, Vec<(String, f64)>)> = Vec::new();
    if has_m {
        for &(dims, _) in &grids {
            let cycles_of = |kernel: &str, arch: &str| -> Option<u64> {
                measured
                    .iter()
                    .find(|m| m.fabric == dims && m.kernel == *kernel && m.arch == arch)
                    .map(|m| m.cycles)
            };
            let mut per_preset = Vec::new();
            for p in &preset_order {
                if p == "M" {
                    continue;
                }
                let ratios: Vec<f64> = kernels
                    .iter()
                    .filter_map(|(tag, _, _)| {
                        Some(cycles_of(tag, p)? as f64 / cycles_of(tag, "M")? as f64)
                    })
                    .collect();
                per_preset.push((p.clone(), geomean(&ratios)));
            }
            gap.push((dims, per_preset));
        }
    }

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.fabric_sweep/v1\",\n");
    j.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match args.scale {
            Scale::Tiny => "tiny",
            Scale::Paper => "paper",
            _ => "small",
        }
    ));
    j.push_str(&format!("  \"seed\": {SEED},\n"));
    j.push_str(&format!(
        "  \"fabrics\": [{}],\n",
        args.fabrics
            .iter()
            .map(|d| format!("\"{d}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!(
        "  \"presets\": [{}],\n",
        preset_order
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    match args.search {
        Some((m, r)) => j.push_str(&format!(
            "  \"search\": {{\"moves\": {m}, \"restarts\": {r}}},\n"
        )),
        None => j.push_str("  \"search\": null,\n"),
    }
    j.push_str(&format!("  \"total_wall_ms\": {wall_ms:.3},\n"));
    j.push_str("  \"gap_vs_marionette\": [\n");
    for (i, (dims, per_preset)) in gap.iter().enumerate() {
        let cells: Vec<String> = per_preset
            .iter()
            .map(|(p, g)| format!("\"{}\": {g:.4}", json_escape(p)))
            .collect();
        j.push_str(&format!(
            "    {{\"fabric\": \"{dims}\", {}}}{}\n",
            cells.join(", "),
            if i + 1 == gap.len() { "" } else { "," }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"points\": [\n");
    for (i, m) in measured.iter().enumerate() {
        let search_field = match m.cycles_search {
            Some(cs) => format!(", \"cycles_search\": {cs}"),
            None => String::new(),
        };
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"fabric\": \"{}\", \"arch\": \"{}\", \"cycles\": {}, \"fires\": {}, \"switch_stall_cycles\": {}{}, \"verified\": true}}{}\n",
            json_escape(&m.kernel),
            m.fabric,
            json_escape(&m.arch),
            m.cycles,
            m.fires,
            m.switch_stalls,
            search_field,
            if i + 1 == measured.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&args.out, &j).map_err(|e| format!("writing {}: {e}", args.out))?;

    println!(
        "fabric_sweep: {} kernels x {} fabrics x {} presets = {npoints} points, all bit-verified vs the interpreter, {wall_ms:.1} ms ({threads} threads) -> {}",
        kernels.len(),
        grids.len(),
        preset_order.len(),
        args.out
    );
    for (dims, per_preset) in &gap {
        let cells: Vec<String> = per_preset
            .iter()
            .map(|(p, g)| format!("{p} {g:.2}x"))
            .collect();
        println!(
            "fabric_sweep: {dims} geomean cycles vs Marionette: {}",
            cells.join(", ")
        );
    }
    Ok(())
}
