//! Fig 16: the speedup balance between the control network and Agile PE
//! Assignment — which kernels benefit from which feature.

use marionette::experiments::fig16;
use marionette_bench::{report, scale_from_args};

fn main() {
    let f = fig16(scale_from_args(), 1).expect("experiment");
    report::print_fig16(&f);
}
