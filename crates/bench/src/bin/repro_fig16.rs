//! Fig 16: the speedup balance between the control network and Agile PE
//! Assignment — which kernels benefit from which feature.

use marionette::experiments::fig16;
use marionette_bench::{banner, scale_from_args};

fn main() {
    banner("Fig 16 — control network vs Agile PE Assignment", "MICRO'23 Fig 16");
    let f = fig16(scale_from_args(), 1).expect("experiment");
    println!("{:<8} {:>14} {:>14} {:>22}", "kernel", "ctrl-net gain", "agile gain", "dominant feature");
    for i in 0..f.kernels.len() {
        let cn = f.cn_speedup[i];
        let ag = f.agile_speedup[i];
        let who = if (cn - 1.0) > 1.25 * (ag - 1.0) {
            "network"
        } else if (ag - 1.0) > 1.25 * (cn - 1.0) {
            "pipeline (agile)"
        } else {
            "balanced"
        };
        println!("{:<8} {:>13.2}x {:>13.2}x {:>22}", f.kernels[i], cn, ag, who);
    }
    println!("----------------------------------------------------------------");
    println!("Paper: MS/ADPCM/CRC/LDPC lean on the network; VI/HT/SCD/GEMM on Agile.");
}
