//! Mapping-quality explorer report: greedy vs annealed mapping for every
//! kernel × architecture point.
//!
//! For each point the tool compiles twice — once with the legacy one-shot
//! pipeline and once with the annealing mapping explorer — simulates
//! both mappings, and emits a JSON report with the cost-model breakdown,
//! route statistics, per-route stall attribution and the cycle delta.
//!
//! ```text
//! map_explore [--moves N] [--restarts K] [--seed S] [--kernels A,B]
//!             [--presets M,vN,...] [--scale tiny|small|paper]
//!             [--fabric RxC] [--no-sim] [--out PATH]
//! ```
//!
//! `--no-sim` skips the simulations (cost model only), for quick smoke
//! runs in CI.

use marionette::arch::{Architecture, FabricDims};
use marionette::compiler::explore::greedy_cost;
use marionette::compiler::{compile, CostModel, SearchBudget, SearchReport};
use marionette::kernels::traits::Scale;
use marionette::parallel::{par_map, sweep_threads};
use marionette::runner::{compile_for_arch, run_kernel, DEFAULT_MAX_CYCLES};

const SEED: u64 = 1;

struct Args {
    moves: u32,
    restarts: u32,
    base_seed: u64,
    kernels: Option<String>,
    presets: Option<String>,
    scale: Scale,
    fabric: FabricDims,
    simulate: bool,
    out: String,
}

/// Parses a flag's value strictly: an absent flag yields the default, a
/// present flag with a missing or malformed value is a usage error.
fn numeric<T: std::str::FromStr>(argv: &[String], flag: &str, default: T) -> Result<T, String> {
    match argv.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => {
            let v = argv
                .get(i + 1)
                .ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse()
                .map_err(|_| format!("{flag}: `{v}` is not a valid value"))
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Result<Option<String>, String> {
        match argv.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match argv.get(i + 1) {
                // A flag-like token is a forgotten value, not a value.
                Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
                _ => Err(format!("{flag} needs a value")),
            },
        }
    };
    let has = |flag: &str| argv.iter().any(|a| a == flag);
    Ok(Args {
        moves: numeric(&argv, "--moves", 1500)?,
        restarts: numeric(&argv, "--restarts", 2)?,
        base_seed: numeric(&argv, "--seed", 0xA11E)?,
        kernels: get("--kernels")?,
        presets: get("--presets")?,
        scale: match get("--scale")?.as_deref() {
            None | Some("small") => Scale::Small,
            Some("tiny") => Scale::Tiny,
            Some("paper") => Scale::Paper,
            Some(other) => {
                return Err(format!(
                    "--scale: `{other}` is not one of tiny, small, paper"
                ))
            }
        },
        fabric: match get("--fabric")? {
            None => FabricDims::paper(),
            Some(spec) => spec.parse().map_err(|e| format!("--fabric: {e}"))?,
        },
        simulate: !has("--no-sim"),
        out: get("--out")?.unwrap_or_else(|| "MAP_explore.json".to_string()),
    })
}

struct PointReport {
    kernel: String,
    arch: String,
    nodes: usize,
    routes: usize,
    greedy: Side,
    explored: Side,
}

#[derive(Default)]
struct Side {
    cost_total: f64,
    latency: f64,
    congestion: f64,
    pressure: f64,
    fanout: f64,
    mean_data_hops: f64,
    cycles: Option<u64>,
    link_stalls: Option<u64>,
    top_stalled: Vec<(u32, u64)>,
    accepted: u32,
    attempted: u32,
    rerouted: usize,
    chain_seed: u64,
}

fn side_of_search(sr: &SearchReport, mean_data_hops: f64) -> Side {
    Side {
        cost_total: sr.best_total,
        latency: sr.best_cost.latency,
        congestion: sr.best_cost.congestion,
        pressure: sr.best_cost.pressure,
        fanout: sr.best_cost.fanout,
        accepted: sr.accepted,
        attempted: sr.attempted,
        rerouted: sr.rerouted,
        chain_seed: sr.seed,
        mean_data_hops,
        ..Side::default()
    }
}

fn json_side(s: &Side) -> String {
    let mut j = format!(
        "{{\"cost\": {:.3}, \"latency\": {:.3}, \"congestion\": {:.3}, \"pressure\": {:.3}, \"fanout\": {:.1}, \"mean_data_hops\": {:.3}",
        s.cost_total, s.latency, s.congestion, s.pressure, s.fanout, s.mean_data_hops
    );
    if let Some(c) = s.cycles {
        j.push_str(&format!(", \"cycles\": {c}"));
    }
    if let Some(l) = s.link_stalls {
        j.push_str(&format!(", \"link_stall_cycles\": {l}"));
        let tops: Vec<String> = s
            .top_stalled
            .iter()
            .map(|(r, c)| format!("[{r}, {c}]"))
            .collect();
        j.push_str(&format!(", \"top_stalled_routes\": [{}]", tops.join(", ")));
    }
    if s.attempted > 0 {
        j.push_str(&format!(
            ", \"accepted\": {}, \"attempted\": {}, \"rerouted\": {}, \"chain_seed\": {}",
            s.accepted, s.attempted, s.rerouted, s.chain_seed
        ));
    }
    j.push('}');
    j
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("map_explore: {e}");
            std::process::exit(2);
        }
    };
    // Selection problems (unknown preset/kernel tags) are usage errors.
    let (archs, tags) = match select(&args) {
        Ok(sel) => sel,
        Err(e) => {
            eprintln!("map_explore: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(args, archs, tags) {
        eprintln!("map_explore: {e}");
        std::process::exit(1);
    }
}

/// Resolves the preset and kernel selections.
fn select(args: &Args) -> Result<(Vec<Architecture>, Vec<String>), String> {
    let archs: Vec<Architecture> = match &args.presets {
        None => marionette::arch::all_presets_on(args.fabric),
        Some(tags) => marionette::arch::presets_by_tags_on(args.fabric, tags)?,
    };
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    if let Some(filter) = &args.kernels {
        let want: Vec<String> = filter
            .split(',')
            .map(|s| s.trim().to_uppercase())
            .filter(|s| !s.is_empty())
            .collect();
        tags.retain(|t| want.iter().any(|w| w == &t.to_uppercase()));
        if tags.is_empty() {
            return Err(format!("no kernels match --kernels {filter}"));
        }
    }
    Ok((archs, tags))
}

/// One kernel × architecture measurement; every stage failure becomes a
/// tagged error instead of a panic.
fn point_report(
    tag: &str,
    arch: &Architecture,
    scale: Scale,
    simulate: bool,
    budget: SearchBudget,
) -> Result<PointReport, String> {
    let k = marionette::kernels::by_short(tag).ok_or("unknown kernel tag")?;
    let cm = CostModel::from_timing(&arch.tm);
    let wl = k.workload(scale, SEED);
    let g = k.build(&wl).map_err(|e| format!("build: {e}"))?;
    // The explorer's cost of the greedy mapping, for a like-for-like
    // cost comparison with the searched side.
    let gc = greedy_cost(&g, &arch.opts, &cm).map_err(|e| format!("greedy cost: {e}"))?;
    let mut g_side = Side {
        cost_total: gc.total(&cm),
        latency: gc.latency,
        congestion: gc.congestion,
        pressure: gc.pressure,
        fanout: gc.fanout,
        ..Side::default()
    };
    let mut searched = arch.clone();
    searched.opts.search = budget;
    let (routes, e_side) = if simulate {
        // Greedy side: the preset as shipped (search off).
        let gr = run_kernel(k.as_ref(), arch, scale, SEED, DEFAULT_MAX_CYCLES)
            .map_err(|e| format!("greedy: {e}"))?;
        g_side.mean_data_hops = gr.report.mean_data_hops;
        g_side.cycles = Some(gr.cycles);
        g_side.link_stalls = Some(gr.stats.link_stall_cycles);
        g_side.top_stalled = gr.stats.top_stalled_routes(3);
        let run = run_kernel(k.as_ref(), &searched, scale, SEED, DEFAULT_MAX_CYCLES)
            .map_err(|e| format!("search: {e}"))?;
        if !run.verified {
            return Err("explored mapping diverged from the golden reference".into());
        }
        let sr = run
            .report
            .search
            .as_ref()
            .ok_or("searched compile produced no search report")?;
        let mut e = side_of_search(sr, run.report.mean_data_hops);
        e.cycles = Some(run.cycles);
        e.link_stalls = Some(run.stats.link_stall_cycles);
        e.top_stalled = run.stats.top_stalled_routes(3);
        (run.report.routes, e)
    } else {
        // --no-sim: compile both sides only (cost model smoke).
        let (_, grep) = compile(&g, &arch.opts).map_err(|e| format!("greedy: {e}"))?;
        g_side.mean_data_hops = grep.mean_data_hops;
        let (_, erep) = compile_for_arch(&g, &searched).map_err(|e| format!("search: {e}"))?;
        let sr = erep
            .search
            .as_ref()
            .ok_or("searched compile produced no search report")?;
        (erep.routes, side_of_search(sr, erep.mean_data_hops))
    };
    Ok(PointReport {
        kernel: tag.to_string(),
        arch: arch.short.to_string(),
        nodes: g.nodes.len(),
        routes,
        greedy: g_side,
        explored: e_side,
    })
}

fn run(args: Args, archs: Vec<Architecture>, tags: Vec<String>) -> Result<(), String> {
    let budget = SearchBudget::Anneal {
        moves: args.moves,
        restarts: args.restarts,
        base_seed: args.base_seed,
    };

    let points: Vec<(String, Architecture)> = tags
        .iter()
        .flat_map(|t| archs.iter().map(move |a| (t.clone(), a.clone())))
        .collect();
    let scale = args.scale;
    let simulate = args.simulate;
    let outcomes = par_map(points, sweep_threads(), |(tag, arch)| {
        point_report(&tag, &arch, scale, simulate, budget)
            .map_err(|e| format!("{tag} on {}: {e}", arch.short))
    });
    // Report the first failing point in row-major order.
    let mut reports = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        reports.push(o?);
    }

    let mut speedups: Vec<f64> = Vec::new();
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.map_explore/v1\",\n");
    j.push_str(&format!(
        "  \"budget\": {{\"moves\": {}, \"restarts\": {}, \"base_seed\": {}}},\n",
        args.moves, args.restarts, args.base_seed
    ));
    j.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match args.scale {
            Scale::Tiny => "tiny",
            Scale::Paper => "paper",
            _ => "small",
        }
    ));
    j.push_str(&format!("  \"fabric\": \"{}\",\n", args.fabric));
    j.push_str(&format!("  \"simulated\": {},\n", args.simulate));
    j.push_str("  \"points\": [\n");
    for (i, p) in reports.iter().enumerate() {
        let mut line = format!(
            "    {{\"kernel\": \"{}\", \"arch\": \"{}\", \"nodes\": {}, \"routes\": {}, \"greedy\": {}, \"explored\": {}",
            p.kernel,
            p.arch,
            p.nodes,
            p.routes,
            json_side(&p.greedy),
            json_side(&p.explored)
        );
        if let (Some(gc), Some(ec)) = (p.greedy.cycles, p.explored.cycles) {
            let sp = gc as f64 / ec as f64;
            speedups.push(sp);
            line.push_str(&format!(", \"cycle_speedup\": {sp:.4}"));
        }
        line.push('}');
        line.push_str(if i + 1 == reports.len() { "\n" } else { ",\n" });
        j.push_str(&line);
    }
    j.push_str("  ],\n");
    let gm = marionette::experiments::geomean(&speedups);
    j.push_str(&format!("  \"geomean_cycle_speedup\": {gm:.4}\n"));
    j.push_str("}\n");
    std::fs::write(&args.out, &j).map_err(|e| format!("writing {}: {e}", args.out))?;

    let improved = speedups.iter().filter(|&&s| s > 1.0).count();
    let regressed = speedups.iter().filter(|&&s| s < 1.0).count();
    println!(
        "map_explore: {} points ({} kernels x {} presets), budget {}x{} moves -> {}",
        reports.len(),
        tags.len(),
        archs.len(),
        args.restarts,
        args.moves,
        args.out
    );
    if args.simulate {
        println!(
            "map_explore: geomean cycle speedup {gm:.4} ({improved} improved, {regressed} regressed)"
        );
    }
    Ok(())
}
