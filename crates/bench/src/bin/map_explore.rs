//! Mapping-quality explorer report: greedy vs annealed mapping for every
//! kernel × architecture point.
//!
//! For each point the tool compiles twice — once with the legacy one-shot
//! pipeline and once with the annealing mapping explorer — simulates
//! both mappings, and emits a JSON report with the cost-model breakdown,
//! route statistics, per-route stall attribution and the cycle delta.
//!
//! ```text
//! map_explore [--moves N] [--restarts K] [--seed S] [--kernels A,B]
//!             [--presets M,vN,...] [--scale tiny|small|paper]
//!             [--no-sim] [--out PATH]
//! ```
//!
//! `--no-sim` skips the simulations (cost model only), for quick smoke
//! runs in CI.

use marionette::arch::Architecture;
use marionette::compiler::explore::greedy_cost;
use marionette::compiler::{compile, CostModel, SearchBudget, SearchReport};
use marionette::kernels::traits::Scale;
use marionette::parallel::{par_map, sweep_threads};
use marionette::runner::{compile_for_arch, run_kernel, DEFAULT_MAX_CYCLES};

const SEED: u64 = 1;

struct Args {
    moves: u32,
    restarts: u32,
    base_seed: u64,
    kernels: Option<String>,
    presets: Option<String>,
    scale: Scale,
    simulate: bool,
    out: String,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let has = |flag: &str| argv.iter().any(|a| a == flag);
    Args {
        moves: get("--moves").and_then(|v| v.parse().ok()).unwrap_or(1500),
        restarts: get("--restarts").and_then(|v| v.parse().ok()).unwrap_or(2),
        base_seed: get("--seed").and_then(|v| v.parse().ok()).unwrap_or(0xA11E),
        kernels: get("--kernels"),
        presets: get("--presets"),
        scale: match get("--scale").as_deref() {
            Some("tiny") => Scale::Tiny,
            Some("paper") => Scale::Paper,
            _ => Scale::Small,
        },
        simulate: !has("--no-sim"),
        out: get("--out").unwrap_or_else(|| "MAP_explore.json".to_string()),
    }
}

struct PointReport {
    kernel: String,
    arch: String,
    nodes: usize,
    routes: usize,
    greedy: Side,
    explored: Side,
}

#[derive(Default)]
struct Side {
    cost_total: f64,
    latency: f64,
    congestion: f64,
    pressure: f64,
    fanout: f64,
    mean_data_hops: f64,
    cycles: Option<u64>,
    link_stalls: Option<u64>,
    top_stalled: Vec<(u32, u64)>,
    accepted: u32,
    attempted: u32,
    rerouted: usize,
    chain_seed: u64,
}

fn side_of_search(sr: &SearchReport, mean_data_hops: f64) -> Side {
    Side {
        cost_total: sr.best_total,
        latency: sr.best_cost.latency,
        congestion: sr.best_cost.congestion,
        pressure: sr.best_cost.pressure,
        fanout: sr.best_cost.fanout,
        accepted: sr.accepted,
        attempted: sr.attempted,
        rerouted: sr.rerouted,
        chain_seed: sr.seed,
        mean_data_hops,
        ..Side::default()
    }
}

fn json_side(s: &Side) -> String {
    let mut j = format!(
        "{{\"cost\": {:.3}, \"latency\": {:.3}, \"congestion\": {:.3}, \"pressure\": {:.3}, \"fanout\": {:.1}, \"mean_data_hops\": {:.3}",
        s.cost_total, s.latency, s.congestion, s.pressure, s.fanout, s.mean_data_hops
    );
    if let Some(c) = s.cycles {
        j.push_str(&format!(", \"cycles\": {c}"));
    }
    if let Some(l) = s.link_stalls {
        j.push_str(&format!(", \"link_stall_cycles\": {l}"));
        let tops: Vec<String> = s
            .top_stalled
            .iter()
            .map(|(r, c)| format!("[{r}, {c}]"))
            .collect();
        j.push_str(&format!(", \"top_stalled_routes\": [{}]", tops.join(", ")));
    }
    if s.attempted > 0 {
        j.push_str(&format!(
            ", \"accepted\": {}, \"attempted\": {}, \"rerouted\": {}, \"chain_seed\": {}",
            s.accepted, s.attempted, s.rerouted, s.chain_seed
        ));
    }
    j.push('}');
    j
}

fn main() {
    let args = parse_args();
    let archs: Vec<Architecture> = match &args.presets {
        None => marionette::arch::all_presets(),
        Some(tags) => {
            let all = marionette::arch::all_presets();
            tags.split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(|t| {
                    all.iter()
                        .find(|a| a.short.eq_ignore_ascii_case(t))
                        .unwrap_or_else(|| {
                            eprintln!("map_explore: unknown preset {t}");
                            std::process::exit(2);
                        })
                        .clone()
                })
                .collect()
        }
    };
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    if let Some(filter) = &args.kernels {
        let want: Vec<String> = filter
            .split(',')
            .map(|s| s.trim().to_uppercase())
            .filter(|s| !s.is_empty())
            .collect();
        tags.retain(|t| want.iter().any(|w| w == &t.to_uppercase()));
        if tags.is_empty() {
            eprintln!("map_explore: no kernels match --kernels {filter}");
            std::process::exit(2);
        }
    }
    let budget = SearchBudget::Anneal {
        moves: args.moves,
        restarts: args.restarts,
        base_seed: args.base_seed,
    };

    let points: Vec<(String, Architecture)> = tags
        .iter()
        .flat_map(|t| archs.iter().map(move |a| (t.clone(), a.clone())))
        .collect();
    let scale = args.scale;
    let simulate = args.simulate;
    let reports = par_map(points, sweep_threads(), |(tag, arch)| {
        let k = marionette::kernels::by_short(&tag).expect("kernel tag");
        let cm = CostModel::from_timing(&arch.tm);
        let wl = k.workload(scale, SEED);
        let g = k.build(&wl).expect("suite kernels build");
        // The explorer's cost of the greedy mapping, for a like-for-like
        // cost comparison with the searched side.
        let gc = greedy_cost(&g, &arch.opts, &cm).expect("greedy cost");
        let mut g_side = Side {
            cost_total: gc.total(&cm),
            latency: gc.latency,
            congestion: gc.congestion,
            pressure: gc.pressure,
            fanout: gc.fanout,
            ..Side::default()
        };
        let mut searched = arch.clone();
        searched.opts.search = budget;
        let (routes, e_side) = if simulate {
            // Greedy side: the preset as shipped (search off).
            let gr = run_kernel(k.as_ref(), &arch, scale, SEED, DEFAULT_MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{tag} on {} (greedy): {e}", arch.short));
            g_side.mean_data_hops = gr.report.mean_data_hops;
            g_side.cycles = Some(gr.cycles);
            g_side.link_stalls = Some(gr.stats.link_stall_cycles);
            g_side.top_stalled = gr.stats.top_stalled_routes(3);
            let run = run_kernel(k.as_ref(), &searched, scale, SEED, DEFAULT_MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{tag} on {} (search): {e}", arch.short));
            assert!(run.verified, "explored mapping must stay bit-correct");
            let sr = run.report.search.as_ref().expect("searched compile");
            let mut e = side_of_search(sr, run.report.mean_data_hops);
            e.cycles = Some(run.cycles);
            e.link_stalls = Some(run.stats.link_stall_cycles);
            e.top_stalled = run.stats.top_stalled_routes(3);
            (run.report.routes, e)
        } else {
            // --no-sim: compile both sides only (cost model smoke).
            let (_, grep) = compile(&g, &arch.opts)
                .unwrap_or_else(|e| panic!("{tag} on {} (greedy): {e}", arch.short));
            g_side.mean_data_hops = grep.mean_data_hops;
            let (_, erep) = compile_for_arch(&g, &searched)
                .unwrap_or_else(|e| panic!("{tag} on {} (search): {e}", arch.short));
            let sr = erep.search.as_ref().expect("searched compile");
            (erep.routes, side_of_search(sr, erep.mean_data_hops))
        };
        PointReport {
            kernel: tag,
            arch: arch.short.to_string(),
            nodes: g.nodes.len(),
            routes,
            greedy: g_side,
            explored: e_side,
        }
    });

    let mut speedups: Vec<f64> = Vec::new();
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.map_explore/v1\",\n");
    j.push_str(&format!(
        "  \"budget\": {{\"moves\": {}, \"restarts\": {}, \"base_seed\": {}}},\n",
        args.moves, args.restarts, args.base_seed
    ));
    j.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match args.scale {
            Scale::Tiny => "tiny",
            Scale::Paper => "paper",
            _ => "small",
        }
    ));
    j.push_str(&format!("  \"simulated\": {},\n", args.simulate));
    j.push_str("  \"points\": [\n");
    for (i, p) in reports.iter().enumerate() {
        let mut line = format!(
            "    {{\"kernel\": \"{}\", \"arch\": \"{}\", \"nodes\": {}, \"routes\": {}, \"greedy\": {}, \"explored\": {}",
            p.kernel,
            p.arch,
            p.nodes,
            p.routes,
            json_side(&p.greedy),
            json_side(&p.explored)
        );
        if let (Some(gc), Some(ec)) = (p.greedy.cycles, p.explored.cycles) {
            let sp = gc as f64 / ec as f64;
            speedups.push(sp);
            line.push_str(&format!(", \"cycle_speedup\": {sp:.4}"));
        }
        line.push('}');
        line.push_str(if i + 1 == reports.len() { "\n" } else { ",\n" });
        j.push_str(&line);
    }
    j.push_str("  ],\n");
    let gm = marionette::experiments::geomean(&speedups);
    j.push_str(&format!("  \"geomean_cycle_speedup\": {gm:.4}\n"));
    j.push_str("}\n");
    std::fs::write(&args.out, &j).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));

    let improved = speedups.iter().filter(|&&s| s > 1.0).count();
    let regressed = speedups.iter().filter(|&&s| s < 1.0).count();
    println!(
        "map_explore: {} points ({} kernels x {} presets), budget {}x{} moves -> {}",
        reports.len(),
        tags.len(),
        archs.len(),
        args.restarts,
        args.moves,
        args.out
    );
    if args.simulate {
        println!(
            "map_explore: geomean cycle speedup {gm:.4} ({improved} improved, {regressed} regressed)"
        );
    }
}
