//! `marc` — the Marionette source compiler driver.
//!
//! Takes a `.mar` program and drives the full stack: parse → semantic
//! checks → CDFG lowering → compile (greedy, or the annealing mapping
//! explorer with `--search`) → configuration-bitstream round-trip →
//! cycle-level simulation on every selected architecture preset — and
//! verifies each simulation bit-for-bit against the reference
//! interpreter before reporting it.
//!
//! ```text
//! marc FILE.mar [--presets M,vN,...] [--fabric RxC]
//!               [--search MOVES[,RESTARTS]]
//!               [--param NAME=VALUE]... [--max-cycles N]
//!               [--fault SPEC]... [--faults N] [--fault-seed S]
//!               [--engine wheel|heap] [--disasm] [--json PATH]
//! ```
//!
//! `--fault SPEC` (repeatable: `pe:R,C`, `link:R,C-R,C`,
//! `flaky:R,C-R,C@MULT`) and `--faults N` (seeded-random damage,
//! `--fault-seed` to vary it) inject faults into every simulation; a
//! bitstream wedged on a dead resource is re-mapped around the damage
//! and the remap is bit-verified like any other run.
//!
//! `--engine` selects the simulator's event-scheduling core (the
//! calendar-wheel default or the reference binary heap); both produce
//! bit-identical results, so the flag exists to cross-check them.
//!
//! Parse and semantic errors are rendered with their source line and a
//! caret. Exit codes: `0` verified on every preset, `1` any pipeline or
//! verification failure, `2` usage errors.

use marionette::arch::{Architecture, FabricDims};
use marionette::cdfg::value::Value;
use marionette::compiler::SearchBudget;
use marionette::sim::{EngineKind, FaultSet};
use marionette_lang::driver::{
    frontend, reference, run_preset_engine, run_preset_engine_traced, run_preset_faulted_engine,
    run_preset_faulted_engine_traced, DriverError, PresetRun, DEFAULT_MAX_CYCLES, INTERP_BUDGET,
};

struct Args {
    file: String,
    presets: Option<String>,
    fabric: FabricDims,
    search: Option<(u32, u32)>,
    params: Vec<(String, String)>,
    max_cycles: u64,
    fault_specs: Vec<String>,
    faults: usize,
    fault_seed: u64,
    engine: EngineKind,
    disasm: bool,
    json: Option<String>,
    trace: Option<String>,
}

fn usage() -> String {
    "usage: marc FILE.mar [--presets M,vN,...] [--fabric RxC] \
     [--search MOVES[,RESTARTS]] \
     [--param NAME=VALUE]... [--max-cycles N] \
     [--fault SPEC]... [--faults N] [--fault-seed S] \
     [--engine wheel|heap] [--disasm] [--json PATH] [--trace PATH]"
        .to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        presets: None,
        fabric: FabricDims::paper(),
        search: None,
        params: Vec::new(),
        max_cycles: DEFAULT_MAX_CYCLES,
        fault_specs: Vec::new(),
        faults: 0,
        fault_seed: 1,
        engine: EngineKind::default(),
        disasm: false,
        json: None,
        trace: None,
    };
    let rest: Vec<&String> = argv.iter().skip(1).collect();
    let mut i = 0usize;
    let value_of = |flag: &str, i: &mut usize| -> Result<String, String> {
        *i += 1;
        match rest.get(*i) {
            // A flag-like token is a forgotten value, not a value.
            Some(s) if !s.starts_with("--") => Ok(s.to_string()),
            _ => Err(format!("{flag} needs a value\n{}", usage())),
        }
    };
    // Each flag may appear once; `--fault` and `--param` accumulate by
    // design. A repeated single flag is a typo'd command line — silently
    // letting the last occurrence win hides it.
    let mut seen = std::collections::HashSet::new();
    while i < rest.len() {
        let a = rest[i];
        if a.starts_with("--") && a != "--fault" && a != "--param" && !seen.insert(a.clone()) {
            return Err(format!("duplicate flag `{a}`\n{}", usage()));
        }
        match a.as_str() {
            "--presets" => args.presets = Some(value_of("--presets", &mut i)?),
            "--fabric" => {
                args.fabric = value_of("--fabric", &mut i)?
                    .parse()
                    .map_err(|e| format!("--fabric: {e}\n{}", usage()))?
            }
            "--search" => {
                let spec = value_of("--search", &mut i)?;
                let mut parts = spec.split(',').map(str::trim);
                let moves: u32 = parts
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("--search needs MOVES[,RESTARTS], got `{spec}`"))?;
                let restarts: u32 = match parts.next() {
                    None => 1,
                    Some(v) => v
                        .parse()
                        .map_err(|_| format!("--search RESTARTS must be numeric, got `{v}`"))?,
                };
                args.search = Some((moves, restarts));
            }
            "--param" => {
                let spec = value_of("--param", &mut i)?;
                let (name, val) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--param needs NAME=VALUE, got `{spec}`"))?;
                args.params.push((name.to_string(), val.to_string()));
            }
            "--max-cycles" => {
                let v = value_of("--max-cycles", &mut i)?;
                args.max_cycles = v
                    .parse()
                    .map_err(|_| format!("--max-cycles must be numeric, got `{v}`"))?;
            }
            "--fault" => args.fault_specs.push(value_of("--fault", &mut i)?),
            "--faults" => {
                let v = value_of("--faults", &mut i)?;
                args.faults = v
                    .parse()
                    .map_err(|_| format!("--faults must be numeric, got `{v}`"))?;
            }
            "--fault-seed" => {
                let v = value_of("--fault-seed", &mut i)?;
                args.fault_seed = v
                    .parse()
                    .map_err(|_| format!("--fault-seed must be numeric, got `{v}`"))?;
            }
            "--engine" => {
                let v = value_of("--engine", &mut i)?;
                args.engine = v.parse().map_err(|e| format!("--engine: {e}"))?;
            }
            "--disasm" => args.disasm = true,
            "--json" => args.json = Some(value_of("--json", &mut i)?),
            "--trace" => args.trace = Some(value_of("--trace", &mut i)?),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`\n{}", usage()))
            }
            file => {
                if !args.file.is_empty() {
                    return Err(format!("more than one input file\n{}", usage()));
                }
                args.file = file.to_string();
            }
        }
        i += 1;
    }
    if args.file.is_empty() {
        return Err(usage());
    }
    Ok(args)
}

fn select_presets(fabric: FabricDims, filter: Option<&str>) -> Result<Vec<Architecture>, String> {
    let Some(tags) = filter else {
        return Ok(marionette::arch::all_presets_on(fabric));
    };
    let out = marionette::arch::presets_by_tags_on(fabric, tags)?;
    if out.is_empty() {
        return Err("empty preset selection".to_string());
    }
    Ok(out)
}

/// Types each `--param` override from the program's declarations; names
/// that resolve to no declaration are passed through so the reference
/// interpreter reports them as a typed `UnknownParam` error.
fn typed_overrides(
    ast: &marionette_lang::ast::Program,
    raw: &[(String, String)],
) -> Result<Vec<(String, Value)>, String> {
    let mut out = Vec::new();
    for (name, val) in raw {
        let decl = ast.params.iter().find(|p| &p.name.name == name);
        let v = match decl.map(|d| d.ty) {
            Some(marionette_lang::ast::Ty::F32) => Value::F32(
                val.parse::<f32>()
                    .map_err(|_| format!("--param {name}: `{val}` is not an f32"))?,
            ),
            Some(marionette_lang::ast::Ty::I32) => Value::I32(
                val.parse::<i32>()
                    .map_err(|_| format!("--param {name}: `{val}` is not an i32"))?,
            ),
            // Undeclared name: parse by value shape so the reference
            // interpreter gets to report the typed UnknownParam error.
            None => match (val.parse::<i32>(), val.parse::<f32>()) {
                (Ok(v), _) => Value::I32(v),
                (_, Ok(v)) => Value::F32(v),
                _ => return Err(format!("--param {name}: `{val}` is not a number")),
            },
        };
        out.push((name.clone(), v));
    }
    Ok(out)
}

use marionette::report::json_escape;

fn json_value(v: &Value) -> String {
    match v {
        Value::I32(x) => x.to_string(),
        Value::F32(x) if x.is_finite() => format!("{x:?}"),
        Value::F32(x) => format!("\"{x}\""),
        Value::Unit => "\"unit\"".to_string(),
        Value::Poison => "\"poison\"".to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn json_report(
    file: &str,
    prog_name: &str,
    nodes: usize,
    loops: usize,
    sinks: &std::collections::HashMap<String, Vec<Value>>,
    search: Option<(u32, u32)>,
    fabric: FabricDims,
    faults: &FaultSet,
    fault_info: &[(Option<String>, bool)],
    runs: &[PresetRun],
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.marc/v1\",\n");
    j.push_str(&format!("  \"file\": \"{}\",\n", json_escape(file)));
    j.push_str(&format!("  \"program\": \"{}\",\n", json_escape(prog_name)));
    j.push_str(&format!("  \"fabric\": \"{fabric}\",\n"));
    j.push_str(&format!(
        "  \"faults\": [{}],\n",
        faults
            .specs()
            .iter()
            .map(|s| format!("\"{}\"", json_escape(&s.to_string())))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!("  \"nodes\": {nodes},\n"));
    j.push_str(&format!("  \"loops\": {loops},\n"));
    match search {
        Some((m, r)) => j.push_str(&format!(
            "  \"search\": {{\"moves\": {m}, \"restarts\": {r}}},\n"
        )),
        None => j.push_str("  \"search\": null,\n"),
    }
    let mut labels: Vec<&String> = sinks.keys().collect();
    labels.sort();
    j.push_str("  \"sinks\": {");
    for (i, l) in labels.iter().enumerate() {
        let vals: Vec<String> = sinks[*l].iter().map(json_value).collect();
        j.push_str(&format!(
            "{}\"{}\": [{}]",
            if i == 0 { "" } else { ", " },
            json_escape(l),
            vals.join(", ")
        ));
    }
    j.push_str("},\n");
    j.push_str("  \"presets\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let mut line = format!(
            "    {{\"preset\": \"{}\", \"cycles\": {}, \"fires\": {}, \
             \"link_stall_cycles\": {}, \"switch_stall_cycles\": {}, \"group_switches\": {}, \
             \"routes\": {}, \"mean_data_hops\": {:.3}, \"verified\": true",
            json_escape(&r.preset),
            r.cycles,
            r.fires,
            r.link_stall_cycles,
            r.switch_stall_cycles,
            r.group_switches,
            r.routes,
            r.mean_data_hops
        );
        if let Some((wedged, remapped)) = fault_info.get(i) {
            match wedged {
                Some(w) => line.push_str(&format!(", \"wedged\": \"{}\"", json_escape(w))),
                None => line.push_str(", \"wedged\": null"),
            }
            line.push_str(&format!(", \"remapped\": {remapped}"));
        }
        if let Some(sr) = &r.search {
            line.push_str(&format!(
                ", \"search\": {{\"cost\": {:.3}, \"accepted\": {}, \"attempted\": {}, \"chain_seed\": {}}}",
                sr.best_total, sr.accepted, sr.attempted, sr.seed
            ));
        }
        if let Some(d) = &r.disasm {
            line.push_str(&format!(", \"disasm\": \"{}\"", json_escape(d)));
        }
        line.push('}');
        line.push_str(if i + 1 == runs.len() { "\n" } else { ",\n" });
        j.push_str(&line);
    }
    j.push_str("  ]\n}\n");
    j
}

fn run() -> Result<(), i32> {
    let argv: Vec<String> = std::env::args().collect();
    let args = parse_args(&argv).map_err(|e| {
        eprintln!("marc: {e}");
        2
    })?;
    let fail2 = |e: String| {
        eprintln!("marc: {e}");
        2
    };
    let presets = select_presets(args.fabric, args.presets.as_deref()).map_err(fail2)?;
    if args.trace.is_some() && presets.len() != 1 {
        return Err(fail2(format!(
            "--trace records one preset's run; narrow the {} selected presets \
             with --presets TAG",
            presets.len()
        )));
    }
    // Surface an unwritable trace path before spending cycles simulating.
    if let Some(path) = &args.trace {
        std::fs::File::create(path).map_err(|e| fail2(format!("--trace {path}: {e}")))?;
    }
    let faults = FaultSet::from_cli(
        args.fabric.rows,
        args.fabric.cols,
        &args.fault_specs,
        args.faults,
        args.fault_seed,
    )
    .map_err(fail2)?;
    if !faults.is_empty() && args.disasm {
        return Err(fail2(
            "--disasm needs a healthy fabric (drop the fault flags)".to_string(),
        ));
    }
    let src = std::fs::read_to_string(&args.file).map_err(|e| {
        eprintln!("marc: reading {}: {e}", args.file);
        1
    })?;

    // Front end, with rendered diagnostics.
    let (ast, g) = frontend(&src).map_err(|e| {
        match e {
            DriverError::Parse(d) => eprintln!("{}", d.render(&args.file, &src)),
            DriverError::Sema(ds) => {
                for d in &ds {
                    eprintln!("{}", d.render(&args.file, &src));
                }
                eprintln!("marc: {} error(s)", ds.len());
            }
            other => eprintln!("marc: {other}"),
        }
        1
    })?;
    let overrides = typed_overrides(&ast, &args.params).map_err(fail2)?;

    // Reference semantics (both interpreter modes, cross-checked).
    let r = reference(&g, &overrides, INTERP_BUDGET).map_err(|e| {
        eprintln!("marc: {e}");
        1
    })?;
    println!(
        "marc: {} ({} nodes, {} loops, {} sinks) on {} preset(s)",
        ast.name.name,
        g.nodes.len(),
        g.loops.len(),
        r.dropping.sinks.len(),
        presets.len()
    );

    if !faults.is_empty() {
        println!("marc: injecting {faults}");
    }
    let mut runs = Vec::new();
    let mut fault_info: Vec<(Option<String>, bool)> = Vec::new();
    let mut tracer = args.trace.as_ref().map(|_| marionette::sim::Tracer::new());
    for arch in &presets {
        let mut arch = arch.clone();
        if let Some((moves, restarts)) = args.search {
            arch.opts.search = SearchBudget::Anneal {
                moves,
                restarts,
                base_seed: 0xA11E,
            };
        }
        let fail1 = |e: DriverError| {
            eprintln!("marc: {e}");
            1
        };
        let (run, note) = if faults.is_empty() {
            let run = match tracer.as_mut() {
                None => run_preset_engine(
                    &g,
                    &r,
                    &arch,
                    &overrides,
                    args.max_cycles,
                    args.disasm,
                    args.engine,
                )
                .map_err(fail1)?,
                Some(t) => run_preset_engine_traced(
                    &g,
                    &r,
                    &arch,
                    &overrides,
                    args.max_cycles,
                    args.disasm,
                    args.engine,
                    t,
                )
                .map_err(fail1)?,
            };
            (run, String::new())
        } else {
            let fr = match tracer.as_mut() {
                None => run_preset_faulted_engine(
                    &g,
                    &r,
                    &arch,
                    &overrides,
                    args.max_cycles,
                    &faults,
                    args.engine,
                )
                .map_err(fail1)?,
                Some(t) => run_preset_faulted_engine_traced(
                    &g,
                    &r,
                    &arch,
                    &overrides,
                    args.max_cycles,
                    &faults,
                    args.engine,
                    t,
                )
                .map_err(fail1)?,
            };
            let note = match &fr.wedged {
                Some(w) => format!("  (wedged by {w}, remapped)"),
                None => String::new(),
            };
            fault_info.push((fr.wedged.clone(), fr.remapped));
            (fr.run, note)
        };
        println!(
            "marc: {:>5}  {:>10} cycles  {:>9} fires  {:>7} link-stall  {:>5} switch-stall  verified{note}",
            run.preset, run.cycles, run.fires, run.link_stall_cycles, run.switch_stall_cycles
        );
        runs.push(run);
    }

    let report = json_report(
        &args.file,
        &ast.name.name,
        g.nodes.len(),
        g.loops.len(),
        &r.dropping.sinks,
        args.search,
        args.fabric,
        &faults,
        &fault_info,
        &runs,
    );
    match &args.json {
        Some(path) if path != "-" => std::fs::write(path, &report).map_err(|e| {
            eprintln!("marc: writing {path}: {e}");
            1
        })?,
        Some(_) => print!("{report}"),
        None => {}
    }
    if let (Some(path), Some(t)) = (&args.trace, &tracer) {
        std::fs::write(path, t.to_chrome_json()).map_err(|e| {
            eprintln!("marc: writing {path}: {e}");
            1
        })?;
        println!("marc: wrote {} trace events to {path}", t.len());
    }
    Ok(())
}

fn main() {
    if let Err(code) = run() {
        std::process::exit(code);
    }
}
