//! Graceful-degradation experiment: how each control-plane preset holds
//! up on a damaged fabric.
//!
//! Every point injects a seeded-random [`marionette::sim::FaultSet`]
//! (dead PEs, dead mesh links, flaky links) into the full compile →
//! bitstream → simulate stack. A fault-oblivious bitstream that touches
//! a dead resource is wedged with a typed fault; the self-healing loop
//! (`marionette::runner::run_kernel_faulted`) then re-runs the annealing
//! placer with the faulty resources masked and bit-verifies the remap
//! against the golden reference. The sweep reports, per preset, the
//! cycles-vs-#faults degradation curve and the remap success rate.
//!
//! ```text
//! fault_sweep [--presets vN,DF,M-PE,M-CN,M] [--kernels A,B]
//!             [--scale tiny|small|paper] [--fabric RxC]
//!             [--fault-counts 0,1,2,4] [--fault-seeds N]
//!             [--fault SPEC]... [--max-cycles N]
//!             [--out BENCH_fault.json] [--check BENCH_sim.json]
//!             [--engine wheel|heap] [--trace FILE]
//! ```
//!
//! `--trace FILE` attaches the cycle tracer and writes a Chrome
//! trace-event JSON (Perfetto-viewable, with a `remap after …` marker
//! on healed points) — the sweep must be narrowed to exactly one point
//! with `--kernels`, `--presets`, `--fault-counts` and `--fault-seeds`.
//!
//! `--engine wheel|heap` pins the simulator's event-queue core for every
//! point (default wheel); fault delivery is engine-independent, so the
//! degradation curves and the 0-fault identity gate must come out the
//! same either way.
//!
//! `--fault SPEC` pins explicit faults (`pe:R,C`, `link:R,C-R,C`,
//! `flaky:R,C-R,C@MULT`) under every point on top of the seeded-random
//! ones. Zero-fault points run an empty fault set, which is guaranteed
//! bit-identical to the fault-free stack — `--check BENCH_sim.json`
//! turns that guarantee into a gate by comparing their cycle counts
//! against the committed perf snapshot.
//!
//! A remap that cannot fit on the surviving fabric is the typed
//! "infeasible" outcome, counted against the preset's success rate, not
//! a sweep failure. Exit codes: `0` every surviving point verified,
//! `1` any pipeline/verification failure or `--check` mismatch,
//! `2` usage errors.

use marionette::arch::{Architecture, FabricDims};
use marionette::compiler::SearchBudget;
use marionette::experiments::geomean;
use marionette::kernels::traits::Scale;
use marionette::parallel::{par_map, sweep_threads};
use marionette::report::json_escape;
use marionette::runner::{
    run_kernel_faulted_traced, run_kernel_faulted_with_engine, RunnerError, DEFAULT_MAX_CYCLES,
};
use marionette::sim::{EngineKind, FaultSet, Tracer};
use marionette_bench::snapshot;
use std::time::Instant;

const SEED: u64 = 1;

struct Args {
    presets: String,
    kernels: Option<String>,
    scale: Scale,
    fabric: FabricDims,
    fault_counts: Vec<usize>,
    fault_seeds: u64,
    fault_specs: Vec<String>,
    max_cycles: u64,
    out: String,
    check: Option<String>,
    engine: EngineKind,
    trace: Option<String>,
}

fn usage() -> String {
    "usage: fault_sweep [--presets vN,DF,M-PE,M-CN,M] [--kernels A,B] \
     [--scale tiny|small|paper] [--fabric RxC] [--fault-counts 0,1,2,4] \
     [--fault-seeds N] [--fault SPEC]... [--max-cycles N] [--out PATH] \
     [--check BENCH_sim.json] [--engine wheel|heap] [--trace FILE]"
        .to_string()
}

const KNOWN_FLAGS: &[&str] = &[
    "--presets",
    "--kernels",
    "--scale",
    "--fabric",
    "--fault-counts",
    "--fault-seeds",
    "--fault",
    "--max-cycles",
    "--out",
    "--check",
    "--engine",
    "--trace",
];

fn parse_args(argv: &[String]) -> Result<Args, String> {
    // Strict argv validation: every token must be a known flag or the
    // value of the preceding one (a typo'd `--fault-count` must error,
    // not silently run the default sweep).
    let mut i = 1;
    let mut counts: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    while i < argv.len() {
        if !KNOWN_FLAGS.contains(&argv[i].as_str()) {
            return Err(format!("unknown argument `{}`\n{}", argv[i], usage()));
        }
        *counts.entry(argv[i].as_str()).or_insert(0) += 1;
        i += 2; // the flag's value (validated by the per-flag parser)
    }
    // `--fault` accumulates; every other flag may appear once. The
    // position-based `get` below takes the *first* occurrence, so a
    // silently-accepted duplicate would not even last-win — reject it.
    for (flag, n) in &counts {
        if *flag != "--fault" && *n > 1 {
            return Err(format!("duplicate flag `{flag}`\n{}", usage()));
        }
    }
    let get = |flag: &str| -> Result<Option<String>, String> {
        match argv.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) => match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
                _ => Err(format!("{flag} needs a value\n{}", usage())),
            },
        }
    };
    // `--fault` repeats; collect every occurrence.
    let mut fault_specs = Vec::new();
    let mut i = 1;
    while i < argv.len() {
        if argv[i] == "--fault" {
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => fault_specs.push(v.clone()),
                _ => return Err(format!("--fault needs a value\n{}", usage())),
            }
        }
        i += 2;
    }
    let fault_counts = get("--fault-counts")?
        .unwrap_or_else(|| "0,1,2,4".to_string())
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| format!("--fault-counts: `{s}` is not a count"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if fault_counts.is_empty() {
        return Err("--fault-counts needs at least one entry".to_string());
    }
    let fault_seeds = match get("--fault-seeds")? {
        None => 3,
        Some(v) => {
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--fault-seeds must be numeric, got `{v}`"))?;
            if n == 0 {
                return Err("--fault-seeds must be at least 1".to_string());
            }
            n
        }
    };
    Ok(Args {
        presets: get("--presets")?.unwrap_or_else(|| "vN,DF,M-PE,M-CN,M".to_string()),
        kernels: get("--kernels")?,
        scale: match get("--scale")?.as_deref() {
            None | Some("small") => Scale::Small,
            Some("tiny") => Scale::Tiny,
            Some("paper") => Scale::Paper,
            Some(other) => {
                return Err(format!(
                    "--scale: `{other}` is not one of tiny, small, paper"
                ))
            }
        },
        fabric: match get("--fabric")? {
            None => FabricDims::paper(),
            Some(v) => v.parse().map_err(|e| format!("--fabric: {e}"))?,
        },
        fault_counts,
        fault_seeds,
        fault_specs,
        max_cycles: match get("--max-cycles")? {
            None => DEFAULT_MAX_CYCLES,
            Some(v) => v
                .parse()
                .map_err(|_| format!("--max-cycles must be numeric, got `{v}`"))?,
        },
        out: get("--out")?.unwrap_or_else(|| "BENCH_fault.json".to_string()),
        check: get("--check")?,
        engine: match get("--engine")? {
            None => EngineKind::default(),
            Some(v) => v.parse().map_err(|e| format!("--engine: {e}"))?,
        },
        trace: get("--trace")?,
    })
}

/// Kernel tags, filtered by `--kernels`.
fn kernel_tags(filter: Option<&str>) -> Result<Vec<String>, String> {
    let mut tags: Vec<String> = marionette::kernels::all()
        .iter()
        .map(|k| k.short().to_string())
        .collect();
    tags.push("LDPC-APP".to_string());
    if let Some(filter) = filter {
        let want: Vec<String> = filter
            .split(',')
            .map(|s| s.trim().to_uppercase())
            .filter(|s| !s.is_empty())
            .collect();
        tags.retain(|t| want.iter().any(|w| w == &t.to_uppercase()));
        if tags.is_empty() {
            return Err(format!("no kernels match --kernels {filter}"));
        }
    }
    Ok(tags)
}

/// One point's surviving measurement, or the typed infeasible outcome.
struct Measured {
    kernel: String,
    arch: String,
    faults: usize,
    fault_seed: u64,
    specs: String,
    wedged: Option<String>,
    remapped: bool,
    /// `None`: the remap could not fit on the surviving fabric.
    cycles: Option<u64>,
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fault_sweep: {e}");
            std::process::exit(2);
        }
    };
    // Selection and fault-spec problems are usage errors.
    let selection = (|| -> Result<_, String> {
        let tags = kernel_tags(args.kernels.as_deref())?;
        let mut archs = marionette::arch::presets_by_tags_on(args.fabric, &args.presets)?;
        if archs.is_empty() {
            return Err("empty preset selection".to_string());
        }
        for a in &mut archs {
            a.opts.search = SearchBudget::Off;
        }
        // Validate the pinned `--fault` specs once, up front.
        FaultSet::from_cli(args.fabric.rows, args.fabric.cols, &args.fault_specs, 0, 0)?;
        if let Some(path) = &args.trace {
            // A trace interleaves every traced point's events into one
            // timeline, so it only makes sense for a single point.
            let seed_axis: usize = args
                .fault_counts
                .iter()
                .map(|&n| {
                    if n == 0 && args.fault_specs.is_empty() {
                        1
                    } else {
                        args.fault_seeds as usize
                    }
                })
                .sum();
            let total = tags.len() * archs.len() * seed_axis;
            if total != 1 {
                return Err(format!(
                    "--trace records one point's run; narrow the {total} selected points \
                     with --kernels, --presets, --fault-counts and --fault-seeds"
                ));
            }
            // Open the file now so an unwritable path is a usage error.
            std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
        }
        Ok((tags, archs))
    })();
    let (tags, archs) = match selection {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fault_sweep: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args, tags, archs) {
        eprintln!("fault_sweep: {e}");
        std::process::exit(1);
    }
}

/// Compiles, (re)maps and simulates one sweep point, optionally with
/// the cycle tracer attached.
fn measure(
    args: &Args,
    tag: String,
    arch: &Architecture,
    n: usize,
    fseed: u64,
    tracer: Option<&mut Tracer>,
) -> Result<Measured, String> {
    let k =
        marionette::kernels::by_short(&tag).ok_or_else(|| format!("{tag}: unknown kernel tag"))?;
    let faults = FaultSet::from_cli(
        args.fabric.rows,
        args.fabric.cols,
        &args.fault_specs,
        n,
        fseed,
    )
    .map_err(|e| format!("{tag} on {}: {e}", arch.short))?;
    let specs = faults
        .specs()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join("+");
    let outcome = match tracer {
        None => run_kernel_faulted_with_engine(
            k.as_ref(),
            arch,
            args.scale,
            SEED,
            args.max_cycles,
            &faults,
            args.engine,
        ),
        Some(t) => run_kernel_faulted_traced(
            k.as_ref(),
            arch,
            args.scale,
            SEED,
            args.max_cycles,
            &faults,
            args.engine,
            t,
        ),
    };
    match outcome {
        Ok(fr) => Ok(Measured {
            kernel: tag,
            arch: arch.short.to_string(),
            faults: n,
            fault_seed: fseed,
            specs,
            wedged: fr.wedged,
            remapped: fr.remapped,
            cycles: Some(fr.run.cycles),
        }),
        // The healthy compile of every shipped kernel × preset
        // succeeds (the 0-fault sweep proves it), so a compile
        // error here is the typed remap-infeasible outcome.
        Err(RunnerError::Compile(e)) => Ok(Measured {
            kernel: tag,
            arch: arch.short.to_string(),
            faults: n,
            fault_seed: fseed,
            specs,
            wedged: Some(e.to_string()),
            remapped: false,
            cycles: None,
        }),
        Err(e) => Err(format!("{tag} on {} with [{specs}]: {e}", arch.short)),
    }
}

fn run(args: &Args, tags: Vec<String>, archs: Vec<Architecture>) -> Result<(), String> {
    let t0 = Instant::now();
    let threads = sweep_threads();

    // Zero-fault points are seed-independent (the fault set is empty
    // either way), so they run once instead of once per fault seed.
    let mut points: Vec<(String, Architecture, usize, u64)> = Vec::new();
    for tag in &tags {
        for arch in &archs {
            for &n in &args.fault_counts {
                let seeds = if n == 0 && args.fault_specs.is_empty() {
                    1
                } else {
                    args.fault_seeds
                };
                for fs in 1..=seeds {
                    points.push((tag.clone(), arch.clone(), n, fs));
                }
            }
        }
    }
    let npoints = points.len();
    let mut tracer = args.trace.as_ref().map(|_| Tracer::new());
    let outcomes = match tracer.as_mut() {
        // Trace mode is pre-validated to a single point: run it on this
        // thread so the recorder needs no cross-thread plumbing.
        Some(t) => {
            let (tag, arch, n, fseed) = points.into_iter().next().expect("one point");
            vec![measure(args, tag, &arch, n, fseed, Some(t))]
        }
        None => par_map(points, threads, |(tag, arch, n, fseed)| {
            measure(args, tag, &arch, n, fseed, None)
        }),
    };
    let mut measured = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        measured.push(o?);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The 0-fault identity gate: an empty fault set must reproduce the
    // committed perf snapshot's cycle counts bit for bit.
    let mut gate_violations = 0usize;
    if let Some(base_path) = &args.check {
        let json =
            std::fs::read_to_string(base_path).map_err(|e| format!("reading {base_path}: {e}"))?;
        let base =
            snapshot::parse_points(&json).map_err(|e| format!("parsing {base_path}: {e}"))?;
        let mut checked = 0usize;
        for m in measured
            .iter()
            .filter(|m| m.faults == 0 && m.specs.is_empty())
        {
            let Some(b) = base
                .iter()
                .find(|b| b.kernel == m.kernel && b.arch == m.arch)
            else {
                continue;
            };
            checked += 1;
            if m.cycles != Some(b.cycles) {
                gate_violations += 1;
                eprintln!(
                    "fault_sweep: {} on {}: 0-fault run took {:?} cycles, baseline {} has {}",
                    m.kernel, m.arch, m.cycles, base_path, b.cycles
                );
            }
        }
        if checked == 0 {
            return Err(format!(
                "--check {base_path}: no 0-fault point matches the baseline (run with 0 in --fault-counts and no --fault)"
            ));
        }
        if gate_violations == 0 {
            println!("fault_sweep: {checked} zero-fault points match {base_path} bit for bit");
        }
    }

    // Degradation curves: per preset × fault count, the remap success
    // rate and the geomean cycles over surviving points.
    let preset_order: Vec<String> = archs.iter().map(|a| a.short.to_string()).collect();
    struct Curve {
        faults: usize,
        points: usize,
        wedged: usize,
        remapped: usize,
        infeasible: usize,
        geomean_cycles: f64,
    }
    let mut degradation: Vec<(String, Vec<Curve>)> = Vec::new();
    for p in &preset_order {
        let mut curves = Vec::new();
        for &n in &args.fault_counts {
            let pts: Vec<&Measured> = measured
                .iter()
                .filter(|m| m.arch == *p && m.faults == n)
                .collect();
            let cycles: Vec<f64> = pts
                .iter()
                .filter_map(|m| m.cycles.map(|c| c as f64))
                .collect();
            curves.push(Curve {
                faults: n,
                points: pts.len(),
                wedged: pts.iter().filter(|m| m.wedged.is_some()).count(),
                remapped: pts.iter().filter(|m| m.remapped).count(),
                infeasible: pts.iter().filter(|m| m.cycles.is_none()).count(),
                geomean_cycles: geomean(&cycles),
            });
        }
        degradation.push((p.clone(), curves));
    }

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str("  \"schema\": \"marionette.fault_sweep/v1\",\n");
    j.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match args.scale {
            Scale::Tiny => "tiny",
            Scale::Paper => "paper",
            _ => "small",
        }
    ));
    j.push_str(&format!("  \"seed\": {SEED},\n"));
    j.push_str(&format!("  \"fabric\": \"{}\",\n", args.fabric));
    j.push_str(&format!("  \"engine\": \"{}\",\n", args.engine));
    j.push_str(&format!(
        "  \"presets\": [{}],\n",
        preset_order
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!(
        "  \"fault_counts\": [{}],\n",
        args.fault_counts
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!("  \"fault_seeds\": {},\n", args.fault_seeds));
    j.push_str(&format!(
        "  \"pinned_faults\": [{}],\n",
        args.fault_specs
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    j.push_str(&format!("  \"total_wall_ms\": {wall_ms:.3},\n"));
    j.push_str("  \"degradation\": [\n");
    for (pi, (p, curves)) in degradation.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"arch\": \"{}\", \"curve\": [",
            json_escape(p)
        ));
        for (ci, c) in curves.iter().enumerate() {
            let rate = if c.points == 0 {
                1.0
            } else {
                (c.points - c.infeasible) as f64 / c.points as f64
            };
            j.push_str(&format!(
                "{}{{\"faults\": {}, \"points\": {}, \"wedged\": {}, \"remapped\": {}, \"infeasible\": {}, \"success_rate\": {rate:.4}, \"geomean_cycles\": {:.1}}}",
                if ci == 0 { "" } else { ", " },
                c.faults,
                c.points,
                c.wedged,
                c.remapped,
                c.infeasible,
                c.geomean_cycles
            ));
        }
        j.push_str(&format!(
            "]}}{}\n",
            if pi + 1 == degradation.len() { "" } else { "," }
        ));
    }
    j.push_str("  ],\n");
    j.push_str("  \"points\": [\n");
    for (i, m) in measured.iter().enumerate() {
        let wedged = match &m.wedged {
            Some(w) => format!("\"{}\"", json_escape(w)),
            None => "null".to_string(),
        };
        let cycles = match m.cycles {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        j.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"arch\": \"{}\", \"faults\": {}, \"fault_seed\": {}, \"specs\": \"{}\", \"wedged\": {wedged}, \"remapped\": {}, \"cycles\": {cycles}, \"verified\": {}}}{}\n",
            json_escape(&m.kernel),
            json_escape(&m.arch),
            m.faults,
            m.fault_seed,
            json_escape(&m.specs),
            m.remapped,
            m.cycles.is_some(),
            if i + 1 == measured.len() { "" } else { "," }
        ));
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&args.out, &j).map_err(|e| format!("writing {}: {e}", args.out))?;

    if let (Some(path), Some(t)) = (&args.trace, &tracer) {
        std::fs::write(path, t.to_chrome_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("fault_sweep: wrote {} trace events to {path}", t.len());
    }

    let wedged: usize = measured.iter().filter(|m| m.wedged.is_some()).count();
    let remapped: usize = measured.iter().filter(|m| m.remapped).count();
    let infeasible: usize = measured.iter().filter(|m| m.cycles.is_none()).count();
    println!(
        "fault_sweep: {} kernels x {} presets x {:?} faults = {npoints} points ({wedged} wedged, {remapped} remapped, {infeasible} infeasible), {wall_ms:.1} ms ({threads} threads) -> {}",
        tags.len(),
        preset_order.len(),
        args.fault_counts,
        args.out
    );
    for (p, curves) in &degradation {
        let cells: Vec<String> = curves
            .iter()
            .map(|c| {
                let rate = if c.points == 0 {
                    1.0
                } else {
                    (c.points - c.infeasible) as f64 / c.points as f64
                };
                format!(
                    "{}f {:.0} cyc {:.0}% ok",
                    c.faults,
                    c.geomean_cycles,
                    rate * 100.0
                )
            })
            .collect();
        println!("fault_sweep: {p}: {}", cells.join(", "));
    }
    if gate_violations > 0 {
        return Err(format!(
            "{gate_violations} zero-fault point(s) diverged from {}",
            args.check.as_deref().unwrap_or("the baseline")
        ));
    }
    Ok(())
}
