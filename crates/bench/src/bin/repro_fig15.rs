//! Fig 15: outer-BB PE utilization and pipeline utilization, before and
//! after Agile PE Assignment, on the nested-loop benchmarks.

use marionette::experiments::fig15;
use marionette_bench::{report, scale_from_args};

fn main() {
    let f = fig15(scale_from_args(), 1).expect("experiment");
    report::print_fig15(&f);
}
