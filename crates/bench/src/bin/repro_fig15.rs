//! Fig 15: outer-BB PE utilization and pipeline utilization, before and
//! after Agile PE Assignment, on the nested-loop benchmarks.

use marionette::experiments::fig15;
use marionette_bench::{banner, scale_from_args};

fn main() {
    banner("Fig 15 — utilization effects of Agile PE Assignment", "MICRO'23 Fig 15");
    let f = fig15(scale_from_args(), 1).expect("experiment");
    println!(
        "{:<8} {:>12} {:>12} {:>8} | {:>11} {:>11} {:>7}",
        "kernel", "outer before", "outer after", "gain", "pipe before", "pipe after", "gain"
    );
    let mut outer_gains = Vec::new();
    let mut pipe_gains = Vec::new();
    for i in 0..f.kernels.len() {
        let og = f.outer_util_after[i] / f.outer_util_before[i].max(1e-9);
        let pg = f.pipe_util_after[i] / f.pipe_util_before[i].max(1e-9);
        outer_gains.push(og);
        pipe_gains.push(pg);
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>7.1}x | {:>10.1}% {:>10.1}% {:>6.2}x",
            f.kernels[i],
            100.0 * f.outer_util_before[i],
            100.0 * f.outer_util_after[i],
            og,
            100.0 * f.pipe_util_before[i],
            100.0 * f.pipe_util_after[i],
            pg
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "mean outer-BB utilization gain: {:.1}x (paper: 21.57x avg, 134x on GEMM)",
        outer_gains.iter().sum::<f64>() / outer_gains.len() as f64
    );
    println!(
        "mean pipeline utilization gain: {:.2}x (paper: 1.54x avg)",
        pipe_gains.iter().sum::<f64>() / pipe_gains.len() as f64
    );
}
