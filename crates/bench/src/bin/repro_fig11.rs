//! Fig 11: Marionette PE (with Proactive PE Configuration) vs the generic
//! von Neumann and dataflow PE execution models.

use marionette::experiments::fig11;
use marionette_bench::{report, scale_from_args};

fn main() {
    let f = fig11(scale_from_args(), 1).expect("experiment");
    report::print_fig11(&f);
}
