//! Fig 11: Marionette PE (with Proactive PE Configuration) vs the generic
//! von Neumann and dataflow PE execution models.

use marionette::experiments::{fig11, geomean};
use marionette_bench::{banner, header, row, scale_from_args};

fn main() {
    banner("Fig 11 — PE execution model comparison", "MICRO'23 Fig 11");
    let f = fig11(scale_from_args(), 1).expect("experiment");
    println!("{}", header("kernel", &f.cycles.kernels));
    for (a, cyc) in &f.cycles.series {
        println!("{}", row(&format!("cycles {a}"), &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()));
    }
    println!("{}", row("speedup M-PE / vN", &f.speedup_vs_vn));
    println!("{}", row("speedup M-PE / DF", &f.speedup_vs_df));
    println!(
        "{}",
        row(
            "ops under branch (%)",
            &f.ops_under_branch.iter().map(|x| x * 100.0).collect::<Vec<_>>()
        )
    );
    println!("----------------------------------------------------------------");
    println!(
        "geomean speedup vs von Neumann PE: {:.2}x   (paper: 1.18x)",
        geomean(&f.speedup_vs_vn)
    );
    println!(
        "geomean speedup vs dataflow PE:    {:.2}x   (paper: 1.33x)",
        geomean(&f.speedup_vs_df)
    );
}
