//! `loadgen` — replay fuzz-corpus traffic against `mard` and measure it.
//!
//! Spins up an in-process server (or targets an external one via
//! `--addr`), generates a corpus of fuzz programs, and replays them at a
//! target concurrency in two phases:
//!
//! - **cold**: every distinct (program, preset) pair once — all misses;
//! - **repeat**: the remaining requests cycle the same corpus, a third
//!   of them with whitespace/comment mutations that must still hit the
//!   canonical-keyed cache.
//!
//! Emits a `BENCH_serve.json` report with a full latency histogram
//! (p50/p90/p95/p99/max plus per-bucket counts, bucketed identically to
//! the server's `/metrics` histogram), throughput, per-phase cache-hit
//! rates and the error count (which must be 0: the corpus is generated
//! to be servable, and every 200 is bit-verified by the server itself).
//!
//! ```text
//! loadgen [--requests N] [--concurrency C] [--programs P] [--seed S]
//!         [--addr HOST:PORT] [--out FILE]
//! ```

use marionette_serve::metrics::{Histogram, BUCKET_BOUNDS_US};
use marionette_serve::{ServeConfig, Server};
use std::collections::HashSet;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
loadgen: replay fuzz-corpus traffic against mard

USAGE:
  loadgen [OPTIONS]

OPTIONS:
  --requests N      total requests to send     [default: 500]
  --concurrency C   client threads             [default: 4]
  --programs P      distinct corpus programs   [default: 16]
  --seed S          corpus generation seed     [default: 1]
  --addr HOST:PORT  target an external mard (default: in-process server)
  --out FILE        write the JSON report here (default: stdout)
  --help            print this help
";

/// Preset rotation for the corpus: a spread of control-flow planes so
/// the cache holds heterogeneous artifacts.
const PRESETS: &[&str] = &["M", "DF", "RT"];

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("loadgen: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

struct Flags {
    requests: usize,
    concurrency: usize,
    programs: usize,
    seed: u64,
    addr: Option<String>,
    out: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        requests: 500,
        concurrency: 4,
        programs: 16,
        seed: 1,
        addr: None,
        out: None,
    };
    let mut seen: HashSet<&'static str> = HashSet::new();
    let mut i = 0;
    while i < args.len() {
        let canon: &'static str = match args[i].as_str() {
            "--requests" => "--requests",
            "--concurrency" => "--concurrency",
            "--programs" => "--programs",
            "--seed" => "--seed",
            "--addr" => "--addr",
            "--out" => "--out",
            other => return Err(format!("unknown flag `{other}`")),
        };
        if !seen.insert(canon) {
            return Err(format!("duplicate flag `{canon}`"));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("`{canon}` needs a value"))?;
        let num = |what: &str| {
            value
                .parse::<u64>()
                .map_err(|_| format!("`{what}`: `{value}` is not a number"))
        };
        match canon {
            "--requests" => f.requests = num(canon)?.max(1) as usize,
            "--concurrency" => f.concurrency = num(canon)?.max(1) as usize,
            "--programs" => f.programs = num(canon)?.max(1) as usize,
            "--seed" => f.seed = num(canon)?,
            "--addr" => f.addr = Some(value.clone()),
            "--out" => f.out = Some(value.clone()),
            _ => unreachable!(),
        }
        i += 2;
    }
    Ok(f)
}

/// One scheduled request: source body + query string.
#[derive(Clone)]
struct Shot {
    query: String,
    body: Arc<String>,
}

/// Whitespace/comment mutation: semantically identical source that must
/// hit the same canonical cache entry.
fn restyle(src: &str, salt: usize) -> String {
    let mut out = format!("// loadgen restyle #{salt}: formatting only\n");
    for line in src.lines() {
        out.push_str(line);
        out.push('\n');
        if salt.is_multiple_of(2) {
            out.push('\n'); // extra blank line between statements
        }
    }
    out
}

/// Renders a JSON array of u64s on one line.
fn json_u64s(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

fn send(addr: SocketAddr, shot: &Shot) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let timeout = Some(Duration::from_secs(120));
    s.set_read_timeout(timeout).ok();
    s.set_write_timeout(timeout).ok();
    let head = format!(
        "POST /run?{} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n",
        shot.query,
        shot.body.len()
    );
    s.write_all(head.as_bytes()).map_err(|e| e.to_string())?;
    s.write_all(shot.body.as_bytes())
        .map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| e.to_string())?;
    let text = String::from_utf8_lossy(&buf).into_owned();
    let (h, body) = text.split_once("\r\n\r\n").ok_or("truncated response")?;
    let status: u16 = h
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or("bad status line")?;
    Ok((status, body.to_string()))
}

/// Replays `shots` from `threads` client threads; returns per-request
/// latencies (µs) and the error count.
fn replay(addr: SocketAddr, shots: &[Shot], threads: usize) -> (Vec<u64>, u64) {
    let next = AtomicUsize::new(0);
    let errors = AtomicU64::new(0);
    let mut latencies: Vec<u64> = Vec::with_capacity(shots.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= shots.len() {
                            break;
                        }
                        let start = Instant::now();
                        match send(addr, &shots[i]) {
                            Ok((200, body)) if body.contains("\"verified\": true") => {
                                mine.push(start.elapsed().as_micros() as u64);
                            }
                            Ok((status, body)) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                let head: String = body.chars().take(200).collect();
                                eprintln!("loadgen: status {status}: {head}");
                            }
                            Err(e) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                eprintln!("loadgen: transport: {e}");
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    (latencies, errors.load(Ordering::Relaxed))
}

fn cache_stats(addr: SocketAddr) -> (u64, u64) {
    let mut s = TcpStream::connect(addr).expect("connect for stats");
    s.write_all(b"GET /stats HTTP/1.1\r\nHost: loadgen\r\n\r\n")
        .expect("stats request");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("stats response");
    let text = String::from_utf8_lossy(&buf);
    let grab = |key: &str| -> u64 {
        text.split(&format!("\"{key}\": "))
            .nth(1)
            .and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .and_then(|d| d.parse().ok())
            })
            .unwrap_or(0)
    };
    (grab("hits"), grab("misses"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => return usage_error(&e),
    };

    // In-process server unless an external one was named.
    let (addr, server) = match &flags.addr {
        Some(a) => match a.parse::<SocketAddr>() {
            Ok(addr) => (addr, None),
            Err(e) => return usage_error(&format!("`--addr`: {e}")),
        },
        None => {
            let server = match Server::start(ServeConfig {
                workers: flags.concurrency.max(2),
                queue_cap: flags.concurrency * 4,
                ..ServeConfig::default()
            }) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("loadgen: in-process server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (server.addr(), Some(server))
        }
    };

    // Corpus: P fuzz programs, rendered to .mar source.
    let corpus: Vec<Arc<String>> = (0..flags.programs)
        .map(|i| {
            let p = marionette_fuzzgen::gen::generate(
                flags.seed.wrapping_add(i as u64),
                &marionette_fuzzgen::gen::GenConfig::default(),
            );
            Arc::new(marionette_fuzzgen::source::to_mar(&p))
        })
        .collect();

    // Cold phase: every (program, preset) pair once.
    let mut cold: Vec<Shot> = Vec::new();
    for body in &corpus {
        for preset in PRESETS {
            cold.push(Shot {
                query: format!("preset={preset}"),
                body: Arc::clone(body),
            });
        }
    }
    if cold.len() > flags.requests {
        cold.truncate(flags.requests);
    }

    // Repeat phase: cycle the corpus for the remaining budget; every
    // third request is a restyled (whitespace/comment-mutated) copy
    // that must still hit.
    let mut repeat: Vec<Shot> = Vec::new();
    let mut i = 0usize;
    while cold.len() + repeat.len() < flags.requests {
        let body = &corpus[i % corpus.len()];
        let preset = PRESETS[(i / corpus.len()) % PRESETS.len()];
        let body = if i.is_multiple_of(3) {
            Arc::new(restyle(body, i))
        } else {
            Arc::clone(body)
        };
        repeat.push(Shot {
            query: format!("preset={preset}"),
            body,
        });
        i += 1;
    }

    let started = Instant::now();
    let (hits0, misses0) = cache_stats(addr);
    let (cold_lat, cold_errors) = replay(addr, &cold, flags.concurrency);
    let (hits1, misses1) = cache_stats(addr);
    let (repeat_lat, repeat_errors) = replay(addr, &repeat, flags.concurrency);
    let (hits2, misses2) = cache_stats(addr);
    let wall = started.elapsed();

    let errors = cold_errors + repeat_errors;
    // The same fixed-bucket histogram type that backs the server's
    // /metrics endpoint, so client- and server-side latency bucket
    // identically and the two views can be compared directly.
    let hist = Histogram::new();
    for &us in cold_lat.iter().chain(repeat_lat.iter()) {
        hist.observe(us);
    }
    let repeat_hits = hits2 - hits1;
    let repeat_total = (hits2 + misses2) - (hits1 + misses1);
    let repeat_hit_rate = if repeat_total == 0 {
        0.0
    } else {
        repeat_hits as f64 / repeat_total as f64
    };
    let total = cold.len() + repeat.len();
    let mean = if hist.count() == 0 {
        0
    } else {
        hist.sum_us() / hist.count()
    };
    // Non-cumulative per-bucket counts (one per bound, plus +Inf).
    let cum = hist.cumulative();
    let bucket_counts: Vec<u64> = cum
        .iter()
        .scan(0u64, |prev, &c| {
            let n = c - *prev;
            *prev = c;
            Some(n)
        })
        .collect();

    let report = format!(
        "{{\n  \"schema\": \"marionette.loadgen/v1\",\n  \"requests\": {},\n  \"concurrency\": {},\n  \"programs\": {},\n  \"presets\": {},\n  \"seed\": {},\n  \"errors\": {},\n  \"phases\": {{\n    \"cold\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}}},\n    \"repeat\": {{\"requests\": {}, \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}}}\n  }},\n  \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}, \"max\": {}}},\n  \"latency_histogram\": {{\n    \"bounds_us\": {},\n    \"counts\": {},\n    \"count\": {},\n    \"sum_us\": {}\n  }},\n  \"wall_seconds\": {:.3},\n  \"throughput_rps\": {:.1}\n}}\n",
        total,
        flags.concurrency,
        flags.programs,
        PRESETS.len(),
        flags.seed,
        errors,
        cold.len(),
        hits1 - hits0,
        misses1 - misses0,
        repeat.len(),
        repeat_hits,
        repeat_total - repeat_hits,
        repeat_hit_rate,
        hist.quantile_us(0.50),
        hist.quantile_us(0.90),
        hist.quantile_us(0.95),
        hist.quantile_us(0.99),
        mean,
        hist.max_us(),
        json_u64s(BUCKET_BOUNDS_US),
        json_u64s(&bucket_counts),
        hist.count(),
        hist.sum_us(),
        wall.as_secs_f64(),
        total as f64 / wall.as_secs_f64().max(1e-9),
    );

    match &flags.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("loadgen: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "loadgen: {total} requests, {errors} errors, repeat hit rate {:.0}%, p50 {}us p99 {}us max {}us -> {path}",
                repeat_hit_rate * 100.0,
                hist.quantile_us(0.50),
                hist.quantile_us(0.99),
                hist.max_us(),
            );
        }
        None => print!("{report}"),
    }

    if let Some(s) = server {
        s.stop();
    }
    if errors > 0 {
        eprintln!("loadgen: {errors} request(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
