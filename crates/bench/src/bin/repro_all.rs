//! Runs every repro experiment in sequence (figures 11-17 and the
//! tables). Pass --paper for the full Table 5 data sizes.

fn main() {
    let arg = if std::env::args().any(|a| a == "--paper") {
        &["--paper"][..]
    } else {
        &[]
    };
    let me = std::env::current_exe().expect("self path");
    let dir = me.parent().expect("bin dir");
    for bin in [
        "repro_tables",
        "repro_fig11",
        "repro_fig12",
        "repro_fig13",
        "repro_fig14",
        "repro_fig15",
        "repro_fig16",
        "repro_fig17",
    ] {
        let path = dir.join(bin);
        let status = std::process::Command::new(&path)
            .args(arg)
            .status()
            .unwrap_or_else(|e| panic!("running {bin}: {e} (build with `cargo build --release -p marionette-bench` first)"));
        assert!(status.success(), "{bin} failed");
        println!();
    }
}
