//! Runs every repro experiment (figures 11-17 and the tables) in one
//! process, computing shared sweeps only once: the feature ladder behind
//! Figs 12/14/16 is simulated one time and sliced per figure. Pass
//! `--paper` for the full Table 5 data sizes.

use marionette::experiments;
use marionette_bench::report;
use marionette_bench::scale_from_args;
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let t0 = Instant::now();

    report::print_tables();
    println!();

    let f11 = experiments::fig11(scale, 1).expect("fig11");
    report::print_fig11(&f11);
    println!();

    // One sweep feeds Figs 12, 14 and 16.
    let ladder = experiments::ladder(scale, 1).expect("ladder");
    report::print_fig12(&ladder.fig12());
    println!();

    report::print_fig13();
    println!();

    report::print_fig14(&ladder.fig14());
    println!();

    let f15 = experiments::fig15(scale, 1).expect("fig15");
    report::print_fig15(&f15);
    println!();

    report::print_fig16(&ladder.fig16());
    println!();

    let f17 = experiments::fig17(scale, 1).expect("fig17");
    report::print_fig17(&f17);
    println!();

    println!(
        "repro_all: done in {:.2}s ({} threads; set MARIONETTE_THREADS=1 for serial)",
        t0.elapsed().as_secs_f64(),
        marionette::parallel::sweep_threads()
    );
}
