//! Fig 14: Agile PE Assignment's contribution on imperfect loops.

use marionette::experiments::fig14;
use marionette_bench::{report, scale_from_args};

fn main() {
    let f = fig14(scale_from_args(), 1).expect("experiment");
    report::print_fig14(&f);
}
