//! Fig 14: Agile PE Assignment's contribution on imperfect loops.

use marionette::experiments::{fig14, geomean};
use marionette_bench::{banner, header, row, scale_from_args};

fn main() {
    banner("Fig 14 — Agile PE Assignment speedup", "MICRO'23 Fig 14");
    let f = fig14(scale_from_args(), 1).expect("experiment");
    println!("{}", header("kernel", &f.cycles.kernels));
    for (a, cyc) in &f.cycles.series {
        println!("{}", row(&format!("cycles {a}"), &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()));
    }
    println!("{}", row("speedup from Agile", &f.speedup));
    println!("----------------------------------------------------------------");
    println!(
        "geomean speedup: {:.2}x   (paper: 2.03x, up to 5.99x)",
        geomean(&f.speedup)
    );
}
