//! Fig 13: control-network delay vs stage count vs clock frequency
//! (the DC-synthesis scalability study, reproduced analytically).

use marionette::hw::netdelay::paper_sweep;

fn main() {
    println!("================================================================");
    println!("Fig 13 — control network scalability (analytical 28nm model)");
    println!("================================================================");
    println!("{:>7} {:>10} {:>10} {:>10} {:>8}", "stages", "freq MHz", "path ns", "period ns", "cycles");
    for p in paper_sweep() {
        println!(
            "{:>7} {:>10} {:>10.3} {:>10.3} {:>8}",
            p.stages, p.freq_mhz, p.path_delay_ns, p.period_ns, p.cycles
        );
    }
    println!("----------------------------------------------------------------");
    println!("The paper's operating point (64 lines / 11 stages @ 500 MHz) is 1 cycle;");
    println!("latency grows slowly with frequency and fabric size.");
}
