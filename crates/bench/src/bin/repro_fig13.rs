//! Fig 13: control-network delay vs stage count vs clock frequency
//! (the DC-synthesis scalability study, reproduced analytically).

use marionette_bench::report;

fn main() {
    report::print_fig13();
}
