//! Differential trace comparator.
//!
//! Loads two Chrome trace-event JSON files written by the simulator's
//! cycle tracer (`marc --trace`, `bench_sim --trace`, `fault_sweep
//! --trace`) and reports where the two timelines diverge: the first
//! event (and its cycle) at which they differ, plus per-track
//! stall-cycle deltas. This turns the repo's differential harnesses
//! into a debugging workflow — heap-vs-wheel traces of the same kernel
//! must be identical, and a healthy-vs-remapped pair shows exactly
//! which links the healed mapping pays its extra cycles on.
//!
//! ```text
//! trace_diff A.json B.json [--limit N]
//! ```
//!
//! `--limit N` caps the number of per-track stall-delta lines printed
//! (default 10; the summary always counts every differing track).
//!
//! Exit codes: `0` traces identical, `1` diverged, `2` usage errors
//! (bad flags, unreadable files, schema violations).

use marionette::sim::trace::{parse, ParsedTrace};

struct Args {
    a: String,
    b: String,
    limit: usize,
}

fn usage() -> String {
    "usage: trace_diff A.json B.json [--limit N]".to_string()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut pos: Vec<String> = Vec::new();
    let mut limit = 10usize;
    let mut seen = std::collections::HashSet::new();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--limit" => {
                if !seen.insert("--limit") {
                    return Err(format!("duplicate flag `--limit`\n{}", usage()));
                }
                i += 1;
                let v = match argv.get(i) {
                    Some(v) if !v.starts_with("--") => v,
                    _ => return Err(format!("--limit needs a value\n{}", usage())),
                };
                limit = v
                    .parse()
                    .map_err(|_| format!("--limit needs a count, got `{v}`\n{}", usage()))?;
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument `{flag}`\n{}", usage()))
            }
            path => pos.push(path.to_string()),
        }
        i += 1;
    }
    if pos.len() != 2 {
        return Err(format!(
            "expected exactly two trace files, got {}\n{}",
            pos.len(),
            usage()
        ));
    }
    let b = pos.pop().expect("two positionals");
    let a = pos.pop().expect("two positionals");
    Ok(Args { a, b, limit })
}

fn load(path: &str) -> Result<ParsedTrace, String> {
    let s = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse(&s).map_err(|e| format!("{path}: {e}"))
}

/// One event resolved to its track *name*, so traces whose tracks were
/// created in different first-use orders still compare by meaning.
fn describe(t: &ParsedTrace, i: usize) -> String {
    let e = &t.events[i];
    let track = &t.tracks[e.track as usize];
    match e.ph {
        'C' => format!("[{track}] counter {} = {}", e.name, e.value.unwrap_or(0)),
        'i' => format!("[{track}] mark \"{}\" @ {}", e.name, e.ts),
        _ => format!("[{track}] {} @ {} dur {}", e.name, e.ts, e.dur),
    }
}

/// Index of the first event at which the two timelines differ, or
/// `None` when one is a prefix of the other (or they are identical).
fn first_divergence(a: &ParsedTrace, b: &ParsedTrace) -> Option<usize> {
    (0..a.events.len().min(b.events.len())).find(|&i| {
        let (ea, eb) = (&a.events[i], &b.events[i]);
        a.tracks[ea.track as usize] != b.tracks[eb.track as usize]
            || ea.ph != eb.ph
            || ea.ts != eb.ts
            || ea.dur != eb.dur
            || ea.name != eb.name
            || ea.value != eb.value
    })
}

/// Per-track stall cycles keyed by track name.
fn stalls_by_name(t: &ParsedTrace) -> std::collections::BTreeMap<String, u64> {
    t.tracks
        .iter()
        .cloned()
        .zip(t.stall_by_track())
        .filter(|(_, s)| *s > 0)
        .collect()
}

/// Returns `true` when the traces are identical.
fn run(args: &Args) -> Result<bool, String> {
    let a = load(&args.a)?;
    let b = load(&args.b)?;

    let div = first_divergence(&a, &b);
    let identical = div.is_none() && a.events.len() == b.events.len() && a.tracks == b.tracks;
    if identical {
        println!(
            "trace_diff: traces identical ({} tracks, {} events, last cycle {})",
            a.tracks.len(),
            a.events.len(),
            a.last_cycle()
        );
        return Ok(true);
    }

    match div {
        Some(i) => {
            let cycle = a.events[i].ts.min(b.events[i].ts);
            println!("trace_diff: first divergence at event {i}, cycle {cycle}:");
            println!("  {}: {}", args.a, describe(&a, i));
            println!("  {}: {}", args.b, describe(&b, i));
        }
        None => {
            // One timeline is a strict prefix of the other: the first
            // divergence is the first event only one of them has.
            let i = a.events.len().min(b.events.len());
            let (longer, path) = if a.events.len() > b.events.len() {
                (&a, &args.a)
            } else {
                (&b, &args.b)
            };
            println!(
                "trace_diff: first divergence at event {i}, cycle {}: only {path} continues:",
                longer.events[i].ts
            );
            println!("  {path}: {}", describe(longer, i));
        }
    }
    println!(
        "trace_diff: {} has {} events to cycle {}; {} has {} events to cycle {}",
        args.a,
        a.events.len(),
        a.last_cycle(),
        args.b,
        b.events.len(),
        b.last_cycle()
    );

    // Per-track stall attribution: where the two runs wait differently.
    let (sa, sb) = (stalls_by_name(&a), stalls_by_name(&b));
    let names: std::collections::BTreeSet<&String> = sa.keys().chain(sb.keys()).collect();
    let mut deltas: Vec<(&String, u64, u64)> = names
        .into_iter()
        .map(|n| {
            (
                n,
                sa.get(n).copied().unwrap_or(0),
                sb.get(n).copied().unwrap_or(0),
            )
        })
        .filter(|(_, va, vb)| va != vb)
        .collect();
    deltas.sort_by_key(|(n, va, vb)| (std::cmp::Reverse(va.abs_diff(*vb)), (*n).clone()));
    if deltas.is_empty() {
        println!("trace_diff: no per-track stall deltas");
    } else {
        println!(
            "trace_diff: {} track(s) differ in stall cycles:",
            deltas.len()
        );
        for (n, va, vb) in deltas.iter().take(args.limit) {
            let sign = if vb >= va { "+" } else { "-" };
            println!("  {n}: {sign}{} cycles ({va} vs {vb})", va.abs_diff(*vb));
        }
        if deltas.len() > args.limit {
            println!("  ... {} more (raise --limit)", deltas.len() - args.limit);
        }
    }
    Ok(false)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trace_diff: {e}");
            std::process::exit(2);
        }
    };
    match run(&args) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("trace_diff: {e}");
            std::process::exit(2);
        }
    }
}
