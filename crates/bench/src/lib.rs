//! Shared formatting helpers for the `repro_*` binaries that regenerate
//! the paper's tables and figures.

pub mod report;
pub mod snapshot;

use marionette::kernels::traits::Scale;

/// Parses the common CLI convention: `--paper` selects Table 5 sizes,
/// otherwise reduced sizes run in seconds.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Small
    }
}

/// Prints a header banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; pass --paper for Table 5 data sizes)");
    println!("================================================================");
}

/// Formats a speedup series as a table row.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<26}");
    for v in values {
        s.push_str(&format!(" {v:>7.2}"));
    }
    s
}

/// Formats a kernel-tag header row.
pub fn header(first: &str, tags: &[String]) -> String {
    let mut s = format!("{first:<26}");
    for t in tags {
        s.push_str(&format!(" {t:>7}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formatting() {
        let r = row("x", &[1.0, 2.5]);
        assert!(r.contains("1.00") && r.contains("2.50"));
        let h = header("k", &["A".into(), "B".into()]);
        assert!(h.contains('A') && h.contains('B'));
    }
}
