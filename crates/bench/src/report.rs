//! Shared figure/table printers.
//!
//! Each `repro_*` binary and the in-process `repro_all` driver print
//! through these functions, so the sweep driver can compute shared
//! experiment results once (see `marionette::experiments::ladder`)
//! without duplicating any formatting.

use crate::{banner, header, row};
use marionette::experiments::{geomean, Fig11, Fig12, Fig14, Fig15, Fig16, Fig17};
use marionette::hw::breakdown::{area_power_breakdown, FabricParams};
use marionette::hw::netcmp::network_comparison;
use marionette::hw::netdelay::paper_sweep;
use marionette::kernels::traits::Scale;

/// Prints Tables 1-6.
pub fn print_tables() {
    println!("=== Table 1: control flow forms across the benchmarks ===");
    println!(
        "{:<18} {:<22} {:<28} {:<28}",
        "workload", "domain", "branches", "loops"
    );
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Tiny, 0);
        let g = k
            .build(&wl)
            .expect("suite kernels build from their own workloads");
        let p = marionette::cdfg::analysis::profile(&g);
        println!(
            "{:<18} {:<22} {:<28} {:<28}",
            k.name(),
            k.domain(),
            p.branch_text(),
            p.loop_text()
        );
    }

    println!("\n=== Table 2: SA taxonomy by PE execution model ===");
    for r in marionette::arch::taxonomy::sa_taxonomy() {
        println!("{:<12} {:<12} {}", r.architecture, r.class, r.mechanism);
    }

    println!("\n=== Table 3: control-flow capability matrix ===");
    println!(
        "{:<12} {:>11} {:>13} {:>22}",
        "architecture", "autonomous", "peer-to-peer", "temporally decoupled"
    );
    for (name, c) in marionette::arch::taxonomy::capability_matrix() {
        let t = |b: bool| if b { "yes" } else { "no" };
        println!(
            "{name:<12} {:>11} {:>13} {:>22}",
            t(c.autonomous),
            t(c.peer_to_peer),
            t(c.temporally_decoupled)
        );
    }

    println!("\n=== Table 4: area & power breakdown (28nm, 500MHz, 4x4) ===");
    println!(
        "{:<10} {:<42} {:>10} {:>10}",
        "category", "component", "area mm2", "power mW"
    );
    for r in area_power_breakdown(FabricParams::paper()) {
        println!(
            "{:<10} {:<42} {:>10.4} {:>10.2}",
            r.category, r.component, r.area_mm2, r.power_mw
        );
    }
    println!("(paper totals: 0.151 mm2, 152.09 mW)");

    println!("\n=== Table 5: benchmark data sizes (Paper scale) ===");
    for k in marionette::kernels::all() {
        let wl = k.workload(Scale::Paper, 0);
        let sizes: Vec<String> = wl.sizes.iter().map(|(n, v)| format!("{n}={v}")).collect();
        println!("{:<18} {}", k.name(), sizes.join(", "));
    }

    println!("\n=== Table 6: network area vs state of the art (normalized) ===");
    println!(
        "{:<12} {:>9} {:>12} {:>9} {:>12} {:>9}",
        "arch", "PE mm2", "network mm2", "fabric", "net ratio", "source"
    );
    for r in network_comparison() {
        println!(
            "{:<12} {:>9.4} {:>12.4} {:>9.4} {:>11.1}% {:>9}",
            r.architecture,
            r.pe_area_mm2,
            r.network_area_mm2,
            r.fabric_area(),
            100.0 * r.network_ratio(),
            if r.computed { "computed" } else { "paper" }
        );
    }
    println!("(paper: Marionette network ratio 11.5%)");
}

/// Prints the Fig 11 comparison (PE execution models).
pub fn print_fig11(f: &Fig11) {
    banner("Fig 11 — PE execution model comparison", "MICRO'23 Fig 11");
    println!("{}", header("kernel", &f.cycles.kernels));
    for (a, cyc) in &f.cycles.series {
        println!(
            "{}",
            row(
                &format!("cycles {a}"),
                &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()
            )
        );
    }
    println!("{}", row("speedup M-PE / vN", &f.speedup_vs_vn));
    println!("{}", row("speedup M-PE / DF", &f.speedup_vs_df));
    println!(
        "{}",
        row(
            "ops under branch (%)",
            &f.ops_under_branch
                .iter()
                .map(|x| x * 100.0)
                .collect::<Vec<_>>()
        )
    );
    println!("----------------------------------------------------------------");
    println!(
        "geomean speedup vs von Neumann PE: {:.2}x   (paper: 1.18x)",
        geomean(&f.speedup_vs_vn)
    );
    println!(
        "geomean speedup vs dataflow PE:    {:.2}x   (paper: 1.33x)",
        geomean(&f.speedup_vs_df)
    );
}

/// Prints the Fig 12 ablation (control network).
pub fn print_fig12(f: &Fig12) {
    banner("Fig 12 — control network speedup", "MICRO'23 Fig 12");
    println!("{}", header("kernel", &f.cycles.kernels));
    for (a, cyc) in &f.cycles.series {
        println!(
            "{}",
            row(
                &format!("cycles {a}"),
                &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()
            )
        );
    }
    println!("{}", row("speedup from ctrl net", &f.speedup));
    println!("----------------------------------------------------------------");
    println!(
        "geomean speedup: {:.2}x   (paper: 1.14x, up to 1.36x on CRC)",
        geomean(&f.speedup)
    );
}

/// Prints the Fig 13 network-delay study.
pub fn print_fig13() {
    println!("================================================================");
    println!("Fig 13 — control network scalability (analytical 28nm model)");
    println!("================================================================");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>8}",
        "stages", "freq MHz", "path ns", "period ns", "cycles"
    );
    for p in paper_sweep() {
        println!(
            "{:>7} {:>10} {:>10.3} {:>10.3} {:>8}",
            p.stages, p.freq_mhz, p.path_delay_ns, p.period_ns, p.cycles
        );
    }
    println!("----------------------------------------------------------------");
    println!("The paper's operating point (64 lines / 11 stages @ 500 MHz) is 1 cycle;");
    println!("latency grows slowly with frequency and fabric size.");
}

/// Prints the Fig 14 ablation (Agile PE Assignment).
pub fn print_fig14(f: &Fig14) {
    banner("Fig 14 — Agile PE Assignment speedup", "MICRO'23 Fig 14");
    println!("{}", header("kernel", &f.cycles.kernels));
    for (a, cyc) in &f.cycles.series {
        println!(
            "{}",
            row(
                &format!("cycles {a}"),
                &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()
            )
        );
    }
    println!("{}", row("speedup from Agile", &f.speedup));
    println!("----------------------------------------------------------------");
    println!(
        "geomean speedup: {:.2}x   (paper: 2.03x, up to 5.99x)",
        geomean(&f.speedup)
    );
}

/// Prints the Fig 15 utilization study.
pub fn print_fig15(f: &Fig15) {
    banner(
        "Fig 15 — utilization effects of Agile PE Assignment",
        "MICRO'23 Fig 15",
    );
    println!(
        "{:<8} {:>12} {:>12} {:>8} | {:>11} {:>11} {:>7}",
        "kernel", "outer before", "outer after", "gain", "pipe before", "pipe after", "gain"
    );
    let mut outer_gains = Vec::new();
    let mut pipe_gains = Vec::new();
    for i in 0..f.kernels.len() {
        let og = f.outer_util_after[i] / f.outer_util_before[i].max(1e-9);
        let pg = f.pipe_util_after[i] / f.pipe_util_before[i].max(1e-9);
        outer_gains.push(og);
        pipe_gains.push(pg);
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>7.1}x | {:>10.1}% {:>10.1}% {:>6.2}x",
            f.kernels[i],
            100.0 * f.outer_util_before[i],
            100.0 * f.outer_util_after[i],
            og,
            100.0 * f.pipe_util_before[i],
            100.0 * f.pipe_util_after[i],
            pg
        );
    }
    println!("----------------------------------------------------------------");
    println!(
        "mean outer-BB utilization gain: {:.1}x (paper: 21.57x avg, 134x on GEMM)",
        outer_gains.iter().sum::<f64>() / outer_gains.len() as f64
    );
    println!(
        "mean pipeline utilization gain: {:.2}x (paper: 1.54x avg)",
        pipe_gains.iter().sum::<f64>() / pipe_gains.len() as f64
    );
}

/// Prints the Fig 16 feature-balance comparison.
pub fn print_fig16(f: &Fig16) {
    banner(
        "Fig 16 — control network vs Agile PE Assignment",
        "MICRO'23 Fig 16",
    );
    println!(
        "{:<8} {:>14} {:>14} {:>22}",
        "kernel", "ctrl-net gain", "agile gain", "dominant feature"
    );
    for i in 0..f.kernels.len() {
        let cn = f.cn_speedup[i];
        let ag = f.agile_speedup[i];
        let who = if (cn - 1.0) > 1.25 * (ag - 1.0) {
            "network"
        } else if (ag - 1.0) > 1.25 * (cn - 1.0) {
            "pipeline (agile)"
        } else {
            "balanced"
        };
        println!(
            "{:<8} {:>13.2}x {:>13.2}x {:>22}",
            f.kernels[i], cn, ag, who
        );
    }
    println!("----------------------------------------------------------------");
    println!("Paper: MS/ADPCM/CRC/LDPC lean on the network; VI/HT/SCD/GEMM on Agile.");
}

/// Prints the Fig 17 state-of-the-art face-off.
pub fn print_fig17(f: &Fig17) {
    banner("Fig 17 — state-of-the-art comparison", "MICRO'23 Fig 17");
    println!("intensive control flow:");
    println!("{}", header("kernel", &f.intensive.kernels));
    for (a, cyc) in &f.intensive.series {
        println!(
            "{}",
            row(
                &format!("cycles {a}"),
                &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()
            )
        );
    }
    for a in ["SB", "TIA", "RV", "RT"] {
        println!(
            "{}",
            row(&format!("speedup M / {a}"), &f.intensive.speedups("M", a))
        );
    }
    println!("\nnon-intensive control flow (must not regress):");
    println!("{}", header("kernel", &f.non_intensive.kernels));
    for (a, cyc) in &f.non_intensive.series {
        println!(
            "{}",
            row(
                &format!("cycles {a}"),
                &cyc.iter().map(|&c| c as f64).collect::<Vec<_>>()
            )
        );
    }
    println!("----------------------------------------------------------------");
    let paper = [("SB", 2.88), ("TIA", 3.38), ("RV", 1.55), ("RT", 2.66)];
    for (a, gm) in &f.geomeans {
        let p = paper.iter().find(|(t, _)| t == a).unwrap().1;
        println!("geomean speedup vs {a:<4}: {gm:.2}x   (paper: {p:.2}x)");
    }
    println!("\nfull LDPC application (pre + decode + post):");
    let paper_app = [("SB", 3.01), ("TIA", 3.13), ("RV", 2.36), ("RT", 2.68)];
    for (a, sp) in &f.ldpc_app_speedups {
        let p = paper_app.iter().find(|(t, _)| t == a).unwrap().1;
        println!("speedup vs {a:<4}: {sp:.2}x   (paper: {p:.2}x)");
    }
}
