//! Reading committed benchmark snapshots back in, and the perf-regression
//! gate built on them.
//!
//! The repo commits `BENCH_sim.json` (written by `bench_sim`) so the
//! perf/cycle trajectory is tracked across PRs. `bench_sim --check`
//! re-runs the greedy sweep and fails when any per-point cycle count
//! differs from the committed snapshot (a simulator/compiler semantics
//! change slipped through) or when the greedy sweep's wall clock
//! regresses beyond a threshold. The snapshots are written by our own
//! emitter, so a small line-oriented field scanner is all the parsing
//! this needs — no JSON dependency exists in the container.

use std::collections::BTreeMap;

/// One measured point parsed back out of a `bench_sim` snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchPoint {
    /// Kernel short tag.
    pub kernel: String,
    /// Architecture short tag.
    pub arch: String,
    /// Greedy-pipeline cycle count.
    pub cycles: u64,
    /// Greedy compile+simulate wall clock for this point, milliseconds.
    pub wall_ms: f64,
}

/// Extracts the string value of `"key": "..."` from `line`, if present.
pub fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extracts the numeric value of `"key": N` from `line`, if present
/// (stops at the first non-numeric character).
pub fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-' && c != 'e')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the per-point records of a `bench_sim` snapshot.
///
/// # Errors
/// Returns a message when no point records are found or a record is
/// missing a field.
pub fn parse_points(json: &str) -> Result<Vec<BenchPoint>, String> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(kernel) = field_str(line, "kernel") else {
            continue;
        };
        let arch =
            field_str(line, "arch").ok_or_else(|| format!("point record without arch: {line}"))?;
        let cycles = field_num(line, "cycles")
            .ok_or_else(|| format!("point record without cycles: {line}"))?
            as u64;
        let wall_ms = field_num(line, "wall_ms").unwrap_or(0.0);
        out.push(BenchPoint {
            kernel,
            arch,
            cycles,
            wall_ms,
        });
    }
    if out.is_empty() {
        return Err("no point records found (not a bench_sim snapshot?)".to_string());
    }
    Ok(out)
}

/// The comparable greedy wall clock of a snapshot: the recorded
/// `greedy_wall_ms` (sum of per-point greedy walls, independent of the
/// sweep's thread count) when present, otherwise the sum of per-point
/// `wall_ms`.
pub fn greedy_wall_ms(json: &str, points: &[BenchPoint]) -> f64 {
    json.lines()
        .find_map(|l| field_num(l, "greedy_wall_ms"))
        .unwrap_or_else(|| points.iter().map(|p| p.wall_ms).sum())
}

/// Compares a fresh greedy sweep against a committed baseline snapshot:
/// every `(kernel, arch)` point must exist on both sides with an
/// identical cycle count, and the fresh greedy wall clock must not
/// exceed `baseline × (1 + wall_tolerance)`.
///
/// Returns the list of violations (empty = gate passes).
pub fn check_against_baseline(
    baseline: &[BenchPoint],
    baseline_wall_ms: f64,
    fresh: &[BenchPoint],
    fresh_wall_ms: f64,
    wall_tolerance: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    let key = |p: &BenchPoint| (p.kernel.clone(), p.arch.clone());
    let base: BTreeMap<_, u64> = baseline.iter().map(|p| (key(p), p.cycles)).collect();
    let mut seen = BTreeMap::new();
    for p in fresh {
        seen.insert(key(p), p.cycles);
        match base.get(&key(p)) {
            None => violations.push(format!(
                "{} on {}: point missing from the baseline",
                p.kernel, p.arch
            )),
            Some(&want) if want != p.cycles => violations.push(format!(
                "{} on {}: cycles {} != baseline {} ({:+})",
                p.kernel,
                p.arch,
                p.cycles,
                want,
                p.cycles as i64 - want as i64
            )),
            Some(_) => {}
        }
    }
    for (k, _) in base {
        if !seen.contains_key(&k) {
            violations.push(format!("{} on {}: point missing from this run", k.0, k.1));
        }
    }
    if baseline_wall_ms > 0.0 && fresh_wall_ms > baseline_wall_ms * (1.0 + wall_tolerance) {
        violations.push(format!(
            "greedy wall {fresh_wall_ms:.1} ms regresses >{:.0}% over baseline {baseline_wall_ms:.1} ms",
            wall_tolerance * 100.0
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP: &str = r#"{
  "schema": "marionette.bench_sim/v1",
  "total_wall_ms": 100.000,
  "greedy_wall_ms": 80.000,
  "points": [
    {"kernel": "CRC", "arch": "M", "cycles": 123, "fires": 9, "cycles_search": 110, "wall_ms": 40.000},
    {"kernel": "MS", "arch": "vN", "cycles": 456, "fires": 8, "wall_ms": 40.000}
  ]
}"#;

    #[test]
    fn parses_points_and_wall() {
        let pts = parse_points(SNAP).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].kernel, "CRC");
        assert_eq!(pts[0].arch, "M");
        assert_eq!(pts[0].cycles, 123);
        assert_eq!(pts[1].cycles, 456);
        assert_eq!(greedy_wall_ms(SNAP, &pts), 80.0);
        let no_greedy = SNAP.replace("greedy_wall_ms", "x_wall_ms");
        assert_eq!(
            greedy_wall_ms(&no_greedy, &pts),
            80.0,
            "falls back to point sum"
        );
        assert!(parse_points("{}").is_err());
    }

    #[test]
    fn gate_passes_on_identical_runs() {
        let pts = parse_points(SNAP).unwrap();
        assert!(check_against_baseline(&pts, 80.0, &pts, 80.0, 0.25).is_empty());
        // Faster is fine; slower within tolerance is fine.
        assert!(check_against_baseline(&pts, 80.0, &pts, 60.0, 0.25).is_empty());
        assert!(check_against_baseline(&pts, 80.0, &pts, 99.0, 0.25).is_empty());
    }

    #[test]
    fn gate_catches_cycle_drift() {
        let base = parse_points(SNAP).unwrap();
        let mut fresh = base.clone();
        fresh[0].cycles += 1;
        let v = check_against_baseline(&base, 80.0, &fresh, 80.0, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("CRC on M"), "{v:?}");
        assert!(v[0].contains("124 != baseline 123"), "{v:?}");
    }

    #[test]
    fn gate_catches_missing_points_both_ways() {
        let base = parse_points(SNAP).unwrap();
        let fresh = vec![base[0].clone()];
        let v = check_against_baseline(&base, 0.0, &fresh, 0.0, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing from this run"));
        let v = check_against_baseline(&fresh, 0.0, &base, 0.0, 0.25);
        assert!(v[0].contains("missing from the baseline"));
    }

    #[test]
    fn gate_catches_wall_regression() {
        let pts = parse_points(SNAP).unwrap();
        let v = check_against_baseline(&pts, 80.0, &pts, 101.0, 0.25);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("regresses"));
    }
}
