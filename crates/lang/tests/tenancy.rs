//! Tenant-isolation guarantees of partitioned multi-kernel tenancy
//! (see `docs/PARTITIONING.md`):
//!
//! 1. every co-resident tenant is **bit-identical** to its solo run on
//!    an equal-sized fabric — cycles and fires — under all 9 presets;
//! 2. a wedging tenant reports its own typed outcome without poisoning
//!    its neighbours;
//! 3. invalid layouts are rejected with typed errors before anything
//!    compiles or runs.

use marionette::arch::{all_presets, preset_for_partition};
use marionette::compiler::{Partition, PartitionError};
use marionette::kernels::traits::Scale;
use marionette::sim::{EngineKind, SimError};
use marionette_cdfg::Cdfg;
use marionette_lang::driver::{reference, run_preset, Reference, INTERP_BUDGET};
use marionette_lang::tenancy::{run_tenancy, TenancyReport, TenantJob, TenantOutcome};
use marionette_lang::DriverError;

const MAX_CYCLES: u64 = 200_000_000;

fn kernel(tag: &str) -> (Cdfg, Reference) {
    let k = marionette::kernels::by_short(tag).expect("kernel tag");
    let wl = k.workload(Scale::Tiny, 7);
    let g = k.build(&wl).expect("kernel builds");
    let r = reference(&g, &[], INTERP_BUDGET).expect("reference interprets");
    (g, r)
}

/// Two 4x4 tenants side by side on a 4x8 host.
fn two_tenant_report(preset: &str, budgets: [u64; 2]) -> Result<TenancyReport, DriverError> {
    let parts = [Partition::new(4, 4, 0, 0), Partition::new(4, 4, 0, 4)];
    let (crc_g, crc_r) = kernel("CRC");
    let (fft_g, fft_r) = kernel("FFT");
    let archs = [
        preset_for_partition(&parts[0], preset).expect("preset tag"),
        preset_for_partition(&parts[1], preset).expect("preset tag"),
    ];
    let jobs = vec![
        TenantJob {
            name: "CRC".to_string(),
            g: &crc_g,
            reference: &crc_r,
            arch: &archs[0],
            partition: parts[0],
            overrides: Vec::new(),
            max_cycles: budgets[0],
        },
        TenantJob {
            name: "FFT".to_string(),
            g: &fft_g,
            reference: &fft_r,
            arch: &archs[1],
            partition: parts[1],
            overrides: Vec::new(),
            max_cycles: budgets[1],
        },
    ];
    run_tenancy(4, 8, &jobs, EngineKind::default())
}

#[test]
fn tenants_bit_match_solo_runs_under_all_presets() {
    // The central tenancy guarantee, pinned for every preset: a tenant
    // co-resident on a partition of a larger fabric runs bit-identically
    // (cycles AND fires) to a solo run on a fabric of its partition's
    // size. This is what makes partitioned sweep numbers composable
    // with solo sweep numbers.
    let parts = [Partition::new(4, 4, 0, 0), Partition::new(4, 4, 0, 4)];
    let (crc_g, crc_r) = kernel("CRC");
    let (fft_g, fft_r) = kernel("FFT");
    for arch in all_presets() {
        let tag = arch.short;
        let report = two_tenant_report(tag, [MAX_CYCLES, MAX_CYCLES])
            .unwrap_or_else(|e| panic!("{tag}: tenancy failed: {e}"));
        assert!(report.all_completed(), "{tag}: a tenant wedged");
        let solo_archs = [
            preset_for_partition(&parts[0], tag).unwrap(),
            preset_for_partition(&parts[1], tag).unwrap(),
        ];
        let solos = [
            run_preset(&crc_g, &crc_r, &solo_archs[0], &[], MAX_CYCLES, false)
                .unwrap_or_else(|e| panic!("{tag}: CRC solo failed: {e}")),
            run_preset(&fft_g, &fft_r, &solo_archs[1], &[], MAX_CYCLES, false)
                .unwrap_or_else(|e| panic!("{tag}: FFT solo failed: {e}")),
        ];
        for (t, solo) in report.tenants.iter().zip(&solos) {
            let run = t.outcome.run().expect("completed");
            assert_eq!(
                (run.cycles, run.fires),
                (solo.cycles, solo.fires),
                "{tag}: tenant {} diverges from its solo run",
                t.name
            );
        }
        assert_eq!(
            report.makespan_cycles,
            solos.iter().map(|s| s.cycles).max().unwrap(),
            "{tag}: makespan must be the max tenant cycle count"
        );
    }
}

#[test]
fn wedged_tenant_does_not_poison_neighbours() {
    // Starve the CRC tenant with a 5-cycle budget: it must come back as
    // its own typed CycleLimit outcome while the FFT tenant completes
    // and still bit-verifies against its reference.
    let report = two_tenant_report("M", [5, MAX_CYCLES]).expect("tenancy runs");
    assert!(!report.all_completed());
    match &report.tenants[0].outcome {
        TenantOutcome::Wedged(SimError::CycleLimit { limit }) => assert_eq!(*limit, 5),
        other => panic!("expected CycleLimit wedge, got {other:?}"),
    }
    let fft = report.tenants[1].outcome.run().expect("FFT completes");
    assert!(fft.cycles > 0 && fft.fires > 0);
    // The wedged tenant still occupies its partition up to the budget.
    assert!(report.makespan_cycles >= fft.cycles);
}

#[test]
fn overlapping_layout_is_rejected_typed() {
    let parts = [Partition::new(4, 4, 0, 0), Partition::new(4, 4, 0, 2)];
    let (crc_g, crc_r) = kernel("CRC");
    let (fft_g, fft_r) = kernel("FFT");
    let archs = [
        preset_for_partition(&parts[0], "M").unwrap(),
        preset_for_partition(&parts[1], "M").unwrap(),
    ];
    let jobs = vec![
        TenantJob {
            name: "CRC".to_string(),
            g: &crc_g,
            reference: &crc_r,
            arch: &archs[0],
            partition: parts[0],
            overrides: Vec::new(),
            max_cycles: MAX_CYCLES,
        },
        TenantJob {
            name: "FFT".to_string(),
            g: &fft_g,
            reference: &fft_r,
            arch: &archs[1],
            partition: parts[1],
            overrides: Vec::new(),
            max_cycles: MAX_CYCLES,
        },
    ];
    match run_tenancy(4, 8, &jobs, EngineKind::default()) {
        Err(DriverError::Partition(PartitionError::Overlap { .. })) => {}
        other => panic!("expected typed Overlap rejection, got {other:?}"),
    }
}

#[test]
fn off_fabric_layout_is_rejected_typed() {
    let part = Partition::new(4, 4, 0, 4);
    let (crc_g, crc_r) = kernel("CRC");
    let arch = preset_for_partition(&part, "M").unwrap();
    let jobs = vec![TenantJob {
        name: "CRC".to_string(),
        g: &crc_g,
        reference: &crc_r,
        arch: &arch,
        partition: part,
        overrides: Vec::new(),
        max_cycles: MAX_CYCLES,
    }];
    // 4x6 host: the partition's columns 4..8 spill off the fabric.
    match run_tenancy(4, 6, &jobs, EngineKind::default()) {
        Err(DriverError::Partition(PartitionError::OutOfFabric { .. })) => {}
        other => panic!("expected typed OutOfFabric rejection, got {other:?}"),
    }
}
