//! Semantic checks with source-located diagnostics.
//!
//! The checker enforces everything the lowering relies on, so
//! [`crate::lower::lower`] can assume a well-formed program:
//!
//! - **names**: every variable/array/parameter reference resolves; arrays
//!   are not used as scalars; stores only target `state` arrays; sink
//!   labels are unique and appear only at top level;
//! - **shape**: `yield` is the last statement of a loop or `if` body and
//!   its arity matches the carry count (loops) or the other side (`if`);
//!   `let` bindings match the result count of their right-hand side;
//!   loops never appear inside `if` sides (only loop-free hammocks are
//!   predicable — the same restriction the CDFG builder enforces);
//!   `while` needs at least one carry and a pure (load-free) condition;
//! - **types**: a small three-point lattice `i32 ⊑ word ⊒ f32` mirrors
//!   the machine's value model. Operators are selected syntactically
//!   (`+` vs `+.`), and the checker rejects *certainly wrong* operands —
//!   an integer operator applied to a known-`f32` value or vice versa —
//!   while `word` values (state-array loads, type-mixing carries and
//!   merges) are accepted everywhere and coerced by the hardware exactly
//!   as the reference interpreter specifies.

use crate::ast::{bin_symbol, Carry, Expr, ExprKind, Ident, LitKind, Program, Stmt, StmtKind, Ty};
use crate::diag::{Diagnostic, Span};
use marionette_cdfg::op::{BinOp, UnOp};
use std::collections::{HashMap, HashSet};

/// Static value type: the machine carries 32-bit words; `Word` is the
/// join of the two numeric views.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum STy {
    /// Certainly a 32-bit integer.
    I32,
    /// Certainly a 32-bit float.
    F32,
    /// Either, depending on runtime control flow (raw machine word).
    Word,
}

impl STy {
    /// Least upper bound.
    pub fn join(self, other: STy) -> STy {
        if self == other {
            self
        } else {
            STy::Word
        }
    }

    fn of(ty: Ty) -> STy {
        match ty {
            Ty::I32 => STy::I32,
            Ty::F32 => STy::F32,
        }
    }
}

/// Checks `p`, returning every diagnostic found.
///
/// # Errors
/// Returns all located diagnostics (the program must not be lowered when
/// this fails).
pub fn check(p: &Program) -> Result<(), Vec<Diagnostic>> {
    let mut cx = Cx {
        diags: Vec::new(),
        arrays: HashMap::new(),
        scopes: vec![HashMap::new()],
        in_branch: false,
        sinks: HashSet::new(),
    };
    let mut names: HashSet<&str> = HashSet::new();
    for d in &p.params {
        if !names.insert(&d.name.name) {
            cx.err(d.name.span, format!("duplicate name `{}`", d.name.name));
        }
        match (d.ty, d.default.kind) {
            (Ty::I32, LitKind::Float(_)) | (Ty::F32, LitKind::Int(_)) => cx.err(
                d.default.span,
                format!(
                    "default of `{}: {}` must be an {} literal",
                    d.name.name,
                    d.ty.kw(),
                    d.ty.kw()
                ),
            ),
            _ => {}
        }
        cx.scopes[0].insert(d.name.name.clone(), STy::of(d.ty));
    }
    for a in &p.arrays {
        if !names.insert(&a.name.name) {
            cx.err(a.name.span, format!("duplicate name `{}`", a.name.name));
        }
        if a.len == 0 || a.len > 1 << 20 {
            cx.err(
                a.span,
                format!("array `{}` length must be in 1..=2^20", a.name.name),
            );
        }
        if a.init.len() as u64 > a.len {
            cx.err(
                a.span,
                format!(
                    "array `{}` initializer has {} values for length {}",
                    a.name.name,
                    a.init.len(),
                    a.len
                ),
            );
        }
        for l in &a.init {
            match (a.ty, l.kind) {
                (Ty::I32, LitKind::Float(_)) => cx.err(
                    l.span,
                    format!(
                        "i32 array `{}` initialized with a float literal",
                        a.name.name
                    ),
                ),
                (Ty::F32, LitKind::Int(_)) => cx.err(
                    l.span,
                    format!(
                        "f32 array `{}` initialized with an integer literal (write `1.0`)",
                        a.name.name
                    ),
                ),
                _ => {}
            }
        }
        cx.arrays
            .insert(a.name.name.clone(), (STy::of(a.ty), a.state));
    }
    cx.check_block(&p.body, YieldCtx::TopLevel);
    if cx.diags.is_empty() {
        Ok(())
    } else {
        Err(cx.diags)
    }
}

/// What a `yield` may do in the current block.
#[derive(Clone, Copy, PartialEq)]
enum YieldCtx {
    /// Top level: yields (and only here: sinks) — yields are forbidden.
    TopLevel,
    /// Loop body: the yield arity must equal the carry count.
    Loop(usize),
    /// `if` side: any arity; the caller compares the two sides.
    IfSide,
}

struct Cx {
    diags: Vec<Diagnostic>,
    /// Array name → (element type, is-state).
    arrays: HashMap<String, (STy, bool)>,
    scopes: Vec<HashMap<String, STy>>,
    in_branch: bool,
    sinks: HashSet<String>,
}

impl Cx {
    fn err(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::new(span, msg));
    }

    fn lookup(&self, name: &str) -> Option<STy> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn bind(&mut self, name: &Ident, ty: STy) {
        self.scopes
            .last_mut()
            .expect("scope stack")
            .insert(name.name.clone(), ty);
    }

    /// Requires an operand the integer operator family can take: anything
    /// but a certain `f32`.
    fn want_int(&mut self, ty: STy, span: Span, what: &str) {
        if ty == STy::F32 {
            self.err(
                span,
                format!(
                    "{what} requires an integer operand, but this value is f32; \
                     use the float operator (e.g. `+.`) or convert with `f2i(...)`"
                ),
            );
        }
    }

    fn want_float(&mut self, ty: STy, span: Span, what: &str) {
        if ty == STy::I32 {
            self.err(
                span,
                format!(
                    "{what} requires a float operand, but this value is i32; \
                     use the integer operator or convert with `i2f(...)`"
                ),
            );
        }
    }

    /// A single-valued expression (operands can never be block
    /// expressions — the parser guarantees it).
    fn scalar(&mut self, e: &Expr) -> STy {
        let tys = self.expr(e);
        debug_assert_eq!(tys.len(), 1, "operands are single-valued");
        tys[0]
    }

    fn expr(&mut self, e: &Expr) -> Vec<STy> {
        match &e.kind {
            ExprKind::Int(_) => vec![STy::I32],
            ExprKind::Float(_) => vec![STy::F32],
            ExprKind::Var(id) => {
                if let Some(ty) = self.lookup(&id.name) {
                    return vec![ty];
                }
                if self.arrays.contains_key(&id.name) {
                    self.err(
                        id.span,
                        format!(
                            "array `{}` used as a scalar value (index it: `{}[...]`)",
                            id.name, id.name
                        ),
                    );
                } else {
                    self.err(id.span, format!("unknown name `{}`", id.name));
                }
                vec![STy::Word]
            }
            ExprKind::Load { arr, idx } => {
                let ity = self.scalar(idx);
                self.want_int(ity, idx.span, "an array index");
                match self.arrays.get(&arr.name).copied() {
                    Some((ty, state)) => {
                        // State arrays hold raw words at runtime (stores do
                        // not convert), so only input loads have a certain
                        // type.
                        vec![if state { STy::Word } else { ty }]
                    }
                    None => {
                        let msg = if self.lookup(&arr.name).is_some() {
                            format!("`{}` is a scalar, not an array", arr.name)
                        } else {
                            format!("unknown array `{}`", arr.name)
                        };
                        self.err(arr.span, msg);
                        vec![STy::Word]
                    }
                }
            }
            ExprKind::Bin { op, a, b } => {
                let ta = self.scalar(a);
                let tb = self.scalar(b);
                let what = match bin_symbol(*op) {
                    Some(sym) => format!("the `{sym}` operator"),
                    None => format!("`{}`", crate::ast::bin_call_name(*op).unwrap_or("?")),
                };
                if is_float_bin(*op) {
                    self.want_float(ta, a.span, &what);
                    self.want_float(tb, b.span, &what);
                    vec![if op.is_cmp() { STy::I32 } else { STy::F32 }]
                } else {
                    self.want_int(ta, a.span, &what);
                    self.want_int(tb, b.span, &what);
                    vec![STy::I32]
                }
            }
            ExprKind::Un { op, a } => {
                let ta = self.scalar(a);
                match op {
                    UnOp::Neg => {
                        self.want_int(ta, a.span, "unary `-` (use `fneg(...)` for floats)");
                        vec![STy::I32]
                    }
                    UnOp::Not => {
                        self.want_int(ta, a.span, "the `~` operator");
                        vec![STy::I32]
                    }
                    UnOp::Abs => {
                        self.want_int(ta, a.span, "`abs` (use `fabs(...)` for floats)");
                        vec![STy::I32]
                    }
                    UnOp::LNot => vec![STy::I32], // predicate semantics: any word
                    UnOp::FNeg => {
                        self.want_float(ta, a.span, "`fneg`");
                        vec![STy::F32]
                    }
                    UnOp::FAbs => {
                        self.want_float(ta, a.span, "`fabs`");
                        vec![STy::F32]
                    }
                    UnOp::I2F => {
                        if ta == STy::F32 {
                            self.err(a.span, "`i2f` applied to a value that is already f32");
                        }
                        vec![STy::F32]
                    }
                    UnOp::F2I => {
                        if ta == STy::I32 {
                            self.err(a.span, "`f2i` applied to a value that is already i32");
                        }
                        vec![STy::I32]
                    }
                }
            }
            ExprKind::Nl { op, a } => {
                let ta = self.scalar(a);
                self.want_float(ta, a.span, &format!("`{}`", crate::ast::nl_call_name(*op)));
                vec![STy::F32]
            }
            ExprKind::Mux { p, t, f } => {
                let _ = self.scalar(p); // predicates accept any word
                let tt = self.scalar(t);
                let tf = self.scalar(f);
                vec![tt.join(tf)]
            }
            ExprKind::For {
                var,
                lo,
                hi,
                carries,
                body,
                ..
            } => {
                self.no_loop_in_branch(e.span, "a `for` loop");
                let tlo = self.scalar(lo);
                self.want_int(tlo, lo.span, "a loop bound");
                let thi = self.scalar(hi);
                self.want_int(thi, hi.span, "a loop bound");
                let inits = self.carry_inits(carries);
                self.loop_body(Some(var), carries, inits, body)
            }
            ExprKind::While {
                cond,
                carries,
                body,
            } => {
                self.no_loop_in_branch(e.span, "a `while` loop");
                if carries.is_empty() {
                    self.err(
                        e.span,
                        "`while` needs at least one carry: `while c > 0 with (c = start) { ... }`",
                    );
                }
                let inits = self.carry_inits(carries);
                // The condition sees the carries (and outer names), not
                // body-locals: it is evaluated on the initial values as the
                // zero-trip guard and on each iteration's yields.
                self.scopes.push(HashMap::new());
                for (c, ty) in carries.iter().zip(&inits) {
                    self.bind(&c.name, *ty);
                }
                self.pure_cond(cond);
                let _ = self.scalar(cond);
                self.scopes.pop();
                self.loop_body(None, carries, inits, body)
            }
            ExprKind::If {
                cond,
                then_b,
                else_b,
            } => {
                let _ = self.scalar(cond); // predicates accept any word
                let saved = self.in_branch;
                self.in_branch = true;
                let t_tys = self.side(then_b);
                let e_tys = self.side(else_b);
                self.in_branch = saved;
                if t_tys.len() != e_tys.len() {
                    self.err(
                        e.span,
                        format!(
                            "`if` sides yield different result counts ({} vs {})",
                            t_tys.len(),
                            e_tys.len()
                        ),
                    );
                    return vec![STy::Word; t_tys.len().max(e_tys.len())];
                }
                t_tys
                    .into_iter()
                    .zip(e_tys)
                    .map(|(a, b)| a.join(b))
                    .collect()
            }
        }
    }

    fn carry_inits(&mut self, carries: &[Carry]) -> Vec<STy> {
        let mut seen: HashSet<&str> = HashSet::new();
        for c in carries {
            if !seen.insert(&c.name.name) {
                self.err(c.name.span, format!("duplicate carry `{}`", c.name.name));
            }
        }
        carries.iter().map(|c| self.scalar(&c.init)).collect()
    }

    /// Walks a loop body to a type fixpoint: carries start at their init
    /// type and widen to `word` when a yield disagrees (a carried slot
    /// holds raw words, the machine-true semantics). Diagnostics are kept
    /// from the final pass only.
    fn loop_body(
        &mut self,
        index: Option<&Ident>,
        carries: &[Carry],
        inits: Vec<STy>,
        body: &[Stmt],
    ) -> Vec<STy> {
        let mut tys = inits;
        loop {
            let mark = self.diags.len();
            let sinks_mark = self.sinks.clone();
            self.scopes.push(HashMap::new());
            if let Some(iv) = index {
                self.bind(iv, STy::I32);
            }
            for (c, ty) in carries.iter().zip(&tys) {
                self.bind(&c.name, *ty);
            }
            let yields = self.check_block(body, YieldCtx::Loop(carries.len()));
            self.scopes.pop();
            let mut widened = false;
            for (k, t) in tys.iter_mut().enumerate() {
                let y = yields.get(k).copied().unwrap_or(*t);
                let j = t.join(y);
                if j != *t {
                    *t = j;
                    widened = true;
                }
            }
            if !widened {
                return tys;
            }
            // Re-walk with widened carries: drop this pass's diagnostics
            // and side effects (a sink seen twice is not a duplicate).
            self.diags.truncate(mark);
            self.sinks = sinks_mark;
        }
    }

    fn side(&mut self, body: &[Stmt]) -> Vec<STy> {
        self.scopes.push(HashMap::new());
        let tys = self.check_block(body, YieldCtx::IfSide);
        self.scopes.pop();
        tys
    }

    fn no_loop_in_branch(&mut self, span: Span, what: &str) {
        if self.in_branch {
            self.err(
                span,
                format!(
                    "{what} is not allowed inside an `if` side: only loop-free hammocks \
                     are predicable (restructure so the loop surrounds the branch)"
                ),
            );
        }
    }

    /// `while` conditions may not touch memory: they are evaluated twice
    /// (zero-trip guard and per-iteration test), so a load would double
    /// the memory traffic and break token serialization.
    fn pure_cond(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Load { .. } => self.err(
                e.span,
                "`while` conditions may not load from arrays (load into a carry instead)",
            ),
            ExprKind::Bin { a, b, .. } => {
                self.pure_cond(a);
                self.pure_cond(b);
            }
            ExprKind::Un { a, .. } | ExprKind::Nl { a, .. } => self.pure_cond(a),
            ExprKind::Mux { p, t, f } => {
                self.pure_cond(p);
                self.pure_cond(t);
                self.pure_cond(f);
            }
            _ => {}
        }
    }

    /// Checks the statements of one block; returns the yield types (empty
    /// when the block has no yield).
    fn check_block(&mut self, stmts: &[Stmt], ctx: YieldCtx) -> Vec<STy> {
        let mut yields = Vec::new();
        for (i, s) in stmts.iter().enumerate() {
            match &s.kind {
                StmtKind::Let { names, value } => {
                    let tys = self.expr(value);
                    if tys.len() != names.len() {
                        self.err(
                            s.span,
                            format!(
                                "`let` binds {} name{} but the right-hand side produces {} value{}",
                                names.len(),
                                if names.len() == 1 { "" } else { "s" },
                                tys.len(),
                                if tys.len() == 1 { "" } else { "s" },
                            ),
                        );
                    }
                    for (k, n) in names.iter().enumerate() {
                        self.bind(n, tys.get(k).copied().unwrap_or(STy::Word));
                    }
                }
                StmtKind::Store { arr, idx, value } => {
                    let ity = self.scalar(idx);
                    self.want_int(ity, idx.span, "a store index");
                    let _ = self.scalar(value); // raw word store
                    match self.arrays.get(&arr.name).copied() {
                        Some((_, true)) => {}
                        Some((_, false)) => self.err(
                            arr.span,
                            format!(
                                "cannot store to read-only input array `{}` (declare it `state`)",
                                arr.name
                            ),
                        ),
                        None => self.err(arr.span, format!("unknown array `{}`", arr.name)),
                    }
                }
                StmtKind::Sink { name, value } => {
                    if ctx != YieldCtx::TopLevel {
                        self.err(
                            s.span,
                            "`sink` is only allowed at the top level of the program",
                        );
                    }
                    if !self.sinks.insert(name.name.clone()) {
                        self.err(name.span, format!("duplicate sink label `{}`", name.name));
                    }
                    let _ = self.scalar(value);
                }
                StmtKind::Expr(e) => {
                    let _ = self.expr(e);
                }
                StmtKind::Yield(vals) => {
                    match ctx {
                        YieldCtx::TopLevel => {
                            self.err(s.span, "`yield` outside a loop or `if` body");
                        }
                        YieldCtx::Loop(n) => {
                            if vals.len() != n {
                                self.err(
                                    s.span,
                                    format!(
                                        "this loop carries {n} variable{} but `yield` gives {}",
                                        if n == 1 { "" } else { "s" },
                                        vals.len()
                                    ),
                                );
                            }
                        }
                        YieldCtx::IfSide => {}
                    }
                    if i + 1 != stmts.len() {
                        self.err(s.span, "`yield` must be the last statement of its block");
                    }
                    yields = vals.iter().map(|v| self.scalar(v)).collect();
                }
            }
        }
        if yields.is_empty() {
            if let YieldCtx::Loop(n) = ctx {
                if n > 0 {
                    // A loop with carries but no yield: report at no
                    // particular statement; use the last stmt span if any.
                    let span = stmts.last().map_or(Span::default(), |s| s.span);
                    self.err(
                        span,
                        format!(
                            "loop body must end with `yield` giving the next value of \
                             {n} carried variable{}",
                            if n == 1 { "" } else { "s" }
                        ),
                    );
                    return vec![STy::Word; n];
                }
            }
        }
        yields
    }
}

fn is_float_bin(op: BinOp) -> bool {
    use BinOp::*;
    matches!(
        op,
        FAdd | FSub | FMul | FDiv | FMin | FMax | FLt | FLe | FGt | FGe
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn errs(src: &str) -> Vec<String> {
        let p = parse(src).unwrap();
        match check(&p) {
            Ok(()) => Vec::new(),
            Err(ds) => ds.into_iter().map(|d| d.message).collect(),
        }
    }

    #[test]
    fn accepts_the_good_program() {
        let src = "
program t;
param n: i32 = 4;
input a: i32[8] = [1, 2, 3];
state s: i32[8];
let x = a[0] & 255;
let w = s[0];
let y = x +. 1.0;          // hmm: x is i32 -> this must error
";
        let es = errs(src);
        assert_eq!(es.len(), 1, "{es:?}");
        assert!(es[0].contains("float operand"), "{es:?}");
    }

    #[test]
    fn word_values_flow_everywhere() {
        // A state load is a raw word: both operator families accept it.
        let es = errs(
            "program t; state s: i32[4]; let w = s[0]; let a = w + 1; let b = w +. 1.0; \
             let m = mux(w, a, b); sink r = m;",
        );
        assert!(es.is_empty(), "{es:?}");
    }

    #[test]
    fn unknown_names_and_arrays() {
        let es = errs("program t; state s: i32[4]; let x = yq + 1; let z = q[0]; s[x] = s;");
        assert!(es.iter().any(|m| m.contains("unknown name `yq`")), "{es:?}");
        assert!(es.iter().any(|m| m.contains("unknown array `q`")), "{es:?}");
        assert!(es.iter().any(|m| m.contains("used as a scalar")), "{es:?}");
    }

    #[test]
    fn store_to_input_rejected() {
        let es = errs("program t; input a: i32[4]; state s: i32[4]; a[0] = 1;");
        assert!(
            es.iter().any(|m| m.contains("read-only input array")),
            "{es:?}"
        );
    }

    #[test]
    fn yield_shape_checks() {
        let es = errs(
            "program t; state s: i32[4]; \
             let x = for i in 0..4 with a = 0 { yield (a, a); }; \
             let y = for i in 0..4 with b = 0 { yield b; let q = 1; };",
        );
        assert!(
            es.iter()
                .any(|m| m.contains("carries 1 variable but `yield` gives 2")),
            "{es:?}"
        );
        assert!(es.iter().any(|m| m.contains("last statement")), "{es:?}");
    }

    #[test]
    fn loop_in_branch_rejected() {
        let es = errs(
            "program t; state s: i32[4]; \
             let x = if 1 { let z = for i in 0..2 with a = 0 { yield a; }; yield z; } \
             else { yield 0; };",
        );
        assert!(
            es.iter()
                .any(|m| m.contains("not allowed inside an `if` side")),
            "{es:?}"
        );
    }

    #[test]
    fn carry_type_widens_instead_of_erroring() {
        // The carry starts i32 and a yield makes it f32: it widens to a
        // word, and both uses stay legal.
        let es = errs(
            "program t; state s: i32[4]; \
             let x = for i in 0..4 with a = 0 { let f = i2f(i) +. 1.0; yield mux(i, f, a); }; \
             sink r = x;",
        );
        assert!(es.is_empty(), "{es:?}");
    }

    #[test]
    fn while_checks() {
        let es = errs(
            "program t; state s: i32[4]; \
             let x = while s[0] > 0 with c = 4 { yield c - 1; }; \
             let y = while 1 { yield 0; };",
        );
        assert!(es.iter().any(|m| m.contains("may not load")), "{es:?}");
        assert!(
            es.iter().any(|m| m.contains("at least one carry")),
            "{es:?}"
        );
    }

    #[test]
    fn sink_rules() {
        let es = errs(
            "program t; state s: i32[4]; sink r = 1; sink r = 2; \
             for i in 0..2 { sink q = i; };",
        );
        assert!(
            es.iter().any(|m| m.contains("duplicate sink label")),
            "{es:?}"
        );
        assert!(
            es.iter()
                .any(|m| m.contains("only allowed at the top level")),
            "{es:?}"
        );
    }

    #[test]
    fn fixpoint_rewalk_does_not_duplicate_sink_diagnostics() {
        // The carry widens (i32 -> word), so the body is walked twice;
        // the misplaced sink must be reported exactly once, with no
        // spurious "duplicate sink label".
        let es = errs(
            "program t; state s: i32[4]; \
             for i in 0..4 with a = 0 { sink q = i; let f = i2f(i) +. 1.0; \
             yield mux(i, f, a); };",
        );
        assert_eq!(es.len(), 1, "{es:?}");
        assert!(es[0].contains("only allowed at the top level"), "{es:?}");
    }

    #[test]
    fn conversion_noops_flagged() {
        let es = errs("program t; state s: i32[4]; let a = i2f(1.0); let b = f2i(1);");
        assert_eq!(es.len(), 2, "{es:?}");
    }
}
