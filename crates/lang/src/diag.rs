//! Source spans and located diagnostics.
//!
//! Every lexer token and AST node carries a byte-offset [`Span`] into the
//! original source text; parse and semantic errors are reported as
//! [`Diagnostic`]s that [`Diagnostic::render`] turns into a `file:line:col`
//! message with the offending source line and a caret underline.

use std::fmt;

/// A half-open byte range `[lo, hi)` into the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Builds a span from byte offsets.
    pub fn new(lo: usize, hi: usize) -> Self {
        Span {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// One located error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
        }
    }

    /// 1-based `(line, column)` of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let lo = (self.span.lo as usize).min(src.len());
        let before = &src[..lo];
        let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = before.rfind('\n').map_or(lo, |p| lo - p - 1) + 1;
        (line, col)
    }

    /// Renders the diagnostic with the source line and a caret underline.
    pub fn render(&self, file: &str, src: &str) -> String {
        let (line, col) = self.line_col(src);
        let text = src.lines().nth(line - 1).unwrap_or("");
        let width = ((self.span.hi - self.span.lo) as usize).max(1);
        let width = width.min(text.len().saturating_sub(col - 1).max(1));
        format!(
            "{file}:{line}:{col}: error: {}\n  | {text}\n  | {}{}",
            self.message,
            " ".repeat(col - 1),
            "^".repeat(width)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_and_render() {
        let src = "program t;\nlet x = y;\n";
        let pos = src.find('y').unwrap();
        let d = Diagnostic::new(Span::new(pos, pos + 1), "unknown name `y`");
        assert_eq!(d.line_col(src), (2, 9));
        let r = d.render("t.mar", src);
        assert!(r.contains("t.mar:2:9"), "{r}");
        assert!(r.contains("let x = y;"), "{r}");
        assert!(r.lines().nth(2).unwrap().trim_end().ends_with('^'), "{r}");
    }
}
