//! # marionette-lang
//!
//! The `.mar` source language: Marionette's front door for workloads that
//! are not hand-coded against the CDFG builder API.
//!
//! A `.mar` program declares scalar `param`s and typed arrays (`input`
//! read-only, `state` read-write/token-serialized/output), then computes
//! with `let` bindings over machine operators, structured `for` / `while`
//! loops with explicit loop-carried variables, `if`/`else` hammocks that
//! merge their `yield`s, `mux`, dependency-ordered loads and stores, and
//! `sink` result streams. See `docs/LANGUAGE.md` for the grammar and a
//! worked example.
//!
//! Pipeline stages, each usable on its own:
//!
//! - [`parser::parse`] — hand-written lexer + recursive descent into a
//!   spanned AST ([`ast`]);
//! - [`sema::check`] — semantic checks with source-located diagnostics
//!   ([`diag::Diagnostic`]): unknown names, certain type mismatches,
//!   arity and shape errors;
//! - [`lower::lower`] — lowering onto `marionette_cdfg::builder` with
//!   per-`state`-array ordering tokens, so accepted programs are
//!   well-formed by construction;
//! - [`print::print`] — canonical pretty-printer; parse→print→parse is a
//!   fixed point (property-tested over the fuzz corpus);
//! - [`driver`] — compile → bitstream round-trip → simulate on any
//!   architecture preset, checked bit-for-bit against the reference
//!   interpreter. This backs the `marc` CLI.
//!
//! `marionette-fuzzgen` uses this crate as a second differential axis:
//! every fuzz program is also emitted as `.mar` source, re-lowered
//! through this front end, and must produce bit-identical results to the
//! direct builder path.

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod driver;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod print;
pub mod sema;
pub mod tenancy;

pub use diag::{Diagnostic, Span};
pub use driver::{frontend, reference, run_preset, DriverError, PresetRun, Reference};
pub use lower::lower;
pub use parser::parse;
pub use print::print;
pub use sema::check;
pub use tenancy::{run_tenancy, TenancyReport, TenantJob, TenantOutcome, TenantRun};

use marionette_cdfg::Cdfg;

/// Parses, checks and lowers `.mar` source text in one call.
///
/// # Errors
/// Returns the parse diagnostic or all semantic diagnostics.
pub fn compile_source(src: &str) -> Result<Cdfg, Vec<Diagnostic>> {
    let p = parse(src).map_err(|d| vec![d])?;
    check(&p)?;
    Ok(lower(&p))
}
