//! Lowering of a checked `.mar` program onto the structured CDFG builder.
//!
//! The lowering mirrors the discipline of `marionette-fuzzgen`'s emitter,
//! so every accepted program is well-formed by construction:
//!
//! - one *ordering token* per `state` array is threaded through the whole
//!   program: loads of a state array are ordered behind the token (the
//!   loaded value becomes the new witness), stores consume it and produce
//!   the next one, every loop implicitly carries all state tokens as
//!   extra loop variables, and `if` merges them like any other value;
//! - `input` arrays are read-only and load without dependence tokens;
//! - `while` conditions are lowered twice through the builder's guard /
//!   continuation closures — once over the carry initial values (the
//!   zero-trip guard, in the enclosing region) and once per iteration
//!   over the yielded values — which is why they must be pure;
//! - lexical scoping guarantees no value is referenced outside its
//!   region, so the builder's import machinery (loop-invariant `Inv`
//!   replay, branch steers) is exercised only in its supported direction.
//!
//! [`lower`] must only be called on a program accepted by
//! [`crate::sema::check`]; it panics on unchecked input.

use crate::ast::{Carry, Expr, ExprKind, Program, Stmt, StmtKind, Ty};
use marionette_cdfg::builder::{CdfgBuilder, V};
use marionette_cdfg::value::{ElemTy, Value};
use marionette_cdfg::Cdfg;
use std::collections::HashMap;

struct ArrInfo {
    id: marionette_cdfg::op::ArrayId,
    /// Index into the token vector for `state` arrays.
    token_slot: Option<usize>,
}

/// Immutable lowering context (array table).
struct Cx {
    arrays: HashMap<String, ArrInfo>,
}

type Scope = Vec<HashMap<String, V>>;

fn bind(scopes: &mut Scope, name: &str, v: V) {
    scopes
        .last_mut()
        .expect("scope stack")
        .insert(name.to_string(), v);
}

fn lookup(scopes: &Scope, name: &str) -> V {
    scopes
        .iter()
        .rev()
        .find_map(|s| s.get(name))
        .copied()
        .unwrap_or_else(|| panic!("lower: unknown name `{name}` (run sema::check first)"))
}

/// Lowers a checked program to a validated CDFG.
///
/// # Panics
/// Panics if the program violates invariants enforced by
/// [`crate::sema::check`] — always check before lowering.
pub fn lower(p: &Program) -> Cdfg {
    let mut b = CdfgBuilder::new(p.name.name.clone());
    let mut scopes: Scope = vec![HashMap::new()];
    for d in &p.params {
        let v = b.param(&d.name.name, lit_value(&d.default, d.ty));
        bind(&mut scopes, &d.name.name, v);
    }
    let mut arrays = HashMap::new();
    let mut nstate = 0usize;
    for a in &p.arrays {
        let elem = match a.ty {
            Ty::I32 => ElemTy::I32,
            Ty::F32 => ElemTy::F32,
        };
        let init: Vec<Value> = a.init.iter().map(|l| lit_value(l, a.ty)).collect();
        let id = b.array(&a.name.name, a.len as usize, elem, init);
        let token_slot = if a.state {
            b.mark_output(id);
            nstate += 1;
            Some(nstate - 1)
        } else {
            None
        };
        arrays.insert(a.name.name.clone(), ArrInfo { id, token_slot });
    }
    let cx = Cx { arrays };
    let mut tokens: Vec<V> = (0..nstate).map(|_| b.start_token()).collect();
    let _ = lower_block(&mut b, &cx, &mut scopes, &mut tokens, &p.body);
    b.finish()
}

/// Declaration literals are already type-matched by sema.
fn lit_value(l: &crate::ast::Lit, _ty: Ty) -> Value {
    match l.kind {
        crate::ast::LitKind::Int(v) => Value::I32(v),
        crate::ast::LitKind::Float(v) => Value::F32(v),
    }
}

/// Number of values the trailing `yield` of a block produces.
fn yield_arity(stmts: &[Stmt]) -> usize {
    match stmts.last() {
        Some(Stmt {
            kind: StmtKind::Yield(vals),
            ..
        }) => vals.len(),
        _ => 0,
    }
}

/// Lowers one block; returns its yield values (empty without a yield).
/// `tokens` is updated in place to the block's final state tokens.
fn lower_block(
    b: &mut CdfgBuilder,
    cx: &Cx,
    scopes: &mut Scope,
    tokens: &mut Vec<V>,
    stmts: &[Stmt],
) -> Vec<V> {
    for s in stmts {
        match &s.kind {
            StmtKind::Let { names, value } => {
                let vals = lower_expr(b, cx, scopes, tokens, value);
                assert_eq!(vals.len(), names.len(), "checked let arity");
                for (n, v) in names.iter().zip(vals) {
                    bind(scopes, &n.name, v);
                }
            }
            StmtKind::Store { arr, idx, value } => {
                let iv = scalar(b, cx, scopes, tokens, idx);
                let vv = scalar(b, cx, scopes, tokens, value);
                let info = &cx.arrays[&arr.name];
                let slot = info.token_slot.expect("checked: store targets state");
                let t = b.store_dep(info.id, iv, vv, tokens[slot]);
                tokens[slot] = t;
            }
            StmtKind::Sink { name, value } => {
                let v = scalar(b, cx, scopes, tokens, value);
                b.sink(&name.name, v);
            }
            StmtKind::Expr(e) => {
                let _ = lower_expr(b, cx, scopes, tokens, e);
            }
            StmtKind::Yield(vals) => {
                return vals
                    .iter()
                    .map(|v| scalar(b, cx, scopes, tokens, v))
                    .collect();
            }
        }
    }
    Vec::new()
}

fn scalar(b: &mut CdfgBuilder, cx: &Cx, scopes: &mut Scope, tokens: &mut Vec<V>, e: &Expr) -> V {
    let vals = lower_expr(b, cx, scopes, tokens, e);
    assert_eq!(vals.len(), 1, "checked scalar context");
    vals[0]
}

fn lower_expr(
    b: &mut CdfgBuilder,
    cx: &Cx,
    scopes: &mut Scope,
    tokens: &mut Vec<V>,
    e: &Expr,
) -> Vec<V> {
    match &e.kind {
        ExprKind::Int(v) => vec![b.imm(Value::I32(*v))],
        ExprKind::Float(v) => vec![b.imm(Value::F32(*v))],
        ExprKind::Var(id) => vec![lookup(scopes, &id.name)],
        ExprKind::Load { arr, idx } => {
            let iv = scalar(b, cx, scopes, tokens, idx);
            let info = &cx.arrays[&arr.name];
            let v = match info.token_slot {
                Some(slot) => {
                    let v = b.load_dep(info.id, iv, tokens[slot]);
                    tokens[slot] = v; // the read is the new ordering witness
                    v
                }
                None => b.load(info.id, iv),
            };
            vec![v]
        }
        ExprKind::Bin { op, a, b: rhs } => {
            let x = scalar(b, cx, scopes, tokens, a);
            let y = scalar(b, cx, scopes, tokens, rhs);
            vec![b.bin(*op, x, y)]
        }
        ExprKind::Un { op, a } => {
            let x = scalar(b, cx, scopes, tokens, a);
            vec![b.un(*op, x)]
        }
        ExprKind::Nl { op, a } => {
            let x = scalar(b, cx, scopes, tokens, a);
            vec![b.nl(*op, x)]
        }
        ExprKind::Mux { p, t, f } => {
            let pv = scalar(b, cx, scopes, tokens, p);
            let tv = scalar(b, cx, scopes, tokens, t);
            let fv = scalar(b, cx, scopes, tokens, f);
            vec![b.mux(pv, tv, fv)]
        }
        ExprKind::For {
            var,
            lo,
            hi,
            step,
            carries,
            body,
        } => {
            let lo_v = scalar(b, cx, scopes, tokens, lo);
            let hi_v = scalar(b, cx, scopes, tokens, hi);
            let mut inits: Vec<V> = carries
                .iter()
                .map(|c| scalar(b, cx, scopes, tokens, &c.init))
                .collect();
            let ndata = inits.len();
            inits.extend(tokens.iter().copied());
            let outs = b.for_range_step(lo_v, hi_v, *step, &inits, |b, i, vars| {
                scopes.push(HashMap::new());
                bind(scopes, &var.name, i);
                for (c, v) in carries.iter().zip(&vars[..ndata]) {
                    bind(scopes, &c.name.name, *v);
                }
                let mut tokens2: Vec<V> = vars[ndata..].to_vec();
                let mut next = lower_block(b, cx, scopes, &mut tokens2, body);
                scopes.pop();
                assert_eq!(next.len(), ndata, "checked yield arity");
                next.extend(tokens2);
                next
            });
            tokens.copy_from_slice(&outs[ndata..]);
            outs[..ndata].to_vec()
        }
        ExprKind::While {
            cond,
            carries,
            body,
        } => {
            let mut inits: Vec<V> = carries
                .iter()
                .map(|c| scalar(b, cx, scopes, tokens, &c.init))
                .collect();
            let ndata = inits.len();
            inits.extend(tokens.iter().copied());
            // The condition closure runs twice (guard + per-iteration), so
            // its free names are resolved up front: carries positionally,
            // everything else to the value visible here.
            let condmap = cond_bindings(cond, carries, scopes);
            let outs = b.loop_while(
                &inits,
                |b, vals| lower_cond(b, &condmap, &vals[..ndata], cond),
                |b, vals| {
                    scopes.push(HashMap::new());
                    for (c, v) in carries.iter().zip(&vals[..ndata]) {
                        bind(scopes, &c.name.name, *v);
                    }
                    let mut tokens2: Vec<V> = vals[ndata..].to_vec();
                    let mut next = lower_block(b, cx, scopes, &mut tokens2, body);
                    scopes.pop();
                    assert_eq!(next.len(), ndata, "checked yield arity");
                    next.extend(tokens2);
                    next
                },
            );
            tokens.copy_from_slice(&outs[ndata..]);
            outs[..ndata].to_vec()
        }
        ExprKind::If {
            cond,
            then_b,
            else_b,
        } => {
            let pred = scalar(b, cx, scopes, tokens, cond);
            let nres = yield_arity(then_b);
            let scopes_t = scopes.clone();
            let scopes_e = scopes.clone();
            let tok_t = tokens.clone();
            let tok_e = tokens.clone();
            let side =
                |b: &mut CdfgBuilder, mut s: Scope, mut t: Vec<V>, body: &[Stmt]| -> Vec<V> {
                    s.push(HashMap::new());
                    let mut vals = lower_block(b, cx, &mut s, &mut t, body);
                    vals.extend(t);
                    vals
                };
            let outs = b.if_else(
                pred,
                |b| side(b, scopes_t, tok_t, then_b),
                |b| side(b, scopes_e, tok_e, else_b),
            );
            tokens.copy_from_slice(&outs[nres..]);
            outs[..nres].to_vec()
        }
    }
}

/// How a name inside a `while` condition resolves.
#[derive(Clone, Copy)]
enum CondBind {
    /// The k-th carried variable (positional into the loop values).
    Slot(usize),
    /// A value from the enclosing scope.
    Val(V),
}

fn cond_bindings(cond: &Expr, carries: &[Carry], scopes: &Scope) -> HashMap<String, CondBind> {
    let mut map = HashMap::new();
    collect_vars(cond, &mut |name| {
        if map.contains_key(name) {
            return;
        }
        let bind = carries
            .iter()
            .position(|c| c.name.name == name)
            .map(CondBind::Slot)
            .unwrap_or_else(|| CondBind::Val(lookup(scopes, name)));
        map.insert(name.to_string(), bind);
    });
    map
}

fn collect_vars(e: &Expr, f: &mut impl FnMut(&str)) {
    match &e.kind {
        ExprKind::Var(id) => f(&id.name),
        ExprKind::Bin { a, b, .. } => {
            collect_vars(a, f);
            collect_vars(b, f);
        }
        ExprKind::Un { a, .. } | ExprKind::Nl { a, .. } => collect_vars(a, f),
        ExprKind::Mux { p, t, f: fe } => {
            collect_vars(p, f);
            collect_vars(t, f);
            collect_vars(fe, f);
        }
        ExprKind::Int(_) | ExprKind::Float(_) => {}
        _ => unreachable!("checked: while conditions are pure scalars"),
    }
}

fn lower_cond(b: &mut CdfgBuilder, map: &HashMap<String, CondBind>, vals: &[V], e: &Expr) -> V {
    match &e.kind {
        ExprKind::Int(v) => b.imm(Value::I32(*v)),
        ExprKind::Float(v) => b.imm(Value::F32(*v)),
        ExprKind::Var(id) => match map[&id.name] {
            CondBind::Slot(k) => vals[k],
            CondBind::Val(v) => v,
        },
        ExprKind::Bin { op, a, b: rhs } => {
            let x = lower_cond(b, map, vals, a);
            let y = lower_cond(b, map, vals, rhs);
            b.bin(*op, x, y)
        }
        ExprKind::Un { op, a } => {
            let x = lower_cond(b, map, vals, a);
            b.un(*op, x)
        }
        ExprKind::Nl { op, a } => {
            let x = lower_cond(b, map, vals, a);
            b.nl(*op, x)
        }
        ExprKind::Mux { p, t, f } => {
            let pv = lower_cond(b, map, vals, p);
            let tv = lower_cond(b, map, vals, t);
            let fv = lower_cond(b, map, vals, f);
            b.mux(pv, tv, fv)
        }
        _ => unreachable!("checked: while conditions are pure scalars"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;
    use marionette_cdfg::interp::{interpret, ExecMode};

    fn build(src: &str) -> Cdfg {
        let p = parse(src).unwrap();
        check(&p).unwrap_or_else(|ds| panic!("{ds:?}"));
        lower(&p)
    }

    #[test]
    fn straight_line_program() {
        let g = build("program t; state s: i32[4]; s[0] = 41 + 1; sink done = 7;");
        assert!(g.validate().is_empty());
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        let sid = g.array_by_name("s").unwrap();
        assert_eq!(r.memory.array(sid)[0], Value::I32(42));
    }

    #[test]
    fn counted_loop_with_carry_and_param() {
        let g = build(
            "program t; param n: i32 = 10; state s: i32[4]; \
             let sum = for i in 0..n with acc = 0 { yield acc + i; }; \
             sink sum = sum;",
        );
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        assert_eq!(r.scalar("sum").unwrap(), Value::I32(45));
        let r2 = interpret(&g, ExecMode::Dropping, &[("n", Value::I32(4))]).unwrap();
        assert_eq!(r2.scalar("sum").unwrap(), Value::I32(6));
    }

    #[test]
    fn while_loop_and_hammock() {
        // Collatz-ish bounded walk with a branch hammock inside a loop.
        let g = build(
            "program t; state s: i32[4]; \
             let (c, steps) = while c > 0 with (c = 12, steps = 0) { \
               let (n,) = if c & 1 { yield c * 3 + 1; } else { yield c >> 1; }; \
               let capped = mux(n < 20, n, 0); \
               yield (capped - 1, steps + 1); \
             }; \
             sink c = c; sink steps = steps;",
        );
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        let p = interpret(&g, ExecMode::Predicated, &[]).unwrap();
        assert_eq!(r.scalar("steps").unwrap(), p.scalar("steps").unwrap());
        assert_eq!(r.scalar("c").unwrap(), p.scalar("c").unwrap());
    }

    #[test]
    fn state_tokens_serialize_memory() {
        // Read-modify-write through a loop: tokens order the accesses, so
        // the interpreted result is exact.
        let g = build(
            "program t; state h: i32[8]; input k: i32[8] = [1, 1, 2, 3, 1, 2, 3, 3]; \
             for i in 0..8 { let b = k[i]; h[b] = h[b] + 1; };",
        );
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        let hid = g.array_by_name("h").unwrap();
        let h: Vec<i32> = r
            .memory
            .array(hid)
            .iter()
            .map(|v| v.as_i32().unwrap())
            .collect();
        assert_eq!(h, vec![0, 3, 2, 3, 0, 0, 0, 0]);
        assert_eq!(r.memory.oob_events(), 0);
    }

    #[test]
    fn zero_trip_loops_bypass() {
        let g = build(
            "program t; state s: i32[4]; \
             let x = for i in 4..4 with a = 7 { yield a + 1; }; \
             let y = while c > 0 with c = 0 { yield c - 1; }; \
             sink x = x; sink y = y;",
        );
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        assert_eq!(r.scalar("x").unwrap(), Value::I32(7));
        assert_eq!(r.scalar("y").unwrap(), Value::I32(0));
    }

    #[test]
    fn float_pipeline() {
        let g = build(
            "program t; state s: f32[4]; input w: f32[4] = [0.5, 1.5, -2.0, 4.0]; \
             let acc = for i in 0..4 with a = 0.0 { yield a +. w[i] *. 2.0; }; \
             s[0] = acc; sink done = 1;",
        );
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        let sid = g.array_by_name("s").unwrap();
        assert_eq!(r.memory.array(sid)[0], Value::F32(8.0));
    }
}
