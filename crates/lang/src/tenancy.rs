//! Multi-kernel tenancy orchestration: N source programs, one fabric.
//!
//! [`run_tenancy`] is the full-stack driver for spatial sharding: each
//! tenant's CDFG is compiled on its **partition's own dimensions** (so
//! its mapping and control timing are bit-identical to a solo run on an
//! equal-sized fabric), the per-partition bitstreams are merged into a
//! validated [`marionette::isa::MultiTenantImage`] (typed rejection of
//! overlap, escape and cross-partition routes), the merged image is
//! simulated tenant-per-partition with isolated wedge detection, and
//! every *completed* tenant is bit-verified against its own reference
//! interpretation — arrays, sinks, out-of-bounds events and firing
//! counts, exactly like a solo [`crate::driver::run_preset`].
//!
//! See `docs/PARTITIONING.md` for the semantics and the isolation
//! argument, and `marionette::sim::tenancy` for why per-partition
//! simulation is exact rather than approximate.

use crate::driver::{
    array_inputs, compile_preset, summarize, verify_vs_reference, Compiled, DriverError, PresetRun,
    Reference,
};
use marionette::compiler::Partition;
use marionette::isa::{MultiTenantImage, TenantImage};
use marionette::sim::tenancy::{run_tenants, TenancyError, TenantWorkload};
use marionette::sim::{EngineKind, SimError};
use marionette_arch::Architecture;
use marionette_cdfg::{Cdfg, Value};

/// One tenant of a partitioned fabric: a program, its reference
/// semantics, a preset instantiated on the **partition's** dims, and
/// the partition it owns.
pub struct TenantJob<'a> {
    /// Tenant label (kernel tag, program name, …).
    pub name: String,
    /// The tenant's CDFG.
    pub g: &'a Cdfg,
    /// The tenant's reference interpretation (both steering modes).
    pub reference: &'a Reference,
    /// Preset instance normalized to the partition's dimensions — use
    /// [`marionette_arch::preset_for_partition`].
    pub arch: &'a Architecture,
    /// The rectangle of the host fabric this tenant owns.
    pub partition: Partition,
    /// Scalar parameter overrides.
    pub overrides: Vec<(String, Value)>,
    /// Per-tenant cycle budget (wedge detection is per partition).
    pub max_cycles: u64,
}

/// How one tenant's run ended.
#[derive(Clone, Debug)]
pub enum TenantOutcome {
    /// The tenant ran to quiescence and bit-matched its reference.
    Completed(PresetRun),
    /// The tenant wedged (deadlock / cycle budget) — its own typed
    /// error, reported without poisoning neighbouring tenants.
    Wedged(SimError),
}

impl TenantOutcome {
    /// The completed run, when there is one.
    pub fn run(&self) -> Option<&PresetRun> {
        match self {
            TenantOutcome::Completed(r) => Some(r),
            TenantOutcome::Wedged(_) => None,
        }
    }
}

/// One tenant's slice of a [`TenancyReport`].
#[derive(Clone, Debug)]
pub struct TenantRun {
    /// Tenant label.
    pub name: String,
    /// The partition, in `RxC@r,c` syntax.
    pub partition: String,
    /// How the run ended.
    pub outcome: TenantOutcome,
}

/// The verified result of co-running N tenants on one fabric.
#[derive(Clone, Debug)]
pub struct TenancyReport {
    /// Host-fabric rows.
    pub rows: u8,
    /// Host-fabric columns.
    pub cols: u8,
    /// Per-tenant results, in job order.
    pub tenants: Vec<TenantRun>,
    /// Fabric makespan: the latest cycle any partition is occupied.
    pub makespan_cycles: u64,
    /// Node firings summed over completed tenants.
    pub total_fires: u64,
}

impl TenancyReport {
    /// True when every tenant completed and verified.
    pub fn all_completed(&self) -> bool {
        self.tenants
            .iter()
            .all(|t| matches!(t.outcome, TenantOutcome::Completed(_)))
    }
}

/// Compiles, merges, simulates and verifies N tenants on one
/// `rows`×`cols` host fabric.
///
/// Each tenant compiles on its partition's own dims ([`compile_preset`]
/// with the job's partition-normalized preset), so its bitstream —
/// and therefore its simulated cycle count — is bit-identical to a solo
/// run on an equal-sized fabric. The merge step re-validates the
/// layout and every bitstream's containment; the simulation step runs
/// each partition as an isolated machine factor.
///
/// # Errors
/// Returns [`DriverError::Partition`] for an invalid layout,
/// [`DriverError::Image`] for an un-mergeable bitstream set, a
/// [`DriverError::Compile`]/[`DriverError::Bitstream`] from a tenant's
/// compile, or [`DriverError::Mismatch`] when a *completed* tenant
/// diverges from its reference. A tenant that merely wedges is not an
/// error: it comes back as [`TenantOutcome::Wedged`].
pub fn run_tenancy(
    rows: u8,
    cols: u8,
    jobs: &[TenantJob<'_>],
    engine: EngineKind,
) -> Result<TenancyReport, DriverError> {
    use marionette::compiler::{FabricDims, PartitionMap};
    // Validate the layout first: typed overlap/out-of-fabric rejection.
    let parts: Vec<Partition> = jobs.iter().map(|j| j.partition).collect();
    let _map = PartitionMap::new(FabricDims::new(usize::from(rows), usize::from(cols)), parts)
        .map_err(DriverError::Partition)?;

    // Compile every tenant at its partition's dims (solo-equivalent).
    let mut compiled: Vec<Compiled> = Vec::with_capacity(jobs.len());
    let mut slots: Vec<TenantImage> = Vec::with_capacity(jobs.len());
    for j in jobs {
        let dims = j.partition.dims();
        assert_eq!(
            j.arch.fabric(),
            dims,
            "tenant {}: preset must be instantiated on its partition's dims",
            j.name
        );
        let c = compile_preset(j.g, j.arch)?;
        slots.push(TenantImage {
            name: j.name.clone(),
            rows: dims.rows as u8,
            cols: dims.cols as u8,
            row0: j.partition.row0 as u8,
            col0: j.partition.col0 as u8,
            bitstream: c.bitstream.clone(),
        });
        compiled.push(c);
    }

    // Merge into one image: typed cross-partition-route rejection.
    let image = MultiTenantImage::merge(rows, cols, slots).map_err(DriverError::Image)?;

    // Simulate all tenants, each partition an isolated machine factor.
    let tms: Vec<_> = jobs.iter().map(|j| j.arch.tm.clone()).collect();
    let loads: Vec<TenantWorkload> = jobs
        .iter()
        .map(|j| TenantWorkload {
            inputs: array_inputs(j.g),
            params: j.overrides.clone(),
            max_cycles: j.max_cycles,
        })
        .collect();
    let run = run_tenants(&image, &tms, &loads, engine).map_err(|e| match e {
        TenancyError::Image(e) => DriverError::Image(e),
        other => DriverError::Mismatch {
            preset: "tenancy".to_string(),
            detail: other.to_string(),
        },
    })?;

    // Verify completed tenants against their own references; wedged
    // tenants keep their typed error.
    let mut tenants = Vec::with_capacity(jobs.len());
    for ((j, c), outcome) in jobs.iter().zip(&compiled).zip(run.tenants) {
        let tr = match outcome.result {
            Ok(r) => {
                verify_vs_reference(j.g, j.reference, j.arch, &j.name, &c.prog, &r)?;
                TenantOutcome::Completed(summarize(j.name.clone(), &r, &c.report))
            }
            Err(e) => TenantOutcome::Wedged(e),
        };
        tenants.push(TenantRun {
            name: j.name.clone(),
            partition: outcome.partition,
            outcome: tr,
        });
    }
    Ok(TenancyReport {
        rows,
        cols,
        tenants,
        makespan_cycles: run.makespan_cycles,
        total_fires: run.total_fires,
    })
}
