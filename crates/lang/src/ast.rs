//! The spanned `.mar` abstract syntax tree.
//!
//! Operator selection is purely syntactic: `+` *is* [`BinOp::Add`] and
//! `+.` *is* [`BinOp::FAdd`], exactly mirroring the machine's operator
//! set, so the AST reuses the `marionette-cdfg` op enums directly and the
//! semantic checker only has to diagnose *certainly wrong* operand types
//! (see [`crate::sema`]).
//!
//! Structured control flow (`for`, `while`, `if`) appears only as the
//! right-hand side of a `let` or as an expression statement — never nested
//! inside an operator — which keeps evaluation order first-class in the
//! source text.

use crate::diag::Span;
use marionette_cdfg::op::{BinOp, NlOp, UnOp};

/// A name with its source location.
#[derive(Clone, Debug)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// Source location.
    pub span: Span,
}

/// A declared element type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ty {
    /// 32-bit signed integer.
    I32,
    /// 32-bit IEEE-754 float.
    F32,
}

impl Ty {
    /// Keyword spelling.
    pub fn kw(self) -> &'static str {
        match self {
            Ty::I32 => "i32",
            Ty::F32 => "f32",
        }
    }
}

/// A literal value in a declaration initializer.
#[derive(Clone, Copy, Debug)]
pub struct Lit {
    /// The value.
    pub kind: LitKind,
    /// Source location.
    pub span: Span,
}

/// Literal payload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LitKind {
    /// Integer literal.
    Int(i32),
    /// Float literal.
    Float(f32),
}

/// A `param` declaration: a runtime scalar with a default.
#[derive(Clone, Debug)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: Ident,
    /// Declared type.
    pub ty: Ty,
    /// Default value.
    pub default: Lit,
    /// Whole-declaration span.
    pub span: Span,
}

/// An `input` or `state` array declaration.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    /// Array name.
    pub name: Ident,
    /// Declared element type (types the initializer; `state` arrays store
    /// raw machine words at runtime).
    pub ty: Ty,
    /// Element count.
    pub len: u64,
    /// Initial contents (zero-filled to `len`).
    pub init: Vec<Lit>,
    /// `true` for `state` (read-write, token-serialized, program output),
    /// `false` for `input` (read-only).
    pub state: bool,
    /// Whole-declaration span.
    pub span: Span,
}

/// A loop-carried variable with its initial value.
#[derive(Clone, Debug)]
pub struct Carry {
    /// Variable name (bound inside the loop body).
    pub name: Ident,
    /// Initial value, evaluated in the enclosing scope.
    pub init: Expr,
}

/// One statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    /// Statement payload.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

/// Statement payload.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// `let x = e;` or `let (a, b) = e;` (the printer emits parentheses
    /// exactly when more than one name is bound).
    Let {
        /// Bound names, in result order.
        names: Vec<Ident>,
        /// Right-hand side.
        value: Expr,
    },
    /// `arr[idx] = value;` — a store to a `state` array.
    Store {
        /// Target array.
        arr: Ident,
        /// Index expression.
        idx: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `sink name = e;` — collect a program output stream.
    Sink {
        /// Result label.
        name: Ident,
        /// Collected value.
        value: Expr,
    },
    /// A bare expression statement (results are discarded).
    Expr(Expr),
    /// `yield (a, b);` — the result values of the enclosing loop body or
    /// `if` side; must be the final statement of its block.
    Yield(Vec<Expr>),
}

/// One expression.
#[derive(Clone, Debug)]
pub struct Expr {
    /// Expression payload.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

/// Expression payload.
#[derive(Clone, Debug)]
pub enum ExprKind {
    /// Integer literal.
    Int(i32),
    /// Float literal.
    Float(f32),
    /// Variable reference.
    Var(Ident),
    /// `arr[idx]` — a load.
    Load {
        /// Source array.
        arr: Ident,
        /// Index expression.
        idx: Box<Expr>,
    },
    /// A binary machine operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        a: Box<Expr>,
        /// Right operand.
        b: Box<Expr>,
    },
    /// A unary machine operation.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand.
        a: Box<Expr>,
    },
    /// A nonlinear-unit operation.
    Nl {
        /// Operator.
        op: NlOp,
        /// Operand.
        a: Box<Expr>,
    },
    /// `mux(p, t, f)` — both sides computed, one selected.
    Mux {
        /// Predicate.
        p: Box<Expr>,
        /// Value when the predicate is true.
        t: Box<Expr>,
        /// Value when the predicate is false.
        f: Box<Expr>,
    },
    /// `for i in lo..hi step s with (c = e, ...) { ... }`.
    For {
        /// Index variable.
        var: Ident,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (exclusive).
        hi: Box<Expr>,
        /// Step (a positive integer literal).
        step: i32,
        /// Loop-carried variables.
        carries: Vec<Carry>,
        /// Body statements (trailing `yield` gives the next carry values).
        body: Vec<Stmt>,
    },
    /// `while cond with (c = e, ...) { ... }`.
    While {
        /// Continuation condition over the carry names (pure scalar
        /// expression; evaluated as the zero-trip guard and per iteration).
        cond: Box<Expr>,
        /// Loop-carried variables (at least one).
        carries: Vec<Carry>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `if cond { ... } else { ... }` — a structured hammock whose sides
    /// yield the same number of merged results.
    If {
        /// Branch predicate.
        cond: Box<Expr>,
        /// Taken side.
        then_b: Vec<Stmt>,
        /// Untaken side.
        else_b: Vec<Stmt>,
    },
}

impl Expr {
    /// True for `for`/`while`/`if`, which are restricted to statement
    /// position (the RHS of a `let` or an expression statement).
    pub fn is_block(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::For { .. } | ExprKind::While { .. } | ExprKind::If { .. }
        )
    }
}

/// A whole `.mar` program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Program name (becomes the CDFG name).
    pub name: Ident,
    /// Scalar parameters.
    pub params: Vec<ParamDecl>,
    /// Array declarations, in order.
    pub arrays: Vec<ArrayDecl>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

/// Reserved words that cannot be used as identifiers.
pub const KEYWORDS: &[&str] = &[
    "program", "param", "input", "state", "let", "sink", "yield", "for", "in", "step", "with",
    "while", "if", "else", "i32", "f32",
];

/// Surface symbol of a binary operator, or `None` for the call-form
/// operators (`min`, `max`, `fmin`, `fmax`).
pub fn bin_symbol(op: BinOp) -> Option<&'static str> {
    Some(match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::AShr => ">>",
        BinOp::Shr => ">>>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::FAdd => "+.",
        BinOp::FSub => "-.",
        BinOp::FMul => "*.",
        BinOp::FDiv => "/.",
        BinOp::FLt => "<.",
        BinOp::FLe => "<=.",
        BinOp::FGt => ">.",
        BinOp::FGe => ">=.",
        BinOp::Min | BinOp::Max | BinOp::FMin | BinOp::FMax => return None,
    })
}

/// Binary operator for a surface symbol.
pub fn bin_of_symbol(sym: &str) -> Option<BinOp> {
    Some(match sym {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "%" => BinOp::Rem,
        "&" => BinOp::And,
        "|" => BinOp::Or,
        "^" => BinOp::Xor,
        "<<" => BinOp::Shl,
        ">>" => BinOp::AShr,
        ">>>" => BinOp::Shr,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "==" => BinOp::Eq,
        "!=" => BinOp::Ne,
        "+." => BinOp::FAdd,
        "-." => BinOp::FSub,
        "*." => BinOp::FMul,
        "/." => BinOp::FDiv,
        "<." => BinOp::FLt,
        "<=." => BinOp::FLe,
        ">." => BinOp::FGt,
        ">=." => BinOp::FGe,
        _ => return None,
    })
}

/// Binding precedence of a binary operator (higher binds tighter).
/// C-like: mul 9, add 8, shift 7, relational 6, equality 5, `&` 4,
/// `^` 3, `|` 2. All binary operators are left-associative.
pub fn bin_prec(op: BinOp) -> u8 {
    use BinOp::*;
    match op {
        Mul | Div | Rem | FMul | FDiv => 9,
        Add | Sub | FAdd | FSub => 8,
        Shl | Shr | AShr => 7,
        Lt | Le | Gt | Ge | FLt | FLe | FGt | FGe => 6,
        Eq | Ne => 5,
        And => 4,
        Xor => 3,
        Or => 2,
        Min | Max | FMin | FMax => 10, // call syntax, never ambiguous
    }
}

/// The call-form builtins: `name(...)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Builtin {
    /// A unary machine op (`abs`, `fneg`, `fabs`, `i2f`, `f2i`).
    Un(UnOp),
    /// A nonlinear op (`sigmoid`, `log`, `exp`, `sqrt`, `recip`, `tanh`).
    Nl(NlOp),
    /// A two-argument machine op (`min`, `max`, `fmin`, `fmax`).
    Bin(BinOp),
    /// The three-argument selector `mux`.
    Mux,
}

/// Resolves a call-form builtin by name.
pub fn builtin(name: &str) -> Option<Builtin> {
    Some(match name {
        "abs" => Builtin::Un(UnOp::Abs),
        "fneg" => Builtin::Un(UnOp::FNeg),
        "fabs" => Builtin::Un(UnOp::FAbs),
        "i2f" => Builtin::Un(UnOp::I2F),
        "f2i" => Builtin::Un(UnOp::F2I),
        "sigmoid" => Builtin::Nl(NlOp::Sigmoid),
        "log" => Builtin::Nl(NlOp::Log),
        "exp" => Builtin::Nl(NlOp::Exp),
        "sqrt" => Builtin::Nl(NlOp::Sqrt),
        "recip" => Builtin::Nl(NlOp::Recip),
        "tanh" => Builtin::Nl(NlOp::Tanh),
        "min" => Builtin::Bin(BinOp::Min),
        "max" => Builtin::Bin(BinOp::Max),
        "fmin" => Builtin::Bin(BinOp::FMin),
        "fmax" => Builtin::Bin(BinOp::FMax),
        "mux" => Builtin::Mux,
        _ => return None,
    })
}

/// Surface name of a call-form unary op (`None` for the symbol forms
/// `-`, `~`, `!`).
pub fn un_call_name(op: UnOp) -> Option<&'static str> {
    Some(match op {
        UnOp::Abs => "abs",
        UnOp::FNeg => "fneg",
        UnOp::FAbs => "fabs",
        UnOp::I2F => "i2f",
        UnOp::F2I => "f2i",
        UnOp::Not | UnOp::Neg | UnOp::LNot => return None,
    })
}

/// Surface name of a nonlinear op.
pub fn nl_call_name(op: NlOp) -> &'static str {
    match op {
        NlOp::Sigmoid => "sigmoid",
        NlOp::Log => "log",
        NlOp::Exp => "exp",
        NlOp::Sqrt => "sqrt",
        NlOp::Recip => "recip",
        NlOp::Tanh => "tanh",
    }
}

/// Surface name of a call-form binary op.
pub fn bin_call_name(op: BinOp) -> Option<&'static str> {
    Some(match op {
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::FMin => "fmin",
        BinOp::FMax => "fmax",
        _ => return None,
    })
}
