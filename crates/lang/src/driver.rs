//! Full-stack execution of a `.mar` program: parse → check → lower →
//! compile → bitstream round-trip → cycle-level simulation, with every
//! preset's simulation checked bit-for-bit against the reference
//! interpreter. This is the engine behind the `marc` CLI and the golden
//! example tests.

use crate::ast;
use crate::diag::Diagnostic;
use crate::lower::lower;
use crate::parser::parse;
use crate::sema::check;
use marionette::runner::{compile_for_arch, compile_for_arch_with_faults};
use marionette_arch::Architecture;
use marionette_cdfg::interp::{interpret_with_budget, ExecMode, InterpError, InterpResult};
use marionette_cdfg::value::{compare_sink_maps as compare_sinks, stream_mismatch, Value};
use marionette_cdfg::Cdfg;
use std::fmt;

/// Firing budget for the reference interpretations.
pub const INTERP_BUDGET: u64 = 200_000_000;

/// Default cycle budget per simulated preset.
pub const DEFAULT_MAX_CYCLES: u64 = 200_000_000;

/// A failure anywhere in the source-to-silicon pipeline.
#[derive(Debug)]
pub enum DriverError {
    /// Lexing or parsing failed.
    Parse(Diagnostic),
    /// Semantic checks failed.
    Sema(Vec<Diagnostic>),
    /// The reference interpreter failed (or its two steering modes
    /// disagreed, which indicates an operator-semantics bug).
    Interp(InterpError),
    /// The two interpreter modes disagreed.
    Modes(String),
    /// Placement/routing failed on a preset.
    Compile {
        /// Preset short tag.
        preset: String,
        /// Compiler error.
        e: marionette::compiler::PlaceError,
    },
    /// The configuration bitstream did not round-trip.
    Bitstream {
        /// Preset short tag.
        preset: String,
        /// Decoder error text.
        detail: String,
    },
    /// Simulation failed on a preset.
    Sim {
        /// Preset short tag.
        preset: String,
        /// Simulator error.
        e: marionette::sim::SimError,
    },
    /// Simulated results diverged from the reference interpreter.
    Mismatch {
        /// Preset short tag.
        preset: String,
        /// First mismatch description.
        detail: String,
    },
    /// A tenancy partition layout is invalid (overlap, off-fabric, …).
    Partition(marionette::compiler::PartitionError),
    /// Per-partition bitstreams could not be merged into one
    /// multi-tenant image (cross-partition route, stray node, …).
    Image(marionette::isa::ImageError),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Parse(d) => write!(f, "parse: {}", d.message),
            DriverError::Sema(ds) => {
                write!(
                    f,
                    "{} semantic error(s); first: {}",
                    ds.len(),
                    ds[0].message
                )
            }
            DriverError::Interp(e) => write!(f, "reference interpreter: {e}"),
            DriverError::Modes(d) => write!(f, "interpreter steering modes disagree: {d}"),
            DriverError::Compile { preset, e } => write!(f, "compile on {preset}: {e}"),
            DriverError::Bitstream { preset, detail } => {
                write!(f, "bitstream round-trip on {preset}: {detail}")
            }
            DriverError::Sim { preset, e } => write!(f, "simulate on {preset}: {e}"),
            DriverError::Mismatch { preset, detail } => {
                write!(f, "sim diverges from the reference on {preset}: {detail}")
            }
            DriverError::Partition(e) => write!(f, "partition layout: {e}"),
            DriverError::Image(e) => write!(f, "multi-tenant image: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Parses, checks and lowers source text.
///
/// # Errors
/// Returns [`DriverError::Parse`] or [`DriverError::Sema`].
pub fn frontend(src: &str) -> Result<(ast::Program, Cdfg), DriverError> {
    let p = parse(src).map_err(DriverError::Parse)?;
    check(&p).map_err(DriverError::Sema)?;
    let g = lower(&p);
    Ok((p, g))
}

/// The program's reference semantics: both interpreter steering modes,
/// cross-checked against each other.
#[derive(Debug)]
pub struct Reference {
    /// Dropping-mode interpretation (the specification).
    pub dropping: InterpResult,
    /// Predicated-mode interpretation (fires both branch sides).
    pub predicated: InterpResult,
}

/// Interprets `g` in both modes with `overrides` and cross-checks them.
///
/// # Errors
/// Returns [`DriverError::Interp`] (including unknown parameter
/// overrides, surfaced as [`InterpError::UnknownParam`]) or
/// [`DriverError::Modes`].
pub fn reference(
    g: &Cdfg,
    overrides: &[(String, Value)],
    budget: u64,
) -> Result<Reference, DriverError> {
    let ovr: Vec<(&str, Value)> = overrides.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let dropping =
        interpret_with_budget(g, ExecMode::Dropping, &ovr, budget).map_err(DriverError::Interp)?;
    let predicated = interpret_with_budget(g, ExecMode::Predicated, &ovr, budget)
        .map_err(DriverError::Interp)?;
    for arr in &g.arrays {
        let id = g.array_by_name(&arr.name).expect("declared");
        if let Some(m) = stream_mismatch(dropping.memory.array(id), predicated.memory.array(id)) {
            return Err(DriverError::Modes(format!("array {}{m}", arr.name)));
        }
    }
    compare_sinks(&dropping.sinks, &predicated.sinks).map_err(DriverError::Modes)?;
    Ok(Reference {
        dropping,
        predicated,
    })
}

/// One preset's measured, verified run.
#[derive(Clone, Debug)]
pub struct PresetRun {
    /// Preset short tag.
    pub preset: String,
    /// Total cycles to quiescence.
    pub cycles: u64,
    /// Total node firings.
    pub fires: u64,
    /// Cycles flits spent blocked on busy links.
    pub link_stall_cycles: u64,
    /// Cycles stalled on group configuration switches.
    pub switch_stall_cycles: u64,
    /// Number of group switches.
    pub group_switches: u64,
    /// Routed point-to-point connections.
    pub routes: usize,
    /// Mean mesh hops per data route.
    pub mean_data_hops: f64,
    /// Annealing search report, when the mapping explorer ran.
    pub search: Option<marionette::compiler::SearchReport>,
    /// Disassembly of the (decoded) configuration, when requested.
    pub disasm: Option<String>,
}

/// A compiled, bitstream-round-tripped preset artifact: the unit the
/// `mard` content-addressed cache stores and replays. The program held
/// here is the *decoded* form of `bitstream`, so a consumer simulating
/// `prog` exercises exactly what a cold full-stack run would.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Decoded machine program (what the simulator runs).
    pub prog: marionette::isa::MachineProgram,
    /// Encoded configuration bitstream (what a cache persists; decoding
    /// these bytes yields `prog`).
    pub bitstream: Vec<u8>,
    /// Compilation report (route stats, search report).
    pub report: marionette::compiler::CompileReport,
}

/// Compiles `g` for `arch` and round-trips the configuration bitstream,
/// without simulating: the compile half of [`run_preset`], split out so
/// a server can cache the artifact and reuse it across requests.
///
/// # Errors
/// Returns [`DriverError::Compile`] or [`DriverError::Bitstream`].
pub fn compile_preset(g: &Cdfg, arch: &Architecture) -> Result<Compiled, DriverError> {
    let preset = arch.short.to_string();
    let (prog, report) = compile_for_arch(g, arch).map_err(|e| DriverError::Compile {
        preset: preset.clone(),
        e,
    })?;
    let bitstream = marionette::isa::bitstream::encode(&prog);
    let prog = roundtrip_bitstream(&prog, &preset)?;
    Ok(Compiled {
        prog,
        bitstream,
        report,
    })
}

/// Fault-aware variant of [`compile_preset`]: dead resources are masked
/// out of placement/routing, and the annealing explorer is forced on if
/// the preset compiles one-shot (greedy alone cannot rebalance around
/// arbitrary dead tiles). This is the remap half of the self-healing
/// loop in [`run_preset_faulted`].
///
/// # Errors
/// Returns [`DriverError::Compile`] (the typed "remap infeasible"
/// outcome) or [`DriverError::Bitstream`].
pub fn compile_preset_faulted(
    g: &Cdfg,
    arch: &Architecture,
    faults: &marionette::sim::FaultSet,
) -> Result<Compiled, DriverError> {
    let preset = arch.short.to_string();
    let mut healed = arch.clone();
    if !healed.opts.search.is_on() {
        healed.opts.search = marionette::compiler::SearchBudget::default_on();
    }
    let (prog, report) =
        compile_for_arch_with_faults(g, &healed, faults).map_err(|e| DriverError::Compile {
            preset: preset.clone(),
            e,
        })?;
    let bitstream = marionette::isa::bitstream::encode(&prog);
    let prog = roundtrip_bitstream(&prog, &preset)?;
    Ok(Compiled {
        prog,
        bitstream,
        report,
    })
}

/// Simulates a pre-compiled preset artifact with `faults` injected and
/// bit-verifies it against `reference` — the simulate half of
/// [`run_preset`], usable with a [`Compiled`] pulled from a cache
/// instead of a fresh compile. Pass [`marionette::sim::FaultSet::none`]
/// for a healthy fabric.
///
/// # Errors
/// Returns [`DriverError::Sim`] (including the typed
/// [`marionette::sim::SimError::Fault`] screen when the artifact touches
/// a dead resource) or [`DriverError::Mismatch`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_compiled(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    compiled: &Compiled,
    overrides: &[(String, Value)],
    max_cycles: u64,
    faults: &marionette::sim::FaultSet,
    engine: marionette::sim::EngineKind,
) -> Result<PresetRun, DriverError> {
    let preset = arch.short.to_string();
    let inputs = array_inputs(g);
    let r = marionette::sim::run_full(
        &compiled.prog,
        &arch.tm,
        faults,
        engine,
        &inputs,
        overrides,
        max_cycles,
    )
    .map_err(|e| DriverError::Sim {
        preset: preset.clone(),
        e,
    })?;
    verify_vs_reference(g, reference, arch, &preset, &compiled.prog, &r)?;
    Ok(summarize(preset, &r, &compiled.report))
}

/// [`simulate_compiled`] with a [`marionette::sim::Tracer`] recording
/// the cycle-accurate event stream ([`marionette::sim::trace`]): the
/// `marc --trace` path. The traced simulation is bit-identical to the
/// untraced one and passes the same reference verification.
///
/// # Errors
/// As [`simulate_compiled`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_compiled_traced(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    compiled: &Compiled,
    overrides: &[(String, Value)],
    max_cycles: u64,
    faults: &marionette::sim::FaultSet,
    engine: marionette::sim::EngineKind,
    tracer: &mut marionette::sim::Tracer,
) -> Result<PresetRun, DriverError> {
    let preset = arch.short.to_string();
    let inputs = array_inputs(g);
    let r = marionette::sim::run_full_traced(
        &compiled.prog,
        &arch.tm,
        faults,
        engine,
        &inputs,
        overrides,
        max_cycles,
        tracer,
    )
    .map_err(|e| DriverError::Sim {
        preset: preset.clone(),
        e,
    })?;
    verify_vs_reference(g, reference, arch, &preset, &compiled.prog, &r)?;
    Ok(summarize(preset, &r, &compiled.report))
}

/// Simulates N parameter lanes of one pre-compiled artifact in a single
/// batched pass ([`marionette::sim::run_lanes_full`]): the machine is
/// built once and reset between lanes, which is how the `mard` batch
/// endpoint folds same-bitstream requests into one run. Lane `i` is
/// verified against `references[i]` (its own parameter set's reference
/// interpretation); a lane that wedges reports its own error without
/// poisoning its neighbours.
///
/// # Errors
/// The outer `Err` is a [`DriverError::Sim`] from machine construction;
/// per-lane simulation/verification failures come back in the inner
/// results.
///
/// # Panics
/// Panics if `references` and `lane_overrides` lengths differ.
pub fn simulate_compiled_lanes(
    g: &Cdfg,
    references: &[Reference],
    arch: &Architecture,
    compiled: &Compiled,
    lane_overrides: &[Vec<(String, Value)>],
    max_cycles: u64,
    engine: marionette::sim::EngineKind,
) -> Result<Vec<Result<PresetRun, DriverError>>, DriverError> {
    assert_eq!(
        references.len(),
        lane_overrides.len(),
        "one reference per lane"
    );
    let preset = arch.short.to_string();
    let inputs = array_inputs(g);
    let lanes: Vec<marionette::sim::LaneSpec> = lane_overrides
        .iter()
        .map(|ovr| marionette::sim::LaneSpec {
            inputs: inputs.clone(),
            params: ovr.clone(),
        })
        .collect();
    let results = marionette::sim::run_lanes_full(
        &compiled.prog,
        &arch.tm,
        &marionette::sim::FaultSet::none(),
        engine,
        &lanes,
        max_cycles,
    )
    .map_err(|e| DriverError::Sim {
        preset: preset.clone(),
        e,
    })?;
    Ok(results
        .into_iter()
        .zip(references)
        .map(|(r, reference)| {
            let r = r.map_err(|e| DriverError::Sim {
                preset: preset.clone(),
                e,
            })?;
            verify_vs_reference(g, reference, arch, &preset, &compiled.prog, &r)?;
            Ok(summarize(preset.clone(), &r, &compiled.report))
        })
        .collect())
}

/// Compiles `g` for `arch`, round-trips the bitstream, simulates the
/// decoded program and verifies it bit-for-bit against `reference`.
///
/// # Errors
/// Returns the first [`DriverError`] along the pipeline.
pub fn run_preset(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    overrides: &[(String, Value)],
    max_cycles: u64,
    want_disasm: bool,
) -> Result<PresetRun, DriverError> {
    run_preset_engine(
        g,
        reference,
        arch,
        overrides,
        max_cycles,
        want_disasm,
        marionette::sim::EngineKind::default(),
    )
}

/// [`run_preset`] with an explicit simulator engine — the `marc
/// --engine` axis. Both engines verify against the same reference
/// bit for bit.
///
/// # Errors
/// Returns the first [`DriverError`] along the pipeline.
#[allow(clippy::too_many_arguments)]
pub fn run_preset_engine(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    overrides: &[(String, Value)],
    max_cycles: u64,
    want_disasm: bool,
    engine: marionette::sim::EngineKind,
) -> Result<PresetRun, DriverError> {
    let compiled = compile_preset(g, arch)?;
    let mut run = simulate_compiled(
        g,
        reference,
        arch,
        &compiled,
        overrides,
        max_cycles,
        &marionette::sim::FaultSet::none(),
        engine,
    )?;
    if want_disasm {
        run.disasm = Some(marionette::isa::disasm::disassemble(&compiled.prog));
    }
    Ok(run)
}

/// [`run_preset_engine`] with a [`marionette::sim::Tracer`]: compiles,
/// round-trips the bitstream, simulates traced, verifies — the healthy
/// `marc --trace` pipeline.
///
/// # Errors
/// Returns the first [`DriverError`] along the pipeline.
#[allow(clippy::too_many_arguments)]
pub fn run_preset_engine_traced(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    overrides: &[(String, Value)],
    max_cycles: u64,
    want_disasm: bool,
    engine: marionette::sim::EngineKind,
    tracer: &mut marionette::sim::Tracer,
) -> Result<PresetRun, DriverError> {
    let compiled = compile_preset(g, arch)?;
    let mut run = simulate_compiled_traced(
        g,
        reference,
        arch,
        &compiled,
        overrides,
        max_cycles,
        &marionette::sim::FaultSet::none(),
        engine,
        tracer,
    )?;
    if want_disasm {
        run.disasm = Some(marionette::isa::disasm::disassemble(&compiled.prog));
    }
    Ok(run)
}

/// Serializes `prog` to the configuration bitstream and decodes it back
/// — the same full-stack fidelity check every pipeline run exercises.
fn roundtrip_bitstream(
    prog: &marionette::isa::MachineProgram,
    preset: &str,
) -> Result<marionette::isa::MachineProgram, DriverError> {
    let bytes = marionette::isa::bitstream::encode(prog);
    marionette::isa::bitstream::decode(&bytes).map_err(|e| DriverError::Bitstream {
        preset: preset.to_string(),
        detail: e.to_string(),
    })
}

pub(crate) fn array_inputs(g: &Cdfg) -> Vec<(String, Vec<Value>)> {
    g.arrays
        .iter()
        .map(|a| (a.name.clone(), a.init.clone()))
        .collect()
}

/// Bit-verifies a simulation against the reference interpreter: every
/// array stream, every sink stream, the out-of-bounds event count and
/// the firing count (predicated or dropping, per the timing model).
pub(crate) fn verify_vs_reference(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    preset: &str,
    prog: &marionette::isa::MachineProgram,
    r: &marionette::sim::RunResult,
) -> Result<(), DriverError> {
    let fail = |detail: String| DriverError::Mismatch {
        preset: preset.to_string(),
        detail,
    };
    for arr in &g.arrays {
        let id = g.array_by_name(&arr.name).expect("declared");
        let expect = reference.dropping.memory.array(id);
        let got = r
            .array(prog, &arr.name)
            .ok_or_else(|| fail(format!("array {} missing from the simulation", arr.name)))?;
        if let Some(m) = stream_mismatch(expect, got) {
            return Err(fail(format!("array {}{m}", arr.name)));
        }
    }
    compare_sinks(&reference.dropping.sinks, &r.sinks).map_err(fail)?;
    if r.oob_events != reference.dropping.memory.oob_events() {
        return Err(fail(format!(
            "interp saw {} out-of-bounds events, sim {}",
            reference.dropping.memory.oob_events(),
            r.oob_events
        )));
    }
    let expect_fires = if arch.tm.predicated_branches {
        reference.predicated.firings
    } else {
        reference.dropping.firings
    };
    if r.stats.fires != expect_fires {
        return Err(fail(format!(
            "interp fired {expect_fires} times, sim fired {}",
            r.stats.fires
        )));
    }
    Ok(())
}

pub(crate) fn summarize(
    preset: String,
    r: &marionette::sim::RunResult,
    report: &marionette::compiler::CompileReport,
) -> PresetRun {
    PresetRun {
        preset,
        cycles: r.stats.cycles,
        fires: r.stats.fires,
        link_stall_cycles: r.stats.link_stall_cycles,
        switch_stall_cycles: r.stats.switch_stall_cycles,
        group_switches: r.stats.group_switches,
        routes: report.routes,
        mean_data_hops: report.mean_data_hops,
        search: report.search.clone(),
        disasm: None,
    }
}

/// One preset's run on a faulted fabric.
#[derive(Clone, Debug)]
pub struct FaultRun {
    /// The faulted resource (fault-spec syntax, e.g. `pe:1,2`) that
    /// wedged the fault-oblivious bitstream, when one did.
    pub wedged: Option<String>,
    /// Whether the measurement comes from a fault-aware remap rather
    /// than the original mapping.
    pub remapped: bool,
    /// The verified measurement.
    pub run: PresetRun,
}

/// Runs `g` on `arch` with `faults` injected, self-healing by remap when
/// the fault-oblivious bitstream touches a dead resource:
///
/// 1. compile normally and simulate with the faults injected;
/// 2. if the simulator rejects the bitstream with a typed
///    [`marionette::sim::SimError::Fault`], re-run the compile with the
///    faulty resources masked (forcing the annealing explorer on so
///    operators can move off dead tiles) and simulate the remap;
/// 3. either way, bit-verify the surviving run against the reference
///    interpreter — the same arrays/sinks/oob/fires oracle
///    [`run_preset`] applies.
///
/// A remap that still cannot fit ([`DriverError::Compile`]) is the typed
/// "remap infeasible" outcome callers count as a degradation failure.
///
/// # Errors
/// Returns the first [`DriverError`] along whichever pipeline (original
/// or remapped) survives fault screening.
pub fn run_preset_faulted(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    overrides: &[(String, Value)],
    max_cycles: u64,
    faults: &marionette::sim::FaultSet,
) -> Result<FaultRun, DriverError> {
    run_preset_faulted_engine(
        g,
        reference,
        arch,
        overrides,
        max_cycles,
        faults,
        marionette::sim::EngineKind::default(),
    )
}

/// [`run_preset_faulted`] with an explicit simulator engine.
///
/// # Errors
/// Returns the first [`DriverError`] along whichever pipeline (original
/// or remapped) survives fault screening.
#[allow(clippy::too_many_arguments)]
pub fn run_preset_faulted_engine(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    overrides: &[(String, Value)],
    max_cycles: u64,
    faults: &marionette::sim::FaultSet,
    engine: marionette::sim::EngineKind,
) -> Result<FaultRun, DriverError> {
    let compiled = compile_preset(g, arch)?;
    let wedged = match simulate_compiled(
        g, reference, arch, &compiled, overrides, max_cycles, faults, engine,
    ) {
        Ok(run) => {
            return Ok(FaultRun {
                wedged: None,
                remapped: false,
                run,
            })
        }
        Err(DriverError::Sim {
            e: marionette::sim::SimError::Fault { what, .. },
            ..
        }) => what,
        Err(e) => return Err(e),
    };
    // Self-heal: recompile with the faulty resources masked. Presets that
    // compile one-shot get the default annealing budget — the greedy
    // placer alone cannot rebalance around arbitrary dead tiles.
    let compiled = compile_preset_faulted(g, arch, faults)?;
    let run = simulate_compiled(
        g, reference, arch, &compiled, overrides, max_cycles, faults, engine,
    )?;
    Ok(FaultRun {
        wedged: Some(wedged),
        remapped: true,
        run,
    })
}

/// [`run_preset_faulted_engine`] with a [`marionette::sim::Tracer`]: the
/// surviving pipeline (original or self-healed remap) simulates traced,
/// and a wedged bitstream leaves a `remap after <resource>` marker on
/// the trace's marks track.
///
/// # Errors
/// Returns the first [`DriverError`] along whichever pipeline (original
/// or remapped) survives fault screening.
#[allow(clippy::too_many_arguments)]
pub fn run_preset_faulted_engine_traced(
    g: &Cdfg,
    reference: &Reference,
    arch: &Architecture,
    overrides: &[(String, Value)],
    max_cycles: u64,
    faults: &marionette::sim::FaultSet,
    engine: marionette::sim::EngineKind,
    tracer: &mut marionette::sim::Tracer,
) -> Result<FaultRun, DriverError> {
    let compiled = compile_preset(g, arch)?;
    let wedged = match simulate_compiled_traced(
        g, reference, arch, &compiled, overrides, max_cycles, faults, engine, tracer,
    ) {
        Ok(run) => {
            return Ok(FaultRun {
                wedged: None,
                remapped: false,
                run,
            })
        }
        Err(DriverError::Sim {
            e: marionette::sim::SimError::Fault { what, .. },
            ..
        }) => what,
        Err(e) => return Err(e),
    };
    tracer.mark(0, &format!("remap after {wedged}"));
    let compiled = compile_preset_faulted(g, arch, faults)?;
    let run = simulate_compiled_traced(
        g, reference, arch, &compiled, overrides, max_cycles, faults, engine, tracer,
    )?;
    Ok(FaultRun {
        wedged: Some(wedged),
        remapped: true,
        run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
program smoke;
param n: i32 = 6;
input a: i32[8] = [3, 1, 4, 1, 5, 9, 2, 6];
state s: i32[8];

let sum = for i in 0..n with acc = 0 {
  let x = a[i];
  let (y,) = if x & 1 { yield x * 3; } else { yield x; };
  s[i] = y;
  yield acc + y;
};
sink sum = sum;
";

    #[test]
    fn full_stack_on_the_ladder() {
        let (_, g) = frontend(SRC).unwrap();
        let r = reference(&g, &[], INTERP_BUDGET).unwrap();
        for arch in marionette_arch::all_presets() {
            let run = run_preset(&g, &r, &arch, &[], DEFAULT_MAX_CYCLES, false)
                .unwrap_or_else(|e| panic!("{}: {e}", arch.short));
            assert!(run.cycles > 0);
        }
    }

    #[test]
    fn dead_resource_is_a_typed_fault_not_a_deadlock() {
        let (_, g) = frontend(SRC).unwrap();
        let arch = marionette_arch::marionette_full();
        let (prog, _) = compile_for_arch(&g, &arch).unwrap();
        let mut faults = marionette::sim::FaultSet::new(arch.opts.rows, arch.opts.cols);
        faults.add("pe:0,0".parse().unwrap()).unwrap();
        let inputs = array_inputs(&g);
        let err = marionette::sim::run_with_faults(
            &prog,
            &arch.tm,
            &faults,
            &inputs,
            &[],
            DEFAULT_MAX_CYCLES,
        )
        .unwrap_err();
        match err {
            marionette::sim::SimError::Fault { what, .. } => assert_eq!(what, "pe:0,0"),
            other => panic!("expected a typed fault, got {other}"),
        }
    }

    #[test]
    fn heal_loop_remaps_around_a_dead_pe() {
        let (_, g) = frontend(SRC).unwrap();
        let r = reference(&g, &[], INTERP_BUDGET).unwrap();
        let arch = marionette_arch::marionette_full();
        let mut faults = marionette::sim::FaultSet::new(arch.opts.rows, arch.opts.cols);
        faults.add("pe:0,0".parse().unwrap()).unwrap();
        let fr = run_preset_faulted(&g, &r, &arch, &[], DEFAULT_MAX_CYCLES, &faults).unwrap();
        assert_eq!(fr.wedged.as_deref(), Some("pe:0,0"));
        assert!(fr.remapped, "a dead anchor tile must force a remap");
        assert!(fr.run.cycles > 0);
    }

    #[test]
    fn flaky_links_stretch_cycles_but_never_values() {
        let (_, g) = frontend(SRC).unwrap();
        let r = reference(&g, &[], INTERP_BUDGET).unwrap();
        let arch = marionette_arch::marionette_full();
        let clean = run_preset(&g, &r, &arch, &[], DEFAULT_MAX_CYCLES, false).unwrap();
        let (rows, cols) = (arch.opts.rows, arch.opts.cols);
        let mut prev = clean.cycles;
        let mut grew = false;
        for mult in [2u32, 8] {
            // Degrade every mesh link in both directions: any program
            // with at least one cross-tile flit route must slow down.
            let mut faults = marionette::sim::FaultSet::new(rows, cols);
            for row in 0..rows {
                for col in 0..cols {
                    if col + 1 < cols {
                        for (a, b) in [((row, col), (row, col + 1)), ((row, col + 1), (row, col))] {
                            faults
                                .add(marionette::sim::FaultSpec::FlakyLink {
                                    from: a,
                                    to: b,
                                    mult,
                                })
                                .unwrap();
                        }
                    }
                    if row + 1 < rows {
                        for (a, b) in [((row, col), (row + 1, col)), ((row + 1, col), (row, col))] {
                            faults
                                .add(marionette::sim::FaultSpec::FlakyLink {
                                    from: a,
                                    to: b,
                                    mult,
                                })
                                .unwrap();
                        }
                    }
                }
            }
            // run_preset_faulted bit-verifies against the interpreter, so
            // a value changed by a flaky link would fail here.
            let fr = run_preset_faulted(&g, &r, &arch, &[], DEFAULT_MAX_CYCLES, &faults).unwrap();
            assert!(!fr.remapped, "flaky links must not wedge the bitstream");
            assert!(
                fr.run.cycles >= prev,
                "cycles must grow monotonically with the stall multiplier"
            );
            prev = fr.run.cycles;
            grew = grew || fr.run.cycles > clean.cycles;
        }
        assert!(grew, "uniformly flaky mesh must cost cycles");
    }

    #[test]
    fn unknown_param_override_is_typed() {
        let (_, g) = frontend(SRC).unwrap();
        let e = reference(&g, &[("zz".to_string(), Value::I32(1))], INTERP_BUDGET).unwrap_err();
        match e {
            DriverError::Interp(InterpError::UnknownParam { name }) => assert_eq!(name, "zz"),
            other => panic!("expected UnknownParam, got {other}"),
        }
    }

    #[test]
    fn sema_errors_surface_with_spans() {
        let e = frontend("program t; state s: i32[4]; let x = nope + 1;").unwrap_err();
        match e {
            DriverError::Sema(ds) => assert!(ds[0].message.contains("unknown name")),
            other => panic!("expected Sema, got {other}"),
        }
    }
}
