//! Recursive-descent parser for `.mar` source.
//!
//! Fails fast: the first syntax error is returned as a located
//! [`Diagnostic`]. Structural rules that need name or type information
//! (unknown identifiers, operand types, yield placement, ...) are left to
//! [`crate::sema`]; the parser only enforces shape:
//!
//! - block expressions (`for`, `while`, `if`) appear only as a `let`
//!   right-hand side or as an expression statement;
//! - call-form builtins are resolved (and arity-checked) here, since the
//!   builtin table is part of the grammar;
//! - unary minus on a literal folds into the literal, so `-3` and `-1.5`
//!   are immediates, not negation nodes.

use crate::ast::{
    bin_of_symbol, bin_prec, builtin, ArrayDecl, Builtin, Carry, Expr, ExprKind, Ident, Lit,
    LitKind, ParamDecl, Program, Stmt, StmtKind, Ty, KEYWORDS,
};
use crate::diag::{Diagnostic, Span};
use crate::lexer::{lex, Tok};
use marionette_cdfg::op::UnOp;

/// Parses a whole `.mar` program.
///
/// # Errors
/// Returns the first lexical or syntax error as a located [`Diagnostic`].
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let prog = p.program()?;
    Ok(prog)
}

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn span(&self) -> Span {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> (Tok, Span) {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(self.span(), msg.into())
    }

    fn expect(&mut self, want: &Tok, what: &str) -> PResult<Span> {
        if self.peek() == want {
            Ok(self.bump().1)
        } else {
            Err(self.err_here(format!("expected {what}, found {}", self.peek().describe())))
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<Span> {
        if self.is_kw(kw) {
            Ok(self.bump().1)
        } else {
            Err(self.err_here(format!("expected `{kw}`, found {}", self.peek().describe())))
        }
    }

    /// A non-keyword identifier.
    fn name(&mut self, what: &str) -> PResult<Ident> {
        match self.peek().clone() {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {
                let span = self.bump().1;
                Ok(Ident { name: s, span })
            }
            Tok::Ident(s) => {
                Err(self.err_here(format!("`{s}` is a keyword and cannot be used as {what}")))
            }
            t => Err(self.err_here(format!("expected {what}, found {}", t.describe()))),
        }
    }

    fn ty(&mut self) -> PResult<Ty> {
        if self.eat_kw("i32") {
            Ok(Ty::I32)
        } else if self.eat_kw("f32") {
            Ok(Ty::F32)
        } else {
            Err(self.err_here(format!(
                "expected a type (`i32` or `f32`), found {}",
                self.peek().describe()
            )))
        }
    }

    fn int_to_i32(&self, value: u64, hex: bool, neg: bool, span: Span) -> PResult<i32> {
        if hex {
            if value > u32::MAX as u64 {
                return Err(Diagnostic::new(span, "hex literal wider than 32 bits"));
            }
            let v = value as u32 as i32;
            Ok(if neg { v.wrapping_neg() } else { v })
        } else if neg {
            if value > 1 << 31 {
                return Err(Diagnostic::new(span, "integer literal below i32::MIN"));
            }
            Ok((-(value as i64)) as i32)
        } else {
            if value > i32::MAX as u64 {
                return Err(Diagnostic::new(
                    span,
                    "integer literal above i32::MAX (use a 0x literal for bit patterns)",
                ));
            }
            Ok(value as i32)
        }
    }

    /// A literal with optional leading minus (declaration initializers).
    fn lit(&mut self) -> PResult<Lit> {
        let neg = matches!(self.peek(), Tok::Op("-"));
        let lo = self.span();
        if neg {
            self.bump();
        }
        match self.bump() {
            (Tok::Int { value, hex }, sp) => Ok(Lit {
                kind: LitKind::Int(self.int_to_i32(value, hex, neg, sp)?),
                span: lo.to(sp),
            }),
            (Tok::Float(v), sp) => Ok(Lit {
                kind: LitKind::Float(if neg { -v } else { v }),
                span: lo.to(sp),
            }),
            (t, sp) => Err(Diagnostic::new(
                sp,
                format!("expected a literal, found {}", t.describe()),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Program structure
    // ------------------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        self.expect_kw("program")?;
        let name = self.name("the program name")?;
        self.expect(&Tok::Semi, "`;` after the program name")?;
        let mut params = Vec::new();
        let mut arrays = Vec::new();
        loop {
            if self.is_kw("param") {
                let lo = self.bump().1;
                let name = self.name("a parameter name")?;
                self.expect(&Tok::Colon, "`:` in the parameter declaration")?;
                let ty = self.ty()?;
                self.expect(&Tok::Assign, "`=` before the parameter default")?;
                let default = self.lit()?;
                let hi = self.expect(&Tok::Semi, "`;` after the parameter declaration")?;
                params.push(ParamDecl {
                    name,
                    ty,
                    default,
                    span: lo.to(hi),
                });
            } else if self.is_kw("input") || self.is_kw("state") {
                let state = self.is_kw("state");
                let lo = self.bump().1;
                let name = self.name("an array name")?;
                self.expect(&Tok::Colon, "`:` in the array declaration")?;
                let ty = self.ty()?;
                self.expect(&Tok::LBracket, "`[` before the array length")?;
                let len = match self.bump() {
                    (Tok::Int { value, hex: false }, _) => value,
                    (t, sp) => {
                        return Err(Diagnostic::new(
                            sp,
                            format!("expected the array length, found {}", t.describe()),
                        ))
                    }
                };
                self.expect(&Tok::RBracket, "`]` after the array length")?;
                let mut init = Vec::new();
                if self.peek() == &Tok::Assign {
                    self.bump();
                    self.expect(&Tok::LBracket, "`[` starting the initializer")?;
                    if self.peek() != &Tok::RBracket {
                        loop {
                            init.push(self.lit()?);
                            if self.peek() == &Tok::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RBracket, "`]` closing the initializer")?;
                }
                let hi = self.expect(&Tok::Semi, "`;` after the array declaration")?;
                arrays.push(ArrayDecl {
                    name,
                    ty,
                    len,
                    init,
                    state,
                    span: lo.to(hi),
                });
            } else {
                break;
            }
        }
        let body = self.stmts_until(&Tok::Eof)?;
        Ok(Program {
            name,
            params,
            arrays,
            body,
        })
    }

    fn stmts_until(&mut self, end: &Tok) -> PResult<Vec<Stmt>> {
        let mut out = Vec::new();
        while self.peek() != end {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn block(&mut self) -> PResult<Vec<Stmt>> {
        self.expect(&Tok::LBrace, "`{`")?;
        let body = self.stmts_until(&Tok::RBrace)?;
        self.expect(&Tok::RBrace, "`}`")?;
        Ok(body)
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt(&mut self) -> PResult<Stmt> {
        let lo = self.span();
        if self.eat_kw("let") {
            let mut names = Vec::new();
            if self.peek() == &Tok::LParen {
                self.bump();
                loop {
                    names.push(self.name("a variable name")?);
                    if self.peek() == &Tok::Comma {
                        self.bump();
                        if self.peek() == &Tok::RParen {
                            break; // trailing comma
                        }
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RParen, "`)` closing the binding list")?;
            } else {
                names.push(self.name("a variable name")?);
            }
            self.expect(&Tok::Assign, "`=` in the let binding")?;
            let value = self.rhs_expr()?;
            let hi = self.expect(&Tok::Semi, "`;` after the let binding")?;
            return Ok(Stmt {
                kind: StmtKind::Let { names, value },
                span: lo.to(hi),
            });
        }
        if self.eat_kw("sink") {
            let name = self.name("a sink label")?;
            self.expect(&Tok::Assign, "`=` in the sink statement")?;
            let value = self.expr()?;
            let hi = self.expect(&Tok::Semi, "`;` after the sink statement")?;
            return Ok(Stmt {
                kind: StmtKind::Sink { name, value },
                span: lo.to(hi),
            });
        }
        if self.eat_kw("yield") {
            let mut values = Vec::new();
            if self.peek() == &Tok::LParen {
                self.bump();
                if self.peek() != &Tok::RParen {
                    loop {
                        values.push(self.expr()?);
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen, "`)` closing the yield list")?;
            } else {
                values.push(self.expr()?);
            }
            let hi = self.expect(&Tok::Semi, "`;` after yield")?;
            return Ok(Stmt {
                kind: StmtKind::Yield(values),
                span: lo.to(hi),
            });
        }
        if self.is_kw("for") || self.is_kw("while") || self.is_kw("if") {
            let value = self.block_expr()?;
            let hi = self.expect(&Tok::Semi, "`;` after the statement")?;
            return Ok(Stmt {
                kind: StmtKind::Expr(value),
                span: lo.to(hi),
            });
        }
        if matches!(self.peek(), Tok::Ident(s) if matches!(s.as_str(), "param" | "input" | "state"))
        {
            return Err(self.err_here(
                "declarations must precede all statements (move this above the first statement)",
            ));
        }
        // Store: IDENT `[` idx `]` `=` value `;`
        if matches!(self.peek(), Tok::Ident(_)) && self.peek2() == &Tok::LBracket {
            let arr = self.name("an array name")?;
            self.expect(&Tok::LBracket, "`[`")?;
            let idx = self.expr()?;
            self.expect(&Tok::RBracket, "`]` after the store index")?;
            self.expect(&Tok::Assign, "`=` in the store statement")?;
            let value = self.expr()?;
            let hi = self.expect(&Tok::Semi, "`;` after the store")?;
            return Ok(Stmt {
                kind: StmtKind::Store { arr, idx, value },
                span: lo.to(hi),
            });
        }
        Err(self.err_here(format!(
            "expected a statement (`let`, `sink`, `yield`, a store, `for`, `while` or `if`), \
             found {}",
            self.peek().describe()
        )))
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    /// A `let` right-hand side: a block expression or a plain expression.
    fn rhs_expr(&mut self) -> PResult<Expr> {
        if self.is_kw("for") || self.is_kw("while") || self.is_kw("if") {
            self.block_expr()
        } else {
            self.expr()
        }
    }

    fn carries(&mut self) -> PResult<Vec<Carry>> {
        if !self.eat_kw("with") {
            return Ok(Vec::new());
        }
        let parens = self.peek() == &Tok::LParen;
        if parens {
            self.bump();
        }
        let mut out = Vec::new();
        loop {
            let name = self.name("a carry variable name")?;
            self.expect(&Tok::Assign, "`=` after the carry name")?;
            let init = self.expr()?;
            out.push(Carry { name, init });
            if parens && self.peek() == &Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        if parens {
            self.expect(&Tok::RParen, "`)` closing the carry list")?;
        }
        Ok(out)
    }

    fn block_expr(&mut self) -> PResult<Expr> {
        let lo = self.span();
        if self.eat_kw("for") {
            let var = self.name("the loop index name")?;
            self.expect_kw("in")?;
            let lo_e = self.expr()?;
            self.expect(&Tok::DotDot, "`..` between the loop bounds")?;
            let hi_e = self.expr()?;
            let mut step = 1i32;
            if self.eat_kw("step") {
                let sp = self.span();
                match self.bump() {
                    (Tok::Int { value, hex: false }, _)
                        if (1..=i32::MAX as u64).contains(&value) =>
                    {
                        step = value as i32;
                    }
                    _ => {
                        return Err(Diagnostic::new(
                            sp,
                            "`step` takes a positive integer literal",
                        ))
                    }
                }
            }
            let carries = self.carries()?;
            let body = self.block()?;
            let hi = self.toks[self.pos - 1].1;
            return Ok(Expr {
                kind: ExprKind::For {
                    var,
                    lo: Box::new(lo_e),
                    hi: Box::new(hi_e),
                    step,
                    carries,
                    body,
                },
                span: lo.to(hi),
            });
        }
        if self.eat_kw("while") {
            let cond = self.expr()?;
            let carries = self.carries()?;
            let body = self.block()?;
            let hi = self.toks[self.pos - 1].1;
            return Ok(Expr {
                kind: ExprKind::While {
                    cond: Box::new(cond),
                    carries,
                    body,
                },
                span: lo.to(hi),
            });
        }
        self.expect_kw("if")?;
        let cond = self.expr()?;
        let then_b = self.block()?;
        self.expect_kw("else")?;
        let else_b = self.block()?;
        let hi = self.toks[self.pos - 1].1;
        Ok(Expr {
            kind: ExprKind::If {
                cond: Box::new(cond),
                then_b,
                else_b,
            },
            span: lo.to(hi),
        })
    }

    fn expr(&mut self) -> PResult<Expr> {
        self.bin_expr(0)
    }

    /// Precedence climbing; all binary operators are left-associative.
    fn bin_expr(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Tok::Op(sym) = self.peek() {
            let Some(op) = bin_of_symbol(sym) else { break };
            let prec = bin_prec(op);
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Bin {
                    op,
                    a: Box::new(lhs),
                    b: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let lo = self.span();
        let op = match self.peek() {
            Tok::Op("-") => Some(UnOp::Neg),
            Tok::Op("~") => Some(UnOp::Not),
            Tok::Op("!") => Some(UnOp::LNot),
            _ => None,
        };
        let Some(op) = op else {
            return self.primary();
        };
        self.bump();
        // `-LITERAL` folds before range checking, so `-2147483648` is valid.
        if op == UnOp::Neg {
            if let Tok::Int { value, hex } = *self.peek() {
                let sp = self.bump().1;
                return Ok(Expr {
                    kind: ExprKind::Int(self.int_to_i32(value, hex, true, sp)?),
                    span: lo.to(sp),
                });
            }
        }
        let a = self.unary()?;
        let span = lo.to(a.span);
        // Fold unary minus on literals so `-3` is an immediate.
        if op == UnOp::Neg {
            match a.kind {
                ExprKind::Int(v) => {
                    return Ok(Expr {
                        kind: ExprKind::Int(v.wrapping_neg()),
                        span,
                    })
                }
                ExprKind::Float(v) => {
                    return Ok(Expr {
                        kind: ExprKind::Float(-v),
                        span,
                    })
                }
                _ => {}
            }
        }
        Ok(Expr {
            kind: ExprKind::Un { op, a: Box::new(a) },
            span,
        })
    }

    fn primary(&mut self) -> PResult<Expr> {
        let lo = self.span();
        match self.peek().clone() {
            Tok::Int { value, hex } => {
                let sp = self.bump().1;
                Ok(Expr {
                    kind: ExprKind::Int(self.int_to_i32(value, hex, false, sp)?),
                    span: sp,
                })
            }
            Tok::Float(v) => {
                let sp = self.bump().1;
                Ok(Expr {
                    kind: ExprKind::Float(v),
                    span: sp,
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(s) => {
                if KEYWORDS.contains(&s.as_str()) {
                    if matches!(s.as_str(), "for" | "while" | "if") {
                        return Err(self.err_here(format!(
                            "`{s}` expressions are only allowed as a `let` right-hand side \
                             or as a statement, not inside an operator"
                        )));
                    }
                    return Err(self.err_here(format!("unexpected keyword `{s}`")));
                }
                let name = self.name("a name")?;
                if self.peek() == &Tok::LBracket {
                    self.bump();
                    let idx = self.expr()?;
                    let hi = self.expect(&Tok::RBracket, "`]` after the load index")?;
                    return Ok(Expr {
                        kind: ExprKind::Load {
                            arr: name,
                            idx: Box::new(idx),
                        },
                        span: lo.to(hi),
                    });
                }
                if self.peek() == &Tok::LParen {
                    return self.call(name);
                }
                Ok(Expr {
                    span: name.span,
                    kind: ExprKind::Var(name),
                })
            }
            t => Err(self.err_here(format!("expected an expression, found {}", t.describe()))),
        }
    }

    fn call(&mut self, name: Ident) -> PResult<Expr> {
        let Some(b) = builtin(&name.name) else {
            return Err(Diagnostic::new(
                name.span,
                format!(
                    "unknown function `{}` (builtins: abs, fneg, fabs, i2f, f2i, min, max, \
                     fmin, fmax, mux, sigmoid, log, exp, sqrt, recip, tanh)",
                    name.name
                ),
            ));
        };
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let hi = self.expect(&Tok::RParen, "`)` closing the call")?;
        let span = name.span.to(hi);
        let want = match b {
            Builtin::Un(_) | Builtin::Nl(_) => 1,
            Builtin::Bin(_) => 2,
            Builtin::Mux => 3,
        };
        if args.len() != want {
            return Err(Diagnostic::new(
                span,
                format!(
                    "`{}` takes {want} argument{}, got {}",
                    name.name,
                    if want == 1 { "" } else { "s" },
                    args.len()
                ),
            ));
        }
        let mut it = args.into_iter();
        let kind = match b {
            Builtin::Un(op) => ExprKind::Un {
                op,
                a: Box::new(it.next().unwrap()),
            },
            Builtin::Nl(op) => ExprKind::Nl {
                op,
                a: Box::new(it.next().unwrap()),
            },
            Builtin::Bin(op) => ExprKind::Bin {
                op,
                a: Box::new(it.next().unwrap()),
                b: Box::new(it.next().unwrap()),
            },
            Builtin::Mux => ExprKind::Mux {
                p: Box::new(it.next().unwrap()),
                t: Box::new(it.next().unwrap()),
                f: Box::new(it.next().unwrap()),
            },
        };
        Ok(Expr { kind, span })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_program() {
        let src = "
program t;
param n: i32 = 4;
input a: i32[8] = [1, -2, 3];
state s: i32[8];
let x = a[0] & 255;
let y = for i in 0..n step 2 with acc = 0 {
  s[i] = x + i;
  yield acc + 1;
};
sink out = y;
";
        let p = parse(src).unwrap();
        assert_eq!(p.name.name, "t");
        assert_eq!(p.params.len(), 1);
        assert_eq!(p.arrays.len(), 2);
        assert!(p.arrays[1].state);
        assert_eq!(p.body.len(), 3);
    }

    #[test]
    fn precedence_is_c_like() {
        let p = parse("program t; let x = 1 + 2 * 3 & 4;").unwrap();
        // (1 + (2 * 3)) & 4
        let StmtKind::Let { value, .. } = &p.body[0].kind else {
            panic!()
        };
        let ExprKind::Bin { op, a, .. } = &value.kind else {
            panic!()
        };
        assert_eq!(*op, marionette_cdfg::op::BinOp::And);
        assert!(matches!(
            a.kind,
            ExprKind::Bin {
                op: marionette_cdfg::op::BinOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn folds_negative_literals() {
        let p = parse("program t; let x = -3; let y = -1.5; let z = 0xEDB88320;").unwrap();
        let vals: Vec<_> = p
            .body
            .iter()
            .map(|s| match &s.kind {
                StmtKind::Let { value, .. } => value.kind.clone(),
                _ => panic!(),
            })
            .collect();
        assert!(matches!(vals[0], ExprKind::Int(-3)));
        assert!(matches!(vals[1], ExprKind::Float(v) if v == -1.5));
        assert!(matches!(vals[2], ExprKind::Int(v) if v as u32 == 0xEDB8_8320));
    }

    #[test]
    fn rejects_block_exprs_inside_operators() {
        let e = parse("program t; let x = 1 + if 1 { yield 2; } else { yield 3; };").unwrap_err();
        assert!(e.message.contains("only allowed"), "{e}");
    }

    #[test]
    fn rejects_unknown_function_and_bad_arity() {
        assert!(parse("program t; let x = frob(1);")
            .unwrap_err()
            .message
            .contains("unknown function"));
        assert!(parse("program t; let x = min(1);")
            .unwrap_err()
            .message
            .contains("takes 2"));
    }

    #[test]
    fn rejects_decl_after_statement() {
        let e = parse("program t; let x = 1; input a: i32[4];").unwrap_err();
        assert!(e.message.contains("precede"), "{e}");
    }

    #[test]
    fn decimal_range_checks() {
        assert!(parse("program t; let x = 2147483648;").is_err());
        assert!(parse("program t; let x = -2147483648;").is_ok());
        assert!(parse("program t; let x = 0x1FFFFFFFF;").is_err());
    }
}
