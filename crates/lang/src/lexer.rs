//! Hand-written lexer for `.mar` source text.
//!
//! Produces a flat vector of spanned tokens. Notable choices:
//!
//! - float operators are spelled with a trailing dot (`+.`, `<=.`, ...),
//!   OCaml style, so operator selection is syntactic and never depends on
//!   inferred types;
//! - `0..8` lexes as `0` `..` `8`: a `.` directly followed by a second `.`
//!   never extends a number literal;
//! - float literals require a digit on both sides of the decimal point
//!   (`1.0`, not `1.`), plus optional exponent (`2.5e-3`), which is exactly
//!   the shape Rust's shortest round-trip formatter emits;
//! - `//` starts a line comment.

use crate::diag::{Diagnostic, Span};

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal; `hex` records the `0x` spelling (hex literals wrap
    /// as 32-bit patterns, decimal literals must fit `i32`).
    Int {
        /// Magnitude as written.
        value: u64,
        /// Written with a `0x` prefix.
        hex: bool,
    },
    /// Float literal.
    Float(f32),
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=`
    Assign,
    /// `..`
    DotDot,
    /// `:`
    Colon,
    /// An operator symbol (`+`, `+.`, `>>>`, `<=.`, ...), kept as text.
    Op(&'static str),
    /// End of input (always the final token).
    Eof,
}

impl Tok {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int { value, .. } => format!("integer `{value}`"),
            Tok::Float(v) => format!("float `{v:?}`"),
            Tok::Semi => "`;`".into(),
            Tok::Comma => "`,`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Assign => "`=`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Op(s) => format!("`{s}`"),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// Tokenizes `src`.
///
/// # Errors
/// Returns a located [`Diagnostic`] on the first unrecognizable character
/// or malformed literal.
pub fn lex(src: &str) -> Result<Vec<(Tok, Span)>, Diagnostic> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        // Whitespace and comments.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((Tok::Ident(src[start..i].to_string()), Span::new(start, i)));
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            if c == b'0' && matches!(b.get(i + 1), Some(b'x') | Some(b'X')) {
                i += 2;
                let ds = i;
                while i < b.len() && b[i].is_ascii_hexdigit() {
                    i += 1;
                }
                if i == ds {
                    return Err(Diagnostic::new(
                        Span::new(start, i),
                        "hex literal needs at least one digit",
                    ));
                }
                let value = u64::from_str_radix(&src[ds..i], 16).map_err(|_| {
                    Diagnostic::new(Span::new(start, i), "hex literal out of range")
                })?;
                out.push((Tok::Int { value, hex: true }, Span::new(start, i)));
                continue;
            }
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            let mut float = false;
            // A fractional part: `.` followed by a digit (so `0..8` stays
            // an integer plus a range token).
            if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                float = true;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            // An exponent.
            if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                let mut j = i + 1;
                if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    float = true;
                    i = j;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            let text = &src[start..i];
            if float {
                let v: f32 = text
                    .parse()
                    .map_err(|_| Diagnostic::new(Span::new(start, i), "malformed float literal"))?;
                if !v.is_finite() {
                    return Err(Diagnostic::new(
                        Span::new(start, i),
                        "float literal overflows f32",
                    ));
                }
                out.push((Tok::Float(v), Span::new(start, i)));
            } else {
                let value: u64 = text.parse().map_err(|_| {
                    Diagnostic::new(Span::new(start, i), "integer literal out of range")
                })?;
                out.push((Tok::Int { value, hex: false }, Span::new(start, i)));
            }
            continue;
        }
        // Punctuation and operators, longest match first.
        let rest = &src[i..];
        const TABLE: &[(&str, Option<&'static str>)] = &[
            (">>>", Some(">>>")),
            ("<=.", Some("<=.")),
            (">=.", Some(">=.")),
            ("<<", Some("<<")),
            (">>", Some(">>")),
            ("<=", Some("<=")),
            (">=", Some(">=")),
            ("==", Some("==")),
            ("!=", Some("!=")),
            ("+.", Some("+.")),
            ("-.", Some("-.")),
            ("*.", Some("*.")),
            ("/.", Some("/.")),
            ("<.", Some("<.")),
            (">.", Some(">.")),
            ("..", None),
            ("+", Some("+")),
            ("-", Some("-")),
            ("*", Some("*")),
            ("/", Some("/")),
            ("%", Some("%")),
            ("&", Some("&")),
            ("|", Some("|")),
            ("^", Some("^")),
            ("<", Some("<")),
            (">", Some(">")),
            ("~", Some("~")),
            ("!", Some("!")),
        ];
        let mut matched = false;
        for (pat, op) in TABLE {
            if rest.starts_with(pat) {
                i += pat.len();
                let t = match op {
                    Some(o) => Tok::Op(o),
                    None => Tok::DotDot,
                };
                out.push((t, Span::new(start, i)));
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        let simple = match c {
            b';' => Some(Tok::Semi),
            b',' => Some(Tok::Comma),
            b'(' => Some(Tok::LParen),
            b')' => Some(Tok::RParen),
            b'{' => Some(Tok::LBrace),
            b'}' => Some(Tok::RBrace),
            b'[' => Some(Tok::LBracket),
            b']' => Some(Tok::RBracket),
            b'=' => Some(Tok::Assign),
            b':' => Some(Tok::Colon),
            _ => None,
        };
        match simple {
            Some(t) => {
                i += 1;
                out.push((t, Span::new(start, i)));
            }
            None => {
                let ch = src[i..].chars().next().unwrap_or('?');
                return Err(Diagnostic::new(
                    Span::new(i, i + ch.len_utf8()),
                    format!("unexpected character `{ch}`"),
                ));
            }
        }
    }
    out.push((Tok::Eof, Span::new(src.len(), src.len())));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn ranges_do_not_eat_floats() {
        assert_eq!(
            kinds("0..8"),
            vec![
                Tok::Int {
                    value: 0,
                    hex: false
                },
                Tok::DotDot,
                Tok::Int {
                    value: 8,
                    hex: false
                },
                Tok::Eof
            ]
        );
        assert_eq!(kinds("1.5e-3"), vec![Tok::Float(1.5e-3), Tok::Eof]);
    }

    #[test]
    fn float_ops_lex_greedily() {
        assert_eq!(
            kinds("a <=. b +. 1.0"),
            vec![
                Tok::Ident("a".into()),
                Tok::Op("<=."),
                Tok::Ident("b".into()),
                Tok::Op("+."),
                Tok::Float(1.0),
                Tok::Eof
            ]
        );
        assert_eq!(kinds("x >>> 1")[1], Tok::Op(">>>"));
    }

    #[test]
    fn hex_and_comments() {
        assert_eq!(
            kinds("0xEDB88320 // trailing\n"),
            vec![
                Tok::Int {
                    value: 0xEDB8_8320,
                    hex: true
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("let µ = 3;").is_err());
        assert!(lex("0x").is_err());
    }
}
