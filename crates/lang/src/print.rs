//! Canonical pretty-printer for `.mar` programs.
//!
//! [`print()`] emits the canonical textual form: two-space indentation,
//! minimal parentheses (inserted exactly where operator precedence
//! requires them), `with (...)` parentheses only for multiple carries,
//! and floats in Rust's shortest round-trip notation. Re-parsing the
//! output and printing again yields the same text — the parse→print→parse
//! fixed point the property tests pin.

use crate::ast::{
    bin_call_name, bin_prec, bin_symbol, nl_call_name, un_call_name, Expr, ExprKind, Lit, LitKind,
    Program, Stmt, StmtKind,
};
use marionette_cdfg::op::UnOp;
use std::fmt::Write as _;

/// Precedence of a unary application (atoms are effectively 11 and never
/// parenthesized).
const UNARY: u8 = 10;

/// Renders the canonical source text of `p`.
pub fn print(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {};", p.name.name);
    if !p.params.is_empty() || !p.arrays.is_empty() {
        out.push('\n');
    }
    for d in &p.params {
        let _ = writeln!(
            out,
            "param {}: {} = {};",
            d.name.name,
            d.ty.kw(),
            lit(&d.default)
        );
    }
    for a in &p.arrays {
        let kind = if a.state { "state" } else { "input" };
        let mut line = format!("{kind} {}: {}[{}]", a.name.name, a.ty.kw(), a.len);
        if !a.init.is_empty() {
            let vals: Vec<String> = a.init.iter().map(lit).collect();
            let _ = write!(line, " = [{}]", vals.join(", "));
        }
        let _ = writeln!(out, "{line};");
    }
    if !p.body.is_empty() {
        out.push('\n');
    }
    for s in &p.body {
        stmt(&mut out, s, 0);
    }
    out
}

fn lit(l: &Lit) -> String {
    match l.kind {
        LitKind::Int(v) => v.to_string(),
        LitKind::Float(v) => format!("{v:?}"),
    }
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn stmt(out: &mut String, s: &Stmt, depth: usize) {
    pad(out, depth);
    match &s.kind {
        StmtKind::Let { names, value } => {
            if names.len() == 1 {
                let _ = write!(out, "let {} = ", names[0].name);
            } else {
                let ns: Vec<&str> = names.iter().map(|n| n.name.as_str()).collect();
                let _ = write!(out, "let ({}) = ", ns.join(", "));
            }
            expr(out, value, 0, depth);
            out.push_str(";\n");
        }
        StmtKind::Store { arr, idx, value } => {
            let _ = write!(out, "{}[", arr.name);
            expr(out, idx, 0, depth);
            out.push_str("] = ");
            expr(out, value, 0, depth);
            out.push_str(";\n");
        }
        StmtKind::Sink { name, value } => {
            let _ = write!(out, "sink {} = ", name.name);
            expr(out, value, 0, depth);
            out.push_str(";\n");
        }
        StmtKind::Expr(e) => {
            expr(out, e, 0, depth);
            out.push_str(";\n");
        }
        StmtKind::Yield(vals) => {
            if vals.len() == 1 {
                out.push_str("yield ");
                expr(out, &vals[0], 0, depth);
            } else {
                out.push_str("yield (");
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr(out, v, 0, depth);
                }
                out.push(')');
            }
            out.push_str(";\n");
        }
    }
}

fn carries_block(out: &mut String, carries: &[crate::ast::Carry], depth: usize) {
    if carries.is_empty() {
        return;
    }
    out.push_str(" with ");
    if carries.len() > 1 {
        out.push('(');
    }
    for (i, c) in carries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} = ", c.name.name);
        expr(out, &c.init, 0, depth);
    }
    if carries.len() > 1 {
        out.push(')');
    }
}

fn body_block(out: &mut String, body: &[Stmt], depth: usize) {
    out.push_str(" {\n");
    for s in body {
        stmt(out, s, depth + 1);
    }
    pad(out, depth);
    out.push('}');
}

/// Prints `e`; wraps in parentheses when its binding power is below
/// `min_prec` (the context's requirement).
fn expr(out: &mut String, e: &Expr, min_prec: u8, depth: usize) {
    match &e.kind {
        ExprKind::Int(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::Float(v) => {
            let _ = write!(out, "{v:?}");
        }
        ExprKind::Var(id) => out.push_str(&id.name),
        ExprKind::Load { arr, idx } => {
            let _ = write!(out, "{}[", arr.name);
            expr(out, idx, 0, depth);
            out.push(']');
        }
        ExprKind::Bin { op, a, b } => match bin_symbol(*op) {
            Some(sym) => {
                let prec = bin_prec(*op);
                let parens = prec < min_prec;
                if parens {
                    out.push('(');
                }
                expr(out, a, prec, depth);
                let _ = write!(out, " {sym} ");
                // Left-associative: the right operand needs one more.
                expr(out, b, prec + 1, depth);
                if parens {
                    out.push(')');
                }
            }
            None => {
                let _ = write!(out, "{}(", bin_call_name(*op).expect("call-form op"));
                expr(out, a, 0, depth);
                out.push_str(", ");
                expr(out, b, 0, depth);
                out.push(')');
            }
        },
        ExprKind::Un { op, a } => match un_call_name(*op) {
            Some(name) => {
                let _ = write!(out, "{name}(");
                expr(out, a, 0, depth);
                out.push(')');
            }
            None => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "~",
                    UnOp::LNot => "!",
                    _ => unreachable!("call-form unary"),
                };
                let parens = UNARY < min_prec;
                if parens {
                    out.push('(');
                }
                out.push_str(sym);
                expr(out, a, UNARY, depth);
                if parens {
                    out.push(')');
                }
            }
        },
        ExprKind::Nl { op, a } => {
            let _ = write!(out, "{}(", nl_call_name(*op));
            expr(out, a, 0, depth);
            out.push(')');
        }
        ExprKind::Mux { p, t, f } => {
            out.push_str("mux(");
            expr(out, p, 0, depth);
            out.push_str(", ");
            expr(out, t, 0, depth);
            out.push_str(", ");
            expr(out, f, 0, depth);
            out.push(')');
        }
        ExprKind::For {
            var,
            lo,
            hi,
            step,
            carries,
            body,
        } => {
            let _ = write!(out, "for {} in ", var.name);
            expr(out, lo, 0, depth);
            out.push_str("..");
            expr(out, hi, 0, depth);
            if *step != 1 {
                let _ = write!(out, " step {step}");
            }
            carries_block(out, carries, depth);
            body_block(out, body, depth);
        }
        ExprKind::While {
            cond,
            carries,
            body,
        } => {
            out.push_str("while ");
            expr(out, cond, 0, depth);
            carries_block(out, carries, depth);
            body_block(out, body, depth);
        }
        ExprKind::If {
            cond,
            then_b,
            else_b,
        } => {
            out.push_str("if ");
            expr(out, cond, 0, depth);
            body_block(out, then_b, depth);
            out.push_str(" else");
            body_block(out, else_b, depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn fixed_point(src: &str) {
        let a1 = parse(src).unwrap();
        let t1 = print(&a1);
        let a2 = parse(&t1).unwrap_or_else(|e| panic!("reparse failed: {e}\n{t1}"));
        let t2 = print(&a2);
        assert_eq!(t1, t2, "printer not a fixed point for:\n{src}");
    }

    #[test]
    fn canonical_form_is_stable() {
        fixed_point(
            "program t;\nparam n: i32 = 4;\ninput a: f32[4] = [1.5, -2.0];\nstate s: i32[8];\n\
             let x = ((1 + 2)) * 3 - -4;\nlet y = 1 + (2 & 3);\n\
             let (p, q) = if x != 0 { yield (x, 1); } else { yield (0, x); };\n\
             let z = while p > 0 with (p = p, acc = 0.0) { yield (p - 1, acc +. 1.5e-3); };\n\
             for i in 0..n step 2 { s[i & 7] = x >>> 1; };\nsink r = q;",
        );
    }

    #[test]
    fn parens_only_where_needed() {
        let p = parse("program t; let x = (1 + 2) * 3; let y = 1 - (2 - 3);").unwrap();
        let t = print(&p);
        assert!(t.contains("let x = (1 + 2) * 3;"), "{t}");
        assert!(t.contains("let y = 1 - (2 - 3);"), "{t}");
    }

    #[test]
    fn left_assoc_reprints_without_parens() {
        let p = parse("program t; let x = 1 - 2 - 3;").unwrap();
        assert!(print(&p).contains("let x = 1 - 2 - 3;"));
    }
}
