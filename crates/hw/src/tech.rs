//! 28 nm technology constants, calibrated against the paper's synthesis
//! results (Table 4: 0.151 mm² / 152 mW total at 500 MHz).

/// Area of one ordinary PE (mm²): Table 4 reports 12 ordinary PEs at
/// 0.059 mm².
pub const PE_ORDINARY_MM2: f64 = 0.059 / 12.0;
/// Area of one nonlinear-fitting PE (mm²): 4 PEs at 0.032 mm².
pub const PE_NONLINEAR_MM2: f64 = 0.032 / 4.0;
/// Power of one ordinary PE (mW).
pub const PE_ORDINARY_MW: f64 = 48.99 / 12.0;
/// Power of one nonlinear PE (mW).
pub const PE_NONLINEAR_MW: f64 = 22.02 / 4.0;

/// Area of one 32-bit mesh router/link slice (mm²): the 4×4 data mesh
/// (48 directed links) totals 0.0063 mm².
pub const MESH_LINK_MM2: f64 = 0.0063 / 48.0;
/// Data network power (mW) per link slice.
pub const MESH_LINK_MW: f64 = 40.80 / 48.0;

/// Area of one control-network 2×2 switch equivalent (mm²): the CS-Benes
/// instance (544 switch equivalents, 16-bit control words) totals
/// 0.0022 mm².
pub const CTRL_SWITCH_MM2: f64 = 0.0022 / 544.0;
/// Control network power per switch equivalent (mW).
pub const CTRL_SWITCH_MW: f64 = 13.89 / 544.0;

/// Data scratchpad area per KiB (mm²): 16 KiB at 0.033 mm².
pub const SPM_MM2_PER_KIB: f64 = 0.033 / 16.0;
/// Data scratchpad power per KiB (mW).
pub const SPM_MW_PER_KIB: f64 = 5.07 / 16.0;

/// Memory access interconnect (mm²) for a 4×4 fabric.
pub const MEM_XBAR_MM2: f64 = 0.003;
/// Memory access interconnect power (mW).
pub const MEM_XBAR_MW: f64 = 14.24;

/// Control FIFOs (mm²).
pub const CTRL_FIFO_MM2: f64 = 0.001;
/// Control FIFO power (mW).
pub const CTRL_FIFO_MW: f64 = 0.56;

/// Controller + 2 KiB instruction scratchpad (mm²).
pub const CONTROLLER_MM2: f64 = 0.013;
/// Controller power (mW).
pub const CONTROLLER_MW: f64 = 6.52;

/// Propagation delay of one network switch stage (ns) at 28 nm.
pub const SWITCH_DELAY_NS: f64 = 0.09;
/// Base wire delay per stage (ns); grows with fabric span.
pub const WIRE_DELAY_BASE_NS: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reconstructs_paper_totals() {
        let pe = PE_ORDINARY_MM2 * 12.0 + PE_NONLINEAR_MM2 * 4.0;
        assert!((pe - 0.091).abs() < 1e-9);
        let spm = SPM_MM2_PER_KIB * 16.0;
        assert!((spm - 0.033).abs() < 1e-9);
    }
}
