//! Table 6: interconnect area against state-of-the-art architectures,
//! normalized to 28 nm / 32-bit / 4×4 PE arrays.
//!
//! The comparison rows quote the paper's normalized measurements for the
//! other architectures (the paper itself normalized published numbers —
//! we cannot re-synthesize closed-source RTL); the Marionette row is
//! computed bottom-up from this repository's own component models, which
//! is the point of the table: a dedicated peer-to-peer control network
//! removes control transport from the data fabric at ~1% of fabric area.

use crate::breakdown::{area_power_breakdown, FabricParams};

/// One architecture's network-area row.
#[derive(Clone, Debug)]
pub struct NetworkRow {
    /// Architecture name.
    pub architecture: &'static str,
    /// PE (compute) area, mm².
    pub pe_area_mm2: f64,
    /// Network area (data + memory + control), mm².
    pub network_area_mm2: f64,
    /// Whether the row was computed from this repo's models (`true`) or
    /// normalized from published data as in the paper (`false`).
    pub computed: bool,
}

impl NetworkRow {
    /// Computing-fabric area: PE + network.
    pub fn fabric_area(&self) -> f64 {
        self.pe_area_mm2 + self.network_area_mm2
    }

    /// Network share of the computing fabric.
    pub fn network_ratio(&self) -> f64 {
        self.network_area_mm2 / self.fabric_area()
    }
}

/// Produces the Table 6 comparison.
pub fn network_comparison() -> Vec<NetworkRow> {
    let rows = area_power_breakdown(FabricParams::paper());
    let pe: f64 = rows
        .iter()
        .filter(|r| r.category == "PE")
        .map(|r| r.area_mm2)
        .sum();
    // The network column counts every interconnect: data mesh, memory
    // access interconnect, control FIFOs and the control network.
    let net: f64 = rows
        .iter()
        .filter(|r| {
            r.category == "Network"
                || r.component == "Memory Access Interconnect"
                || r.component == "Control FIFOs"
        })
        .map(|r| r.area_mm2)
        .sum();
    vec![
        NetworkRow {
            architecture: "Softbrain",
            pe_area_mm2: 0.0041,
            network_area_mm2: 0.0130,
            computed: false,
        },
        NetworkRow {
            architecture: "REVEL",
            pe_area_mm2: 0.022,
            network_area_mm2: 0.028,
            computed: false,
        },
        NetworkRow {
            architecture: "DySER",
            pe_area_mm2: 0.058,
            network_area_mm2: 0.052,
            computed: false,
        },
        NetworkRow {
            architecture: "Plasticine",
            pe_area_mm2: 0.161,
            network_area_mm2: 0.294,
            computed: false,
        },
        NetworkRow {
            architecture: "SPU",
            pe_area_mm2: 0.050,
            network_area_mm2: 0.045,
            computed: false,
        },
        NetworkRow {
            architecture: "Marionette",
            pe_area_mm2: pe,
            network_area_mm2: net,
            computed: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marionette_has_lowest_network_ratio() {
        let rows = network_comparison();
        let m = rows
            .iter()
            .find(|r| r.architecture == "Marionette")
            .unwrap();
        for r in &rows {
            if r.architecture != "Marionette" {
                assert!(
                    m.network_ratio() < r.network_ratio(),
                    "{} ratio {:.1}% <= marionette {:.1}%",
                    r.architecture,
                    r.network_ratio() * 100.0,
                    m.network_ratio() * 100.0
                );
            }
        }
        // Paper: 11.5%; allow model slack.
        assert!(
            (m.network_ratio() - 0.115).abs() < 0.03,
            "marionette ratio {:.3}",
            m.network_ratio()
        );
    }

    #[test]
    fn published_ratios_match_paper() {
        let rows = network_comparison();
        let sb = rows.iter().find(|r| r.architecture == "Softbrain").unwrap();
        assert!((sb.network_ratio() - 0.758).abs() < 0.01);
        let pl = rows
            .iter()
            .find(|r| r.architecture == "Plasticine")
            .unwrap();
        assert!((pl.network_ratio() - 0.646).abs() < 0.01);
    }
}
