//! Fig 13: control network delay as a function of stage count and clock
//! frequency — the scalability study of §7.2.
//!
//! The combinational path through the CS-Benes network is
//! `stages × (switch delay + wire delay)`, with wire delay growing with
//! the fabric span; the *network delay in cycles* is the path delay
//! divided by the clock period, rounded up. Higher frequencies and larger
//! fabrics increase cycle latency — but slowly, which is the paper's
//! argument that the control network scales.

use crate::tech;

/// One measurement point of the study.
#[derive(Clone, Copy, Debug)]
pub struct DelayPoint {
    /// Benes stage count (`2·log2(N) − 1`).
    pub stages: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: u32,
    /// Combinational network path delay in ns.
    pub path_delay_ns: f64,
    /// Critical-path budget (clock period) in ns.
    pub period_ns: f64,
    /// Network delay in cycles at this frequency.
    pub cycles: u32,
}

/// Path delay model: switch + wire per stage, wires lengthen with the
/// network radix (stage count is `2·log2(N) − 1`, so `N` is recovered
/// from it).
pub fn path_delay_ns(stages: usize) -> f64 {
    let log2n = stages.div_ceil(2);
    let wire_scale = 1.0 + log2n as f64 / 8.0;
    stages as f64 * (tech::SWITCH_DELAY_NS + tech::WIRE_DELAY_BASE_NS * wire_scale)
}

/// Runs the sweep over stage counts and frequencies.
pub fn delay_study(stage_counts: &[usize], freqs_mhz: &[u32]) -> Vec<DelayPoint> {
    let mut out = Vec::new();
    for &stages in stage_counts {
        let d = path_delay_ns(stages);
        for &f in freqs_mhz {
            let period = 1000.0 / f64::from(f);
            let cycles = (d / period).ceil().max(1.0) as u32;
            out.push(DelayPoint {
                stages,
                freq_mhz: f,
                path_delay_ns: d,
                period_ns: period,
                cycles,
            });
        }
    }
    out
}

/// The paper's sweep: Benes networks from 16 to 256 lines at four clock
/// targets.
pub fn paper_sweep() -> Vec<DelayPoint> {
    delay_study(&[7, 9, 11, 13, 15], &[250, 500, 750, 1000])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_operating_point_is_single_cycle() {
        // 64-line network (11 stages) at 500 MHz: one cycle (§4.1).
        let pts = delay_study(&[11], &[500]);
        assert_eq!(pts[0].cycles, 1, "path {} ns", pts[0].path_delay_ns);
    }

    #[test]
    fn latency_grows_with_frequency_and_size() {
        let pts = paper_sweep();
        let get = |stages: usize, f: u32| {
            pts.iter()
                .find(|p| p.stages == stages && p.freq_mhz == f)
                .unwrap()
                .cycles
        };
        assert!(get(15, 1000) >= get(7, 1000));
        assert!(get(11, 1000) >= get(11, 250));
        // Low growth: even the largest point stays within a few cycles.
        assert!(get(15, 1000) <= 4);
    }

    #[test]
    fn path_delay_monotone_in_stages() {
        assert!(path_delay_ns(11) > path_delay_ns(7));
    }
}
