//! # marionette-hw
//!
//! Analytical 28 nm hardware models — the substitute for the paper's
//! Synopsys DC synthesis flow (§5, Table 4, Table 6, Fig 13).
//!
//! Everything here is a structural function of component counts (PEs,
//! network switches, SRAM bytes) and per-unit constants calibrated
//! against the numbers the paper reports at 28 nm / 500 MHz. The models
//! reproduce the three synthesis-derived artifacts:
//!
//! - [`breakdown::area_power_breakdown`] — Table 4 (area/power by
//!   component);
//! - [`netcmp::network_comparison`] — Table 6 (network area vs
//!   state-of-the-art fabrics, normalized to 28 nm / 32-bit / 4×4);
//! - [`netdelay::delay_study`] — Fig 13 (control network delay vs stage
//!   count vs clock frequency).

#![warn(missing_docs)]

pub mod breakdown;
pub mod netcmp;
pub mod netdelay;
pub mod tech;

pub use breakdown::{area_power_breakdown, BreakdownRow};
pub use netcmp::{network_comparison, NetworkRow};
pub use netdelay::{delay_study, DelayPoint};
