//! Table 4: area and power breakdown of the Marionette prototype
//! (28 nm, 500 MHz), reconstructed bottom-up from component counts.

use crate::tech;
use marionette_net::{CsBenesNetwork, Mesh};

/// One row of the breakdown.
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Component category ("PE", "Network", "Memory", "Control").
    pub category: &'static str,
    /// Component name.
    pub component: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Fabric parameters for the breakdown.
#[derive(Clone, Copy, Debug)]
pub struct FabricParams {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// PEs with nonlinear-fitting units.
    pub nonlinear_pes: usize,
    /// Data scratchpad KiB.
    pub spm_kib: usize,
    /// Instruction scratchpad KiB.
    pub ispm_kib: usize,
}

impl FabricParams {
    /// The paper's prototype: 4×4, 4 nonlinear PEs, 16 KiB SPM, 2 KiB
    /// instruction scratchpad.
    pub fn paper() -> Self {
        FabricParams {
            rows: 4,
            cols: 4,
            nonlinear_pes: 4,
            spm_kib: 16,
            ispm_kib: 2,
        }
    }
}

/// Computes the Table 4 breakdown for a fabric.
pub fn area_power_breakdown(p: FabricParams) -> Vec<BreakdownRow> {
    let npes = p.rows * p.cols;
    let ordinary = npes - p.nonlinear_pes;
    let mesh = Mesh::new(p.rows, p.cols);
    let ctrl_net = CsBenesNetwork::new(npes, (4 * npes).next_power_of_two());
    let mut rows = vec![
        BreakdownRow {
            category: "PE",
            component: format!("PEs ({ordinary} ordinary)"),
            area_mm2: tech::PE_ORDINARY_MM2 * ordinary as f64,
            power_mw: tech::PE_ORDINARY_MW * ordinary as f64,
        },
        BreakdownRow {
            category: "PE",
            component: format!("PEs ({} with nonlinear fitting)", p.nonlinear_pes),
            area_mm2: tech::PE_NONLINEAR_MM2 * p.nonlinear_pes as f64,
            power_mw: tech::PE_NONLINEAR_MW * p.nonlinear_pes as f64,
        },
        BreakdownRow {
            category: "Network",
            component: "Data Network".into(),
            area_mm2: tech::MESH_LINK_MM2 * mesh.link_count() as f64,
            power_mw: tech::MESH_LINK_MW * mesh.link_count() as f64,
        },
        BreakdownRow {
            category: "Network",
            component: "Control Network".into(),
            area_mm2: tech::CTRL_SWITCH_MM2 * ctrl_net.switch_count() as f64,
            power_mw: tech::CTRL_SWITCH_MW * ctrl_net.switch_count() as f64,
        },
        BreakdownRow {
            category: "Memory",
            component: format!("Data Scratchpad ({} KiB)", p.spm_kib),
            area_mm2: tech::SPM_MM2_PER_KIB * p.spm_kib as f64,
            power_mw: tech::SPM_MW_PER_KIB * p.spm_kib as f64,
        },
        BreakdownRow {
            category: "Memory",
            component: "Memory Access Interconnect".into(),
            area_mm2: tech::MEM_XBAR_MM2 * (npes as f64 / 16.0),
            power_mw: tech::MEM_XBAR_MW * (npes as f64 / 16.0),
        },
        BreakdownRow {
            category: "Memory",
            component: "Control FIFOs".into(),
            area_mm2: tech::CTRL_FIFO_MM2 * (npes as f64 / 16.0),
            power_mw: tech::CTRL_FIFO_MW * (npes as f64 / 16.0),
        },
        BreakdownRow {
            category: "Control",
            component: format!("Controller + Instruction Scratchpad ({} KiB)", p.ispm_kib),
            area_mm2: tech::CONTROLLER_MM2 * (p.ispm_kib as f64 / 2.0),
            power_mw: tech::CONTROLLER_MW * (p.ispm_kib as f64 / 2.0),
        },
    ];
    let total_area: f64 = rows.iter().map(|r| r.area_mm2).sum();
    let total_power: f64 = rows.iter().map(|r| r.power_mw).sum();
    rows.push(BreakdownRow {
        category: "Total",
        component: "Marionette".into(),
        area_mm2: total_area,
        power_mw: total_power,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fabric_matches_published_totals() {
        let rows = area_power_breakdown(FabricParams::paper());
        let total = rows.last().unwrap();
        // Paper: 0.151 mm², 152.09 mW. Allow 3% model error.
        assert!(
            (total.area_mm2 - 0.151).abs() / 0.151 < 0.03,
            "area {} mm²",
            total.area_mm2
        );
        assert!(
            (total.power_mw - 152.09).abs() / 152.09 < 0.03,
            "power {} mW",
            total.power_mw
        );
    }

    #[test]
    fn control_network_is_small_fraction() {
        let rows = area_power_breakdown(FabricParams::paper());
        let ctrl = rows
            .iter()
            .find(|r| r.component == "Control Network")
            .unwrap();
        let total = rows.last().unwrap();
        assert!(ctrl.area_mm2 / total.area_mm2 < 0.02, "control net is tiny");
    }

    #[test]
    fn scales_with_fabric() {
        let small = area_power_breakdown(FabricParams {
            rows: 2,
            cols: 2,
            nonlinear_pes: 1,
            spm_kib: 4,
            ispm_kib: 1,
        });
        let big = area_power_breakdown(FabricParams::paper());
        assert!(small.last().unwrap().area_mm2 < big.last().unwrap().area_mm2);
    }
}
