//! The compile driver: CDFG → placed, routed, configured
//! [`MachineProgram`] plus a [`CompileReport`].
//!
//! Two pipelines share the configuration-generation tail:
//!
//! - **legacy** ([`SearchBudget::Off`]): one-shot greedy placement +
//!   XY routing — bit-compatible with the seed mappings;
//! - **explored** (any other budget): the annealing mapping explorer of
//!   [`crate::explore`] plus the congestion-aware rip-up router, scored
//!   by a [`CostModel`] (derive one from the architecture's timing model
//!   with [`compile_with_timing`]).

use crate::cost::CostModel;
use crate::explore::{explore_with_faults, ExploreResult, SearchReport};
use crate::options::{CompileOptions, SearchBudget};
use crate::place::{place_with_faults, PlaceError, PlacementResult};
use crate::route::{route_congestion_aware_with_faults, route_with_faults, RoutingResult};
use marionette_cdfg::graph::{BlockKind, Cdfg, PortSrc};
use marionette_isa::{
    ArrayInfo, BbConfig, CtrlMode, MachineProgram, NodeConfig, OperandSrc, ParamInfo, PeConfig,
};
use marionette_net::Mesh;
use marionette_sim::{FaultSet, TimingModel};
use std::collections::BTreeMap;

/// Rip-up passes of the congestion-aware router on explored mappings.
const REROUTE_PASSES: usize = 2;

/// Compilation statistics, consumed by the evaluation harness.
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    /// Per-group `(loop, depth, pes, ii, waste, innermost)` decisions.
    pub groups: Vec<crate::place::GroupPlacement>,
    /// Data-plane operators placed.
    pub data_ops: usize,
    /// Control-plane operators placed.
    pub ctrl_ops: usize,
    /// Memory operators placed.
    pub mem_ops: usize,
    /// Total routes, and how many are control-class.
    pub routes: usize,
    /// Control-class route count.
    pub ctrl_routes: usize,
    /// Whether the CS-Benes control network fits statically.
    pub ctrl_net_fits: bool,
    /// Total control fan-out.
    pub ctrl_fanout: usize,
    /// Mean mesh hop count over data routes.
    pub mean_data_hops: f64,
    /// Mapping-search summary (`None` on the legacy one-shot pipeline).
    pub search: Option<SearchReport>,
}

/// Compiles a CDFG for the given options.
///
/// With a nonzero [`CompileOptions::search`] budget the mapping explorer
/// runs under the transport-neutral [`CostModel::neutral`] weights; use
/// [`compile_with_timing`] to score with an architecture's actual timing
/// model.
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on the fabric.
pub fn compile(
    g: &Cdfg,
    opts: &CompileOptions,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    compile_with_faults(g, opts, &FaultSet::none())
}

/// Fault-aware variant of [`compile`]: placement avoids dead PEs,
/// routing detours around dead links (failing with
/// [`PlaceError::Unroutable`] when no dimension order works), and the
/// explorer's cost penalizes flaky links. An empty fault set is
/// bit-identical to [`compile`].
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on, or be routed
/// across, the live fabric.
pub fn compile_with_faults(
    g: &Cdfg,
    opts: &CompileOptions,
    faults: &FaultSet,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    match opts.search {
        SearchBudget::Off => compile_greedy(g, opts, faults),
        _ => compile_with_cost(g, opts, &CostModel::neutral(), faults),
    }
}

/// Compiles with mapping-search weights derived from `tm` (falls back to
/// the legacy pipeline when the search budget is off).
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on the fabric.
pub fn compile_with_timing(
    g: &Cdfg,
    opts: &CompileOptions,
    tm: &TimingModel,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    compile_with_timing_and_faults(g, opts, tm, &FaultSet::none())
}

/// Fault-aware variant of [`compile_with_timing`] (see
/// [`compile_with_faults`] for the fault semantics). An empty fault set
/// is bit-identical to [`compile_with_timing`].
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on, or be routed
/// across, the live fabric.
pub fn compile_with_timing_and_faults(
    g: &Cdfg,
    opts: &CompileOptions,
    tm: &TimingModel,
    faults: &FaultSet,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    match opts.search {
        SearchBudget::Off => compile_greedy(g, opts, faults),
        _ => compile_with_cost(g, opts, &CostModel::from_timing(tm), faults),
    }
}

/// Region-scoped variant of [`compile_with_timing`]: the compile runs on
/// the *full* host fabric of `map` but is confined to partition `idx` by
/// rendering the region's complement as a [`FaultSet`] avoid-mask
/// ([`crate::partition::PartitionMap::exclusion_mask`]) — dead PEs drop
/// out of the greedy placer's and the annealing explorer's legality
/// caps, and the rip-up router refuses any path over a link crossing the
/// region boundary. Every placement and every route-path tile of the
/// result lies inside the region.
///
/// This is the *fabric-view* compile; the tenancy pipeline's primary
/// path instead compiles on the partition's own dimensions
/// ([`crate::partition::Partition::dims`]) so a tenant is bit-identical
/// to a solo run on an equal-sized fabric. Use this entry point when a
/// mapping must coexist with un-relocatable neighbours in one
/// coordinate space.
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit inside, or be
/// routed within, the region.
///
/// # Panics
/// Panics if `idx` is out of range for `map` or `opts` disagrees with
/// the map's host fabric.
pub fn compile_with_timing_and_region(
    g: &Cdfg,
    opts: &CompileOptions,
    tm: &TimingModel,
    map: &crate::partition::PartitionMap,
    idx: usize,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    assert_eq!(
        opts.dims(),
        map.fabric(),
        "compile options must target the partition map's host fabric"
    );
    compile_with_timing_and_faults(g, opts, tm, &map.exclusion_mask(idx))
}

/// The legacy one-shot pipeline (greedy place + XY route), bit-compatible
/// with the seed mappings.
fn compile_greedy(
    g: &Cdfg,
    opts: &CompileOptions,
    faults: &FaultSet,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    let mesh = Mesh::new(opts.rows, opts.cols);
    let pl: PlacementResult = place_with_faults(g, opts, faults)?;
    let rr = route_with_faults(g, &pl.places, &mesh, faults)?;
    Ok(build_program(g, opts, pl, rr, None))
}

/// The explored pipeline under an explicit cost model.
fn compile_with_cost(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
    faults: &FaultSet,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    let ex = explore_with_faults(g, opts, cm, faults)?.expect("nonzero search budget");
    finalize_explored_with_faults(g, opts, cm, ex, faults)
}

/// Routes an explorer-chosen placement with the congestion-aware router
/// and generates the configuration. Exposed so the runner can fan the
/// annealing chains out across threads and finalize the winner itself.
pub fn finalize_explored(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
    ex: ExploreResult,
) -> (MachineProgram, CompileReport) {
    finalize_explored_with_faults(g, opts, cm, ex, &FaultSet::none())
        .expect("routing is infallible without faults")
}

/// Fault-aware variant of [`finalize_explored`]: the rip-up router
/// refuses dead links and penalizes flaky ones. An empty fault set is
/// bit-identical to [`finalize_explored`].
///
/// # Errors
/// Returns [`PlaceError::Unroutable`] when some placed edge has no
/// fault-free dimension-ordered route.
pub fn finalize_explored_with_faults(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
    ex: ExploreResult,
    faults: &FaultSet,
) -> Result<(MachineProgram, CompileReport), PlaceError> {
    let mesh = Mesh::new(opts.rows, opts.cols);
    let (rr, moved) = route_congestion_aware_with_faults(
        g,
        &ex.placement.places,
        &mesh,
        cm,
        REROUTE_PASSES,
        faults,
    )?;
    let mut sr = ex.report;
    sr.rerouted = moved;
    Ok(build_program(g, opts, ex.placement, rr, Some(sr)))
}

/// Configuration generation: the shared tail of both pipelines.
fn build_program(
    g: &Cdfg,
    opts: &CompileOptions,
    pl: PlacementResult,
    rr: RoutingResult,
    search: Option<SearchReport>,
) -> (MachineProgram, CompileReport) {
    // Node configurations with operand selectors.
    let mut nodes = Vec::with_capacity(g.nodes.len());
    for (i, n) in g.iter_nodes() {
        let srcs: Vec<OperandSrc> = n
            .inputs
            .iter()
            .enumerate()
            .map(|(port, s)| match s {
                PortSrc::Node(_) => OperandSrc::Route(rr.port_route[&(i.0, port as u8)]),
                PortSrc::Imm(v) => OperandSrc::Imm(*v),
                PortSrc::Param(p) => OperandSrc::Param(p.0 as u16),
                PortSrc::None => OperandSrc::None,
            })
            .collect();
        nodes.push(NodeConfig {
            op: n.op,
            srcs,
            place: pl.places[i.0 as usize],
            bb: n.bb.0 as u16,
            group: pl.node_group[i.0 as usize],
            label: n.label.clone(),
        });
    }

    // Per-PE instruction buffers: configs keyed by basic block.
    let npes = opts.pe_count();
    let mut per_pe: Vec<BTreeMap<u16, Vec<u32>>> = vec![BTreeMap::new(); npes];
    for (i, nc) in nodes.iter().enumerate() {
        if let marionette_isa::Placement::Pe { pe } = nc.place {
            per_pe[pe as usize].entry(nc.bb).or_default().push(i as u32);
        }
    }
    let mode_of = |bb: u16| -> CtrlMode {
        match g.block(marionette_cdfg::BlockId(u32::from(bb))).kind {
            BlockKind::LoopHeader => CtrlMode::Loop,
            BlockKind::BranchThen | BlockKind::BranchElse => CtrlMode::Branch,
            _ => CtrlMode::Dfg,
        }
    };
    let pes: Vec<PeConfig> = per_pe
        .into_iter()
        .map(|cfgs| PeConfig {
            configs: cfgs
                .into_iter()
                .map(|(bb, slots)| BbConfig {
                    bb,
                    mode: mode_of(bb),
                    slots,
                })
                .collect(),
        })
        .collect();

    let program = MachineProgram {
        name: g.name.clone(),
        rows: opts.rows as u8,
        cols: opts.cols as u8,
        nodes,
        routes: rr.routes.clone(),
        pes,
        arrays: g
            .arrays
            .iter()
            .map(|a| ArrayInfo {
                name: a.name.clone(),
                len: a.len as u32,
                elem: a.elem,
                is_output: a.is_output,
            })
            .collect(),
        params: g
            .params
            .iter()
            .map(|p| ParamInfo {
                name: p.name.clone(),
                default: p.default,
            })
            .collect(),
    };

    let data_routes: Vec<_> = rr
        .routes
        .iter()
        .filter(|r| r.class == marionette_isa::RouteClass::Data)
        .collect();
    let report = CompileReport {
        groups: pl.groups.clone(),
        data_ops: g
            .nodes
            .iter()
            .filter(|n| !n.op.is_control() && !matches!(n.op, marionette_cdfg::Op::Sink))
            .count(),
        ctrl_ops: g.control_node_count(),
        mem_ops: g.nodes.iter().filter(|n| n.op.is_memory()).count(),
        routes: rr.routes.len(),
        ctrl_routes: rr
            .routes
            .iter()
            .filter(|r| r.class == marionette_isa::RouteClass::Ctrl)
            .count(),
        ctrl_net_fits: rr.ctrl_net_fits,
        ctrl_fanout: rr.ctrl_fanout,
        mean_data_hops: if data_routes.is_empty() {
            0.0
        } else {
            data_routes
                .iter()
                .map(|r| r.path.len().saturating_sub(1))
                .sum::<usize>() as f64
                / data_routes.len() as f64
        },
        search,
    };
    (program, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marionette_cdfg::builder::CdfgBuilder;

    fn sample() -> Cdfg {
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 8, &[5, 3, 8, 1, 9, 2, 7, 4]);
        let o = b.array_i32("o", 8, &[]);
        b.mark_output(o);
        let zero = b.imm(0);
        let s = b.for_range(0, 8, &[zero], |b, i, v| {
            let x = b.load(a, i);
            let c = b.gt(x, 4.into());
            let r = b.if_else(c, |b| vec![b.mul(x, 2.into())], |_| vec![x]);
            b.store(o, i, r[0]);
            vec![b.add(v[0], r[0])]
        });
        b.sink("sum", s[0]);
        b.finish()
    }

    #[test]
    fn compile_produces_valid_program() {
        let g = sample();
        let (p, rep) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        assert!(p.validate().is_empty(), "{:?}", p.validate());
        assert!(rep.data_ops > 0 && rep.ctrl_ops > 0);
        assert!(rep.ctrl_net_fits);
        assert_eq!(p.nodes.len(), g.nodes.len());
    }

    #[test]
    fn bitstream_roundtrips_compiled_program() {
        let g = sample();
        let (p, _) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        let bytes = marionette_isa::bitstream::encode(&p);
        let q = marionette_isa::bitstream::decode(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn configs_have_modes() {
        let g = sample();
        let (p, _) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        let modes: std::collections::HashSet<_> = p
            .pes
            .iter()
            .flat_map(|pe| pe.configs.iter().map(|c| format!("{:?}", c.mode)))
            .collect();
        assert!(modes.contains("Loop"), "loop header config present");
    }

    #[test]
    fn disasm_of_compiled_program_is_nonempty() {
        let g = sample();
        let (p, _) = compile(&g, &CompileOptions::marionette_4x4()).unwrap();
        let text = marionette_isa::disasm::disassemble(&p);
        assert!(text.contains("cfg 0"));
    }
}
