//! Compilation options: how a CDFG is mapped onto a given fabric.
//!
//! Architectures (in `marionette-arch`) are expressed as a pair of
//! [`CompileOptions`] (static mapping policy) and a simulator timing
//! model. The options here capture the *mapping-visible* differences the
//! paper discusses: where control operators live, whether memory
//! operators ride stream engines, whether the scheduler may co-locate
//! concurrently-live loop levels (Agile PE Assignment), and split
//! fabrics (REVEL).

/// Fabric geometry: an R×C mesh of PEs.
///
/// Every layer of the stack that depends on the array's shape — mapping
/// policy, mesh routing, CS-Benes sizing, and the geometry-derived
/// timing parameters of `marionette-arch` (CCU round trips scale with
/// the corner-to-corner distance) — takes its dimensions from here. The
/// paper's evaluation fabric is [`FabricDims::paper`] (4×4); the
/// `fabric_sweep` experiment scales the same presets to 6×6 and 8×8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FabricDims {
    /// Fabric rows.
    pub rows: usize,
    /// Fabric columns.
    pub cols: usize,
}

impl FabricDims {
    /// Creates an R×C fabric geometry.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "fabric dimensions must be positive");
        FabricDims { rows, cols }
    }

    /// The paper's 4×4 evaluation fabric.
    pub fn paper() -> Self {
        FabricDims::new(4, 4)
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// One-way corner-to-corner mesh distance in hops: `(rows − 1) +
    /// (cols − 1)`. This is the distance the paper's centralized-control
    /// cost model is built on (6 hops on the 4×4 fabric).
    pub fn corner_hops(&self) -> u32 {
        (self.rows - 1 + self.cols - 1) as u32
    }
}

impl std::fmt::Display for FabricDims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl std::str::FromStr for FabricDims {
    type Err = String;

    /// Parses `"RxC"` (e.g. `6x6`, `4X6`).
    fn from_str(s: &str) -> Result<Self, String> {
        let err = || format!("`{s}` is not a fabric spec RxC (e.g. 6x6)");
        let (r, c) = s.split_once(['x', 'X', '×']).ok_or_else(err)?;
        let rows: usize = r.trim().parse().map_err(|_| err())?;
        let cols: usize = c.trim().parse().map_err(|_| err())?;
        if rows == 0 || cols == 0 {
            return Err(err());
        }
        Ok(FabricDims { rows, cols })
    }
}

/// Where control operators (steer/carry/inv/merge/gate) execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlPlacement {
    /// In the PE's control flow part, issuing in parallel with the FU
    /// (Marionette's decoupled control flow plane).
    CtrlPlane,
    /// On ordinary PE issue slots (von Neumann, dataflow, TIA, REVEL).
    PeSlots,
    /// Inside network switches (RipTide's control-in-NoC).
    NetSwitches,
}

/// Where memory operators execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemPlacement {
    /// On PE issue slots (most architectures).
    PeSlots,
    /// On dedicated stream engines (Softbrain); `count` engines issue one
    /// memory operation per cycle each.
    StreamUnits {
        /// Number of stream engines.
        count: u8,
    },
}

/// REVEL-style split fabric: an inner-loop systolic region plus a small
/// tagged-dataflow region for everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitFabric {
    /// PEs reserved for innermost-loop pipelines (systolic side).
    pub systolic_pes: usize,
    /// PEs for outer-BB work (tagged-dataflow side).
    pub dataflow_pes: usize,
}

/// Iteration budget of the annealing mapping explorer.
///
/// [`SearchBudget::Off`] selects the legacy one-shot pipeline (greedy
/// placement + dimension-ordered routing) and is **bit-compatible** with
/// the seed mappings, so experiments stay reproducible across PRs. Any
/// nonzero budget replaces the one-shot result with the best of
/// `restarts` independent simulated-annealing chains of `moves`
/// perturbations each (see `crate::explore`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchBudget {
    /// Legacy one-shot greedy placement and XY routing.
    Off,
    /// Simulated-annealing search over placements, plus congestion-aware
    /// rip-up-and-reroute of the winning placement.
    Anneal {
        /// Annealing moves per restart chain.
        moves: u32,
        /// Independent restart chains (best-of-N selection; chain `i`
        /// perturbs with RNG seed `base_seed + i`).
        restarts: u32,
        /// Base RNG seed: the whole search is a pure function of
        /// `(program, options)` including this value.
        base_seed: u64,
    },
}

impl SearchBudget {
    /// A default budget sized for the 4×4 fabric: two restart chains of
    /// 1500 moves each — enough to close most of the observable mapping
    /// headroom on the evaluation kernels without dominating compile
    /// time (a whole kernel×preset sweep re-compiles in ~1 s).
    pub fn default_on() -> Self {
        SearchBudget::Anneal {
            moves: 1500,
            restarts: 2,
            base_seed: 0xA11E,
        }
    }

    /// True when any search will run.
    pub fn is_on(&self) -> bool {
        !matches!(self, SearchBudget::Off)
    }

    /// The per-chain seeds this budget fans out over (empty when off).
    pub fn chain_seeds(&self) -> Vec<u64> {
        match *self {
            SearchBudget::Off => Vec::new(),
            SearchBudget::Anneal {
                restarts,
                base_seed,
                ..
            } => (0..u64::from(restarts.max(1)))
                .map(|i| base_seed.wrapping_add(i))
                .collect(),
        }
    }
}

/// Static mapping policy for one architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Fabric rows.
    pub rows: usize,
    /// Fabric columns.
    pub cols: usize,
    /// Control operator placement.
    pub ctrl: CtrlPlacement,
    /// Memory operator placement.
    pub mem: MemPlacement,
    /// Agile PE Assignment: loop levels co-resident on disjoint PE
    /// regions, reshaped to minimize PE waste (Fig 8). When false, every
    /// loop level is mapped across the whole array and levels
    /// time-multiplex (configuration switching).
    pub agile: bool,
    /// Split fabric (REVEL), if any.
    pub split: Option<SplitFabric>,
    /// Instruction buffer depth: maximum resident operators per PE per
    /// configuration.
    pub slots_per_pe: usize,
    /// Mapping-search budget ([`SearchBudget::Off`] = legacy one-shot
    /// pipeline, bit-compatible with the seed mappings).
    pub search: SearchBudget,
}

impl CompileOptions {
    /// An R×C fabric with Marionette defaults. `marionette_rxc(4, 4)` is
    /// bit-identical to the legacy [`CompileOptions::marionette_4x4`]
    /// (which is now a thin alias of this constructor).
    pub fn marionette_rxc(rows: usize, cols: usize) -> Self {
        CompileOptions::for_fabric(FabricDims::new(rows, cols))
    }

    /// Marionette defaults on an explicit [`FabricDims`].
    pub fn for_fabric(dims: FabricDims) -> Self {
        CompileOptions {
            rows: dims.rows,
            cols: dims.cols,
            ctrl: CtrlPlacement::CtrlPlane,
            mem: MemPlacement::PeSlots,
            agile: true,
            split: None,
            slots_per_pe: 16,
            search: SearchBudget::Off,
        }
    }

    /// The paper's 4×4 fabric with Marionette defaults.
    pub fn marionette_4x4() -> Self {
        CompileOptions::marionette_rxc(4, 4)
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// The fabric geometry of this mapping policy.
    pub fn dims(&self) -> FabricDims {
        FabricDims::new(self.rows, self.cols)
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::marionette_4x4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = CompileOptions::default();
        assert_eq!(o.pe_count(), 16);
        assert!(o.agile);
        assert_eq!(o.ctrl, CtrlPlacement::CtrlPlane);
        assert_eq!(o.search, SearchBudget::Off);
    }

    #[test]
    fn fabric_dims() {
        let d = FabricDims::new(4, 4);
        assert_eq!(d, FabricDims::paper());
        assert_eq!(d.pe_count(), 16);
        assert_eq!(d.corner_hops(), 6, "the paper's corner distance");
        assert_eq!(FabricDims::new(6, 6).corner_hops(), 10);
        assert_eq!(FabricDims::new(4, 6).corner_hops(), 8);
        assert_eq!(d.to_string(), "4x4");
        assert_eq!("6x6".parse::<FabricDims>().unwrap(), FabricDims::new(6, 6));
        assert_eq!("4X6".parse::<FabricDims>().unwrap(), FabricDims::new(4, 6));
        assert!("6".parse::<FabricDims>().is_err());
        assert!("0x4".parse::<FabricDims>().is_err());
        assert!("axb".parse::<FabricDims>().is_err());
    }

    #[test]
    fn rxc_4x4_matches_legacy() {
        assert_eq!(
            CompileOptions::marionette_rxc(4, 4),
            CompileOptions::marionette_4x4()
        );
        let o = CompileOptions::marionette_rxc(6, 8);
        assert_eq!(o.pe_count(), 48);
        assert_eq!(o.dims(), FabricDims::new(6, 8));
    }

    #[test]
    fn budget_seeds() {
        assert!(SearchBudget::Off.chain_seeds().is_empty());
        assert!(!SearchBudget::Off.is_on());
        let b = SearchBudget::Anneal {
            moves: 10,
            restarts: 3,
            base_seed: 100,
        };
        assert!(b.is_on());
        assert_eq!(b.chain_seeds(), vec![100, 101, 102]);
        assert!(SearchBudget::default_on().is_on());
    }
}
