//! Compilation options: how a CDFG is mapped onto a given fabric.
//!
//! Architectures (in `marionette-arch`) are expressed as a pair of
//! [`CompileOptions`] (static mapping policy) and a simulator timing
//! model. The options here capture the *mapping-visible* differences the
//! paper discusses: where control operators live, whether memory
//! operators ride stream engines, whether the scheduler may co-locate
//! concurrently-live loop levels (Agile PE Assignment), and split
//! fabrics (REVEL).

/// Where control operators (steer/carry/inv/merge/gate) execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlPlacement {
    /// In the PE's control flow part, issuing in parallel with the FU
    /// (Marionette's decoupled control flow plane).
    CtrlPlane,
    /// On ordinary PE issue slots (von Neumann, dataflow, TIA, REVEL).
    PeSlots,
    /// Inside network switches (RipTide's control-in-NoC).
    NetSwitches,
}

/// Where memory operators execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemPlacement {
    /// On PE issue slots (most architectures).
    PeSlots,
    /// On dedicated stream engines (Softbrain); `count` engines issue one
    /// memory operation per cycle each.
    StreamUnits {
        /// Number of stream engines.
        count: u8,
    },
}

/// REVEL-style split fabric: an inner-loop systolic region plus a small
/// tagged-dataflow region for everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitFabric {
    /// PEs reserved for innermost-loop pipelines (systolic side).
    pub systolic_pes: usize,
    /// PEs for outer-BB work (tagged-dataflow side).
    pub dataflow_pes: usize,
}

/// Iteration budget of the annealing mapping explorer.
///
/// [`SearchBudget::Off`] selects the legacy one-shot pipeline (greedy
/// placement + dimension-ordered routing) and is **bit-compatible** with
/// the seed mappings, so experiments stay reproducible across PRs. Any
/// nonzero budget replaces the one-shot result with the best of
/// `restarts` independent simulated-annealing chains of `moves`
/// perturbations each (see `crate::explore`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchBudget {
    /// Legacy one-shot greedy placement and XY routing.
    Off,
    /// Simulated-annealing search over placements, plus congestion-aware
    /// rip-up-and-reroute of the winning placement.
    Anneal {
        /// Annealing moves per restart chain.
        moves: u32,
        /// Independent restart chains (best-of-N selection; chain `i`
        /// perturbs with RNG seed `base_seed + i`).
        restarts: u32,
        /// Base RNG seed: the whole search is a pure function of
        /// `(program, options)` including this value.
        base_seed: u64,
    },
}

impl SearchBudget {
    /// A default budget sized for the 4×4 fabric: two restart chains of
    /// 1500 moves each — enough to close most of the observable mapping
    /// headroom on the evaluation kernels without dominating compile
    /// time (a whole kernel×preset sweep re-compiles in ~1 s).
    pub fn default_on() -> Self {
        SearchBudget::Anneal {
            moves: 1500,
            restarts: 2,
            base_seed: 0xA11E,
        }
    }

    /// True when any search will run.
    pub fn is_on(&self) -> bool {
        !matches!(self, SearchBudget::Off)
    }

    /// The per-chain seeds this budget fans out over (empty when off).
    pub fn chain_seeds(&self) -> Vec<u64> {
        match *self {
            SearchBudget::Off => Vec::new(),
            SearchBudget::Anneal {
                restarts,
                base_seed,
                ..
            } => (0..u64::from(restarts.max(1)))
                .map(|i| base_seed.wrapping_add(i))
                .collect(),
        }
    }
}

/// Static mapping policy for one architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Fabric rows.
    pub rows: usize,
    /// Fabric columns.
    pub cols: usize,
    /// Control operator placement.
    pub ctrl: CtrlPlacement,
    /// Memory operator placement.
    pub mem: MemPlacement,
    /// Agile PE Assignment: loop levels co-resident on disjoint PE
    /// regions, reshaped to minimize PE waste (Fig 8). When false, every
    /// loop level is mapped across the whole array and levels
    /// time-multiplex (configuration switching).
    pub agile: bool,
    /// Split fabric (REVEL), if any.
    pub split: Option<SplitFabric>,
    /// Instruction buffer depth: maximum resident operators per PE per
    /// configuration.
    pub slots_per_pe: usize,
    /// Mapping-search budget ([`SearchBudget::Off`] = legacy one-shot
    /// pipeline, bit-compatible with the seed mappings).
    pub search: SearchBudget,
}

impl CompileOptions {
    /// The paper's 4×4 fabric with Marionette defaults.
    pub fn marionette_4x4() -> Self {
        CompileOptions {
            rows: 4,
            cols: 4,
            ctrl: CtrlPlacement::CtrlPlane,
            mem: MemPlacement::PeSlots,
            agile: true,
            split: None,
            slots_per_pe: 16,
            search: SearchBudget::Off,
        }
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::marionette_4x4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = CompileOptions::default();
        assert_eq!(o.pe_count(), 16);
        assert!(o.agile);
        assert_eq!(o.ctrl, CtrlPlacement::CtrlPlane);
        assert_eq!(o.search, SearchBudget::Off);
    }

    #[test]
    fn budget_seeds() {
        assert!(SearchBudget::Off.chain_seeds().is_empty());
        assert!(!SearchBudget::Off.is_on());
        let b = SearchBudget::Anneal {
            moves: 10,
            restarts: 3,
            base_seed: 100,
        };
        assert!(b.is_on());
        assert_eq!(b.chain_seeds(), vec![100, 101, 102]);
        assert!(SearchBudget::default_on().is_on());
    }
}
