//! Compilation options: how a CDFG is mapped onto a given fabric.
//!
//! Architectures (in `marionette-arch`) are expressed as a pair of
//! [`CompileOptions`] (static mapping policy) and a simulator timing
//! model. The options here capture the *mapping-visible* differences the
//! paper discusses: where control operators live, whether memory
//! operators ride stream engines, whether the scheduler may co-locate
//! concurrently-live loop levels (Agile PE Assignment), and split
//! fabrics (REVEL).

/// Where control operators (steer/carry/inv/merge/gate) execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlPlacement {
    /// In the PE's control flow part, issuing in parallel with the FU
    /// (Marionette's decoupled control flow plane).
    CtrlPlane,
    /// On ordinary PE issue slots (von Neumann, dataflow, TIA, REVEL).
    PeSlots,
    /// Inside network switches (RipTide's control-in-NoC).
    NetSwitches,
}

/// Where memory operators execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemPlacement {
    /// On PE issue slots (most architectures).
    PeSlots,
    /// On dedicated stream engines (Softbrain); `count` engines issue one
    /// memory operation per cycle each.
    StreamUnits {
        /// Number of stream engines.
        count: u8,
    },
}

/// REVEL-style split fabric: an inner-loop systolic region plus a small
/// tagged-dataflow region for everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitFabric {
    /// PEs reserved for innermost-loop pipelines (systolic side).
    pub systolic_pes: usize,
    /// PEs for outer-BB work (tagged-dataflow side).
    pub dataflow_pes: usize,
}

/// Static mapping policy for one architecture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileOptions {
    /// Fabric rows.
    pub rows: usize,
    /// Fabric columns.
    pub cols: usize,
    /// Control operator placement.
    pub ctrl: CtrlPlacement,
    /// Memory operator placement.
    pub mem: MemPlacement,
    /// Agile PE Assignment: loop levels co-resident on disjoint PE
    /// regions, reshaped to minimize PE waste (Fig 8). When false, every
    /// loop level is mapped across the whole array and levels
    /// time-multiplex (configuration switching).
    pub agile: bool,
    /// Split fabric (REVEL), if any.
    pub split: Option<SplitFabric>,
    /// Instruction buffer depth: maximum resident operators per PE per
    /// configuration.
    pub slots_per_pe: usize,
}

impl CompileOptions {
    /// The paper's 4×4 fabric with Marionette defaults.
    pub fn marionette_4x4() -> Self {
        CompileOptions {
            rows: 4,
            cols: 4,
            ctrl: CtrlPlacement::CtrlPlane,
            mem: MemPlacement::PeSlots,
            agile: true,
            split: None,
            slots_per_pe: 16,
        }
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions::marionette_4x4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = CompileOptions::default();
        assert_eq!(o.pe_count(), 16);
        assert!(o.agile);
        assert_eq!(o.ctrl, CtrlPlacement::CtrlPlane);
    }
}
