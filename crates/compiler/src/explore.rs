//! The mapping explorer: simulated-annealing search over placements.
//!
//! The legacy pipeline places once (greedy, producer-affinity) and
//! routes once (dimension-ordered XY). That leaves mapping quality on
//! the table: hop counts, link congestion and per-group load balance all
//! depend on *which* tile of a group's region each operator lands on,
//! and the greedy pass never revisits a decision. This module implements
//! the iterative search the `SearchBudget` option turns on:
//!
//! 1. start from the legal greedy placement of [`crate::place::place`];
//! 2. anneal over three neighborhoods — **relocate** (one operator to
//!    another tile of its group's region), **swap** (two same-lane
//!    operators of one group), and **cluster move** (exchange the
//!    regions of two equal-sized groups wholesale) — scoring candidates
//!    with the [`CostModel`] (hop latency + quadratic link congestion +
//!    group window pressure + control fan-out);
//! 3. keep the best-seen placement; independent restart chains
//!    (`SearchBudget::Anneal { restarts, .. }`) are combined by
//!    [`select_best`], deterministically.
//!
//! Caps derived from the greedy mapping keep every candidate legal: a
//! tile never exceeds the ceiling of its group's initial densest-tile
//! load (so the implied initiation interval cannot regress), regions are
//! never resized, and fixed operators (Start/Sink anchors, memory stream
//! units) never move. Any placement this module emits therefore
//! simulates to bit-identical *outputs* — only timing changes.
//!
//! The search is a pure function of `(program, options)`: chains use the
//! deterministic `rand` shim seeded from `SearchBudget::Anneal::base_seed`,
//! and ties between chains resolve to the lowest seed. Fanning chains
//! out across threads (see `marionette::runner`) cannot change the
//! result.

use crate::cost::{node_depths, CostModel, MappingCost};
use crate::options::{CompileOptions, SearchBudget};
use crate::place::{
    node_weight, place, place_with_faults, takes_pe_slot, PlaceError, PlacementResult,
};
use marionette_cdfg::graph::{Cdfg, PortSrc};
use marionette_cdfg::Op;
use marionette_isa::Placement;
use marionette_net::Mesh;
use marionette_sim::FaultSet;
use rand::{Rng, SeedableRng, StdRng};

/// Cost surcharge for an edge whose endpoints have *no* fault-free
/// dimension-ordered route (neither XY nor YX) — large enough that the
/// annealer always prefers any routable alternative, small enough not to
/// overflow the cost arithmetic.
const UNROUTABLE_PENALTY: f64 = 1e6;

/// Which issue lane a movable operator occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Lane {
    /// FU issue slot ([`Placement::Pe`]).
    Data,
    /// Control flow part / network switch slot.
    Ctrl,
}

/// One movable operator.
#[derive(Clone, Copy, Debug)]
struct Movable {
    node: u32,
    group: u16,
    lane: Lane,
    weight: f64,
}

/// A mesh-riding dataflow edge with its cost weights.
#[derive(Clone, Copy, Debug)]
struct XEdge {
    a: u32,
    b: u32,
    /// Frequency-weighted hop-latency weight (0 for edges that do not
    /// ride the mesh under the cost model's transport assumption).
    w_lat: f64,
    /// Frequency weight on the congestion term.
    w_cong: f64,
    /// Control fan-out weight (dedicated-network models only).
    w_fan: f64,
}

/// Summary of one finished search, attached to the `CompileReport`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SearchReport {
    /// Seed of the winning chain.
    pub seed: u64,
    /// Moves per chain.
    pub moves: u32,
    /// Restart chains run.
    pub restarts: u32,
    /// Scalar cost of the greedy starting mapping.
    pub greedy_total: f64,
    /// Scalar cost of the winning mapping.
    pub best_total: f64,
    /// Cost breakdown of the winning mapping.
    pub best_cost: MappingCost,
    /// Moves proposed across the winning chain.
    pub attempted: u32,
    /// Moves accepted across the winning chain.
    pub accepted: u32,
    /// Multi-hop routes the rip-up router moved off the XY default
    /// (filled in by the pipeline after routing).
    pub rerouted: usize,
}

/// Outcome of one annealing chain.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// The best placement the chain saw (greedy if nothing improved).
    pub placement: PlacementResult,
    /// Its cost breakdown (recomputed from scratch, so chains compare
    /// exactly).
    pub cost: MappingCost,
    /// Its scalar cost under the chain's cost model.
    pub total: f64,
    /// Chain statistics.
    pub report: SearchReport,
}

/// Picks the winner among restart chains: strictly lowest total, with
/// ties resolved to the earliest chain (lowest seed). Deterministic for
/// any execution order of the chains.
///
/// # Panics
/// Panics on an empty slice.
pub fn select_best(results: Vec<ExploreResult>) -> ExploreResult {
    let mut best: Option<ExploreResult> = None;
    for r in results {
        let better = match &best {
            None => true,
            Some(b) => r.total < b.total - 1e-9,
        };
        if better {
            best = Some(r);
        }
    }
    best.expect("at least one chain")
}

/// Runs the full search budget of `opts` serially; `Ok(None)` when the
/// budget is [`SearchBudget::Off`].
///
/// # Errors
/// Returns [`PlaceError`] when the greedy seed placement cannot fit.
pub fn explore(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
) -> Result<Option<ExploreResult>, PlaceError> {
    explore_with_faults(g, opts, cm, &FaultSet::none())
}

/// Fault-aware variant of [`explore`]: the greedy seed avoids dead PEs
/// ([`place_with_faults`]) and every chain's cost function penalizes
/// edges that must cross flaky links (by the simulator's extra stall
/// cycles) or have no fault-free dimension-ordered route at all. An
/// empty fault set is bit-identical to [`explore`].
///
/// # Errors
/// Returns [`PlaceError`] when the greedy seed placement cannot fit on
/// the live tiles.
pub fn explore_with_faults(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
    faults: &FaultSet,
) -> Result<Option<ExploreResult>, PlaceError> {
    let seeds = opts.search.chain_seeds();
    if seeds.is_empty() {
        return Ok(None);
    }
    // The greedy seed placement is deterministic: compute it once and
    // share it across the restart chains.
    let pl = place_with_faults(g, opts, faults)?;
    let mut results = Vec::with_capacity(seeds.len());
    for s in seeds {
        results.push(explore_chain_from(g, opts, cm, s, pl.clone(), faults));
    }
    Ok(Some(select_best(results)))
}

/// Cost of the greedy (one-shot) mapping under `cm` — the baseline the
/// explorer's improvement is measured against.
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on the fabric.
pub fn greedy_cost(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
) -> Result<MappingCost, PlaceError> {
    let pl = place(g, opts)?;
    let none = FaultSet::none();
    let ev = Evaluator::new(g, opts, cm, &pl, &none);
    Ok(ev.cost())
}

/// Runs one annealing chain with RNG seed `seed`.
///
/// # Errors
/// Returns [`PlaceError`] when the greedy seed placement cannot fit.
pub fn explore_chain(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
    seed: u64,
) -> Result<ExploreResult, PlaceError> {
    explore_chain_with_faults(g, opts, cm, seed, &FaultSet::none())
}

/// Fault-aware variant of [`explore_chain`] (see [`explore_with_faults`]
/// for the fault semantics). An empty fault set is bit-identical to
/// [`explore_chain`].
///
/// # Errors
/// Returns [`PlaceError`] when the greedy seed placement cannot fit on
/// the live tiles.
pub fn explore_chain_with_faults(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
    seed: u64,
    faults: &FaultSet,
) -> Result<ExploreResult, PlaceError> {
    let pl = place_with_faults(g, opts, faults)?;
    Ok(explore_chain_from(g, opts, cm, seed, pl, faults))
}

/// One annealing chain starting from a precomputed greedy placement.
fn explore_chain_from(
    g: &Cdfg,
    opts: &CompileOptions,
    cm: &CostModel,
    seed: u64,
    pl: PlacementResult,
    faults: &FaultSet,
) -> ExploreResult {
    let moves = match opts.search {
        SearchBudget::Off => 0,
        SearchBudget::Anneal { moves, .. } => moves,
    };
    let mut ev = Evaluator::new(g, opts, cm, &pl, faults);
    let greedy_total = ev.total();
    let mut report = SearchReport {
        seed,
        moves,
        restarts: match opts.search {
            SearchBudget::Off => 0,
            SearchBudget::Anneal { restarts, .. } => restarts,
        },
        greedy_total,
        ..Default::default()
    };

    if ev.movables.is_empty() || moves == 0 {
        report.best_total = greedy_total;
        report.best_cost = ev.cost();
        return ExploreResult {
            placement: pl,
            cost: ev.cost(),
            total: greedy_total,
            report,
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = (greedy_total * 0.02).max(1.0);
    let t_end = t0 * 1e-3;
    let alpha = (t_end / t0).powf(1.0 / f64::from(moves.max(1)));
    let mut temp = t0;

    let mut best_total = greedy_total;
    let mut best_tiles = ev.tiles.clone();
    let mut best_regions = ev.regions.clone();

    for it in 0..moves {
        // Periodic from-scratch refresh bounds floating-point drift from
        // incremental add/remove cycles.
        if it % 256 == 255 {
            ev.recompute();
        }
        let before = ev.total();
        let applied = match rng.gen_range(0u32..100) {
            0..=44 => ev.try_relocate(&mut rng),
            45..=89 => ev.try_swap(&mut rng),
            _ => ev.try_cluster_swap(&mut rng),
        };
        report.attempted += 1;
        let Some(undo) = applied else {
            temp *= alpha;
            continue;
        };
        let delta = ev.total() - before;
        let accept = delta <= 0.0 || rng.gen_range(0.0f64..1.0) < (-delta / temp).exp();
        if accept {
            report.accepted += 1;
            if ev.total() < best_total - 1e-9 {
                best_total = ev.total();
                best_tiles.clone_from(&ev.tiles);
                best_regions.clone_from(&ev.regions);
            }
        } else {
            ev.apply_undo(undo);
        }
        temp *= alpha;
    }

    // Rebuild the winning placement and re-score it from scratch so
    // totals compare exactly across chains.
    ev.restore(&best_tiles, &best_regions);
    ev.recompute();
    let cost = ev.cost();
    let total = ev.total();
    report.best_total = total;
    report.best_cost = cost;
    let placement = ev.to_placement(&pl);
    ExploreResult {
        placement,
        cost,
        total,
        report,
    }
}

/// An undoable move.
enum Undo {
    Relocate { movable: usize, old_pe: u16 },
    Swap { m1: usize, m2: usize },
    ClusterSwap { ga: usize, gb: usize },
}

/// Incremental cost evaluator over a candidate placement.
struct Evaluator<'a> {
    cm: &'a CostModel,
    /// Injected fabric faults; empty set adds no penalty terms.
    faults: &'a FaultSet,
    /// Fast-path gate: the fault-free evaluator never touches `faults`.
    have_faults: bool,
    mesh: Mesh,
    /// Current tile per node (for fixed nodes: their fixed tile).
    tiles: Vec<u16>,
    /// Movable operators.
    movables: Vec<Movable>,
    /// Region (allowed tiles) per group, after any cluster swaps.
    regions: Vec<Vec<u16>>,
    /// Movable ids per `(group, lane)` bucket: `bucket[group*2 + lane]`.
    buckets: Vec<Vec<u32>>,
    /// Groups eligible for cluster swaps, as `(ga, gb)` pairs.
    cluster_pairs: Vec<(usize, usize)>,
    /// Per-group per-tile issue load, `[group][pe]`, data lane.
    dload: Vec<Vec<f64>>,
    /// Per-group per-tile issue load, ctrl lane.
    cload: Vec<Vec<f64>>,
    /// Load ceiling per `(group, lane)` (`cap[group*2 + lane]`).
    caps: Vec<f64>,
    /// Mesh-riding edges.
    edges: Vec<XEdge>,
    /// CSR: edge ids incident to each node.
    inc_base: Vec<u32>,
    inc_edges: Vec<u32>,
    /// Per-directed-link congestion load (XY paths).
    link_load: Vec<f64>,
    // running cost terms
    lat_sum: f64,
    cong_sumsq: f64,
    fan_sum: f64,
    pressure_sum: f64,
    /// Per-group current max data-lane load (pressure contribution).
    group_peak: Vec<f64>,
    /// Scratch for dedup of incident edges on multi-node moves.
    edge_mark: Vec<u32>,
    edge_epoch: u32,
    scratch_edges: Vec<u32>,
}

impl<'a> Evaluator<'a> {
    fn new(
        g: &'a Cdfg,
        opts: &CompileOptions,
        cm: &'a CostModel,
        pl: &PlacementResult,
        faults: &'a FaultSet,
    ) -> Self {
        let mesh = Mesh::new(opts.rows, opts.cols);
        let npes = opts.pe_count();
        let ngroups = pl.groups.len();
        let depths = node_depths(g);

        let tiles: Vec<u16> = pl.places.iter().map(|p| p.tile()).collect();

        // Movable operators: slot-takers and region-placed control ops.
        // Start/Sink anchors and memory stream units stay fixed.
        let mut movables = Vec::new();
        for (i, n) in g.nodes.iter().enumerate() {
            let lane = match pl.places[i] {
                Placement::Pe { .. } => Lane::Data,
                Placement::CtrlPlane { .. } | Placement::NetSwitch { .. } => {
                    if matches!(n.op, Op::Start | Op::Sink) {
                        continue;
                    }
                    if takes_pe_slot(n.op, opts) {
                        // PeSlots control placement: already covered by
                        // the Pe arm; anything else here is fixed.
                        continue;
                    }
                    Lane::Ctrl
                }
                Placement::MemUnit { .. } => continue,
            };
            movables.push(Movable {
                node: i as u32,
                group: pl.node_group[i],
                lane,
                weight: node_weight(g, i),
            });
        }

        // Regions: a group's assigned PEs, falling back to the whole
        // fabric exactly like greedy node assignment does — minus any
        // dead tiles, so moves never relocate onto one.
        let live = |pe: &u16| -> bool { !faults.pe_dead(*pe as usize) };
        let fallback: Vec<u16> = match opts.split {
            Some(s) => (0..s.systolic_pes as u16).filter(live).collect(),
            None => (0..npes as u16).filter(live).collect(),
        };
        let regions: Vec<Vec<u16>> = pl
            .groups
            .iter()
            .map(|gp| {
                if gp.pes.is_empty() {
                    fallback.clone()
                } else {
                    gp.pes.clone()
                }
            })
            .collect();

        // Buckets and loads.
        let mut buckets = vec![Vec::new(); ngroups * 2];
        let mut dload = vec![vec![0.0; npes]; ngroups];
        let mut cload = vec![vec![0.0; npes]; ngroups];
        for (mi, m) in movables.iter().enumerate() {
            let gi = m.group as usize;
            buckets[gi * 2 + lane_idx(m.lane)].push(mi as u32);
            let pe = tiles[m.node as usize] as usize;
            match m.lane {
                Lane::Data => dload[gi][pe] += m.weight,
                Lane::Ctrl => cload[gi][pe] += m.weight,
            }
        }
        let mut caps = vec![0.0; ngroups * 2];
        for gi in 0..ngroups {
            let dmax = dload[gi].iter().cloned().fold(0.0, f64::max);
            let cmax = cload[gi].iter().cloned().fold(0.0, f64::max);
            // Ceiling of the densest tile: the implied initiation
            // interval cannot regress below the greedy mapping's.
            caps[gi * 2] = if dmax > 0.0 { dmax.ceil() } else { 0.0 };
            caps[gi * 2 + 1] = if cmax > 0.0 { cmax.ceil() } else { 0.0 };
        }

        // Cluster-swap pairs: equal-sized, disjoint regions with movable
        // occupants on both sides.
        let mut cluster_pairs = Vec::new();
        for ga in 0..ngroups {
            for gb in ga + 1..ngroups {
                let (ra, rb) = (&regions[ga], &regions[gb]);
                if ra.is_empty() || ra.len() != rb.len() {
                    continue;
                }
                if ra.iter().any(|t| rb.contains(t)) {
                    continue; // shared/time-multiplexed regions
                }
                let occupied =
                    |gi: usize| !buckets[gi * 2].is_empty() || !buckets[gi * 2 + 1].is_empty();
                if occupied(ga) && occupied(gb) {
                    cluster_pairs.push((ga, gb));
                }
            }
        }

        // Header clusters: same-header-bb edges are combinational inside
        // one loop unit (see `sim::machine::Machine::emit`) and never
        // touch the network, so they carry no mapping cost.
        let header_bb = crate::cost::header_blocks(g);

        // Edge extraction mirrors `route::route`'s classification.
        let mut edges = Vec::new();
        let mut incident: Vec<Vec<u32>> = vec![Vec::new(); g.nodes.len()];
        for (i, n) in g.nodes.iter().enumerate() {
            for (port, src) in n.inputs.iter().enumerate() {
                let PortSrc::Node(p) = src else { continue };
                let pi = p.0 as usize;
                if crate::cost::is_cluster_internal(g, &header_bb, pi, i) {
                    continue; // loop-unit internal register
                }
                let is_ctrl = crate::route::is_ctrl_port(n.op, port) || g.nodes[pi].op.is_control();
                let freq = cm.freq_weight(depths[pi].min(depths[i]));
                let (w_lat, w_cong, w_fan) = if is_ctrl && !cm.ctrl_on_mesh {
                    (0.0, 0.0, 1.0)
                } else {
                    (cm.link_latency * freq, freq, 0.0)
                };
                let ei = edges.len() as u32;
                edges.push(XEdge {
                    a: p.0,
                    b: i as u32,
                    w_lat,
                    w_cong,
                    w_fan,
                });
                incident[pi].push(ei);
                incident[i].push(ei);
            }
        }
        let mut inc_base = Vec::with_capacity(g.nodes.len() + 1);
        let mut inc_edges = Vec::with_capacity(edges.len() * 2);
        for l in &incident {
            inc_base.push(inc_edges.len() as u32);
            inc_edges.extend_from_slice(l);
        }
        inc_base.push(inc_edges.len() as u32);

        let mut ev = Evaluator {
            cm,
            faults,
            have_faults: !faults.is_empty(),
            mesh,
            tiles,
            movables,
            regions,
            buckets,
            cluster_pairs,
            dload,
            cload,
            caps,
            edges,
            inc_base,
            inc_edges,
            link_load: vec![0.0; mesh.link_id_space()],
            lat_sum: 0.0,
            cong_sumsq: 0.0,
            fan_sum: 0.0,
            pressure_sum: 0.0,
            group_peak: vec![0.0; ngroups],
            edge_mark: Vec::new(),
            edge_epoch: 0,
            scratch_edges: Vec::new(),
        };
        ev.edge_mark = vec![0; ev.edges.len()];
        ev.recompute();
        ev
    }

    fn cost(&self) -> MappingCost {
        MappingCost {
            latency: self.lat_sum,
            congestion: self.cong_sumsq,
            pressure: self.pressure_sum,
            fanout: self.fan_sum,
        }
    }

    fn total(&self) -> f64 {
        self.cost().total(self.cm)
    }

    /// Recomputes every running term from scratch.
    fn recompute(&mut self) {
        self.link_load.iter_mut().for_each(|l| *l = 0.0);
        self.lat_sum = 0.0;
        self.cong_sumsq = 0.0;
        self.fan_sum = 0.0;
        for ei in 0..self.edges.len() {
            self.add_edge(ei as u32);
        }
        // add_edge maintained sums incrementally over zeroed loads; the
        // quadratic term must be rebuilt exactly:
        self.cong_sumsq = self.link_load.iter().map(|l| l * l).sum();
        for gi in 0..self.group_peak.len() {
            self.group_peak[gi] = self.dload[gi].iter().cloned().fold(0.0, f64::max);
        }
        self.pressure_sum = self.group_peak.iter().sum();
    }

    fn add_edge(&mut self, ei: u32) {
        let e = self.edges[ei as usize];
        let (ta, tb) = (
            self.tiles[e.a as usize] as usize,
            self.tiles[e.b as usize] as usize,
        );
        if ta == tb {
            return;
        }
        if e.w_fan > 0.0 {
            self.fan_sum += e.w_fan;
        }
        if e.w_cong == 0.0 && e.w_lat == 0.0 {
            return;
        }
        let mesh = self.mesh;
        self.lat_sum += e.w_lat * mesh.hops(ta, tb) as f64;
        if self.have_faults {
            self.lat_sum += self.fault_penalty(ta, tb, &e);
        }
        let w = e.w_cong;
        if w > 0.0 {
            let (loads, sumsq) = (&mut self.link_load, &mut self.cong_sumsq);
            mesh.for_each_xy_link(ta, tb, |l| {
                let v = &mut loads[l.0 as usize];
                *sumsq += (*v + w) * (*v + w) - *v * *v;
                *v += w;
            });
        }
    }

    /// Deterministic fault surcharge for an edge between tiles `ta` and
    /// `tb`: the simulator's extra flaky-link stall cycles along the XY
    /// path, plus [`UNROUTABLE_PENALTY`] when *neither* dimension order
    /// avoids the dead links (the rip-up router would fail outright).
    fn fault_penalty(&self, ta: usize, tb: usize, e: &XEdge) -> f64 {
        let mesh = self.mesh;
        let faults = self.faults;
        let mut pen = 0.0;
        let mut xy_dead = false;
        mesh.for_each_xy_link(ta, tb, |l| {
            let lid = l.0 as usize;
            if faults.link_dead(lid) {
                xy_dead = true;
            } else {
                let m = faults.link_mult(lid);
                if m > 1 {
                    pen += e.w_cong * crate::cost::flaky_extra(self.cm.link_latency, m);
                }
            }
        });
        if xy_dead {
            let mut yx_dead = false;
            mesh.for_each_yx_link(ta, tb, |l| {
                if faults.link_dead(l.0 as usize) {
                    yx_dead = true;
                }
            });
            if yx_dead {
                pen += UNROUTABLE_PENALTY;
            }
        }
        pen
    }

    fn remove_edge(&mut self, ei: u32) {
        let e = self.edges[ei as usize];
        let (ta, tb) = (
            self.tiles[e.a as usize] as usize,
            self.tiles[e.b as usize] as usize,
        );
        if ta == tb {
            return;
        }
        if e.w_fan > 0.0 {
            self.fan_sum -= e.w_fan;
        }
        if e.w_cong == 0.0 && e.w_lat == 0.0 {
            return;
        }
        let mesh = self.mesh;
        self.lat_sum -= e.w_lat * mesh.hops(ta, tb) as f64;
        if self.have_faults {
            self.lat_sum -= self.fault_penalty(ta, tb, &e);
        }
        let w = e.w_cong;
        if w > 0.0 {
            let (loads, sumsq) = (&mut self.link_load, &mut self.cong_sumsq);
            mesh.for_each_xy_link(ta, tb, |l| {
                let v = &mut loads[l.0 as usize];
                *sumsq += (*v - w) * (*v - w) - *v * *v;
                *v -= w;
            });
        }
    }

    /// Collects the deduplicated incident-edge set of `nodes` into
    /// `scratch_edges`.
    fn collect_incident(&mut self, nodes: &[u32]) {
        self.edge_epoch += 1;
        self.scratch_edges.clear();
        for &n in nodes {
            let (s, e) = (
                self.inc_base[n as usize] as usize,
                self.inc_base[n as usize + 1] as usize,
            );
            for &ei in &self.inc_edges[s..e] {
                if self.edge_mark[ei as usize] != self.edge_epoch {
                    self.edge_mark[ei as usize] = self.edge_epoch;
                    self.scratch_edges.push(ei);
                }
            }
        }
    }

    /// Moves the tiles of `nodes` via `f`, keeping edge terms coherent.
    fn retile(&mut self, nodes: &[u32], f: impl Fn(u32) -> u16) {
        self.collect_incident(nodes);
        let touched = std::mem::take(&mut self.scratch_edges);
        for &ei in &touched {
            self.remove_edge(ei);
        }
        for &n in nodes {
            self.tiles[n as usize] = f(n);
        }
        for &ei in &touched {
            self.add_edge(ei);
        }
        self.scratch_edges = touched;
    }

    fn load_of(&mut self, gi: usize, lane: Lane) -> &mut Vec<f64> {
        match lane {
            Lane::Data => &mut self.dload[gi],
            Lane::Ctrl => &mut self.cload[gi],
        }
    }

    /// Updates the pressure term after group `gi`'s data loads changed.
    fn refresh_peak(&mut self, gi: usize) {
        let peak = self.dload[gi].iter().cloned().fold(0.0, f64::max);
        self.pressure_sum += peak - self.group_peak[gi];
        self.group_peak[gi] = peak;
    }

    /// Moves movable `mi` to `pe` unconditionally (caller checked caps).
    fn do_relocate(&mut self, mi: usize, pe: u16) {
        let m = self.movables[mi];
        let gi = m.group as usize;
        let old = self.tiles[m.node as usize];
        let loads = self.load_of(gi, m.lane);
        loads[old as usize] -= m.weight;
        loads[pe as usize] += m.weight;
        if m.lane == Lane::Data {
            self.refresh_peak(gi);
        }
        self.retile(&[m.node], |_| pe);
    }

    fn try_relocate(&mut self, rng: &mut StdRng) -> Option<Undo> {
        let mi = rng.gen_range(0usize..self.movables.len());
        let m = self.movables[mi];
        let gi = m.group as usize;
        let region = &self.regions[gi];
        if region.len() < 2 {
            return None;
        }
        let pe = region[rng.gen_range(0usize..region.len())];
        let old = self.tiles[m.node as usize];
        if pe == old {
            return None;
        }
        let cap = self.caps[gi * 2 + lane_idx(m.lane)];
        let loads = self.load_of(gi, m.lane);
        if loads[pe as usize] + m.weight > cap + 1e-9 {
            return None;
        }
        self.do_relocate(mi, pe);
        Some(Undo::Relocate {
            movable: mi,
            old_pe: old,
        })
    }

    fn try_swap(&mut self, rng: &mut StdRng) -> Option<Undo> {
        let mi = rng.gen_range(0usize..self.movables.len());
        let m1 = self.movables[mi];
        let gi = m1.group as usize;
        let bucket = &self.buckets[gi * 2 + lane_idx(m1.lane)];
        if bucket.len() < 2 {
            return None;
        }
        let mj = bucket[rng.gen_range(0usize..bucket.len())] as usize;
        if mj == mi {
            return None;
        }
        let m2 = self.movables[mj];
        let (t1, t2) = (self.tiles[m1.node as usize], self.tiles[m2.node as usize]);
        if t1 == t2 {
            return None;
        }
        let cap = self.caps[gi * 2 + lane_idx(m1.lane)];
        {
            let loads = self.load_of(gi, m1.lane);
            let new1 = loads[t1 as usize] - m1.weight + m2.weight;
            let new2 = loads[t2 as usize] - m2.weight + m1.weight;
            if new1 > cap + 1e-9 || new2 > cap + 1e-9 {
                return None;
            }
            loads[t1 as usize] = new1;
            loads[t2 as usize] = new2;
        }
        if m1.lane == Lane::Data {
            self.refresh_peak(gi);
        }
        let (n1, n2) = (m1.node, m2.node);
        self.retile(&[n1, n2], |n| if n == n1 { t2 } else { t1 });
        Some(Undo::Swap { m1: mi, m2: mj })
    }

    fn try_cluster_swap(&mut self, rng: &mut StdRng) -> Option<Undo> {
        if self.cluster_pairs.is_empty() {
            return None;
        }
        let (ga, gb) = self.cluster_pairs[rng.gen_range(0usize..self.cluster_pairs.len())];
        self.do_cluster_swap(ga, gb);
        Some(Undo::ClusterSwap { ga, gb })
    }

    /// Exchanges the regions of groups `ga` and `gb` position-wise,
    /// carrying every movable occupant along. Self-inverse.
    fn do_cluster_swap(&mut self, ga: usize, gb: usize) {
        let ra = self.regions[ga].clone();
        let rb = self.regions[gb].clone();
        // Tile translation map, defined on both regions.
        let map_tile = |t: u16| -> u16 {
            if let Some(i) = ra.iter().position(|&x| x == t) {
                rb[i]
            } else if let Some(i) = rb.iter().position(|&x| x == t) {
                ra[i]
            } else {
                t
            }
        };
        let mut nodes: Vec<u32> = Vec::new();
        for gi in [ga, gb] {
            for &mi in self.buckets[gi * 2].iter().chain(&self.buckets[gi * 2 + 1]) {
                nodes.push(self.movables[mi as usize].node);
            }
        }
        let tiles_ref = &self.tiles;
        let mapped: Vec<(u32, u16)> = nodes
            .iter()
            .map(|&n| (n, map_tile(tiles_ref[n as usize])))
            .collect();
        self.retile(&nodes, |n| {
            mapped
                .iter()
                .find(|&&(m, _)| m == n)
                .map(|&(_, t)| t)
                .expect("mapped node")
        });
        // Permute loads alongside (per-group loads move with the region).
        for gi in [ga, gb] {
            for lane in [Lane::Data, Lane::Ctrl] {
                let loads = self.load_of(gi, lane);
                let mut fresh = vec![0.0; loads.len()];
                for i in 0..ra.len() {
                    let (ta, tb) = (ra[i] as usize, rb[i] as usize);
                    fresh[tb] = loads[ta];
                    fresh[ta] = loads[tb];
                }
                for (t, v) in loads.iter().enumerate() {
                    if !ra.contains(&(t as u16)) && !rb.contains(&(t as u16)) {
                        fresh[t] = *v;
                    }
                }
                *loads = fresh;
            }
        }
        self.regions.swap(ga, gb);
        // Peaks are permutation-invariant; pressure unchanged.
    }

    fn apply_undo(&mut self, u: Undo) {
        match u {
            Undo::Relocate { movable, old_pe } => self.do_relocate(movable, old_pe),
            Undo::Swap { m1, m2 } => {
                let (a, b) = (self.movables[m1], self.movables[m2]);
                let gi = a.group as usize;
                let (t1, t2) = (self.tiles[a.node as usize], self.tiles[b.node as usize]);
                {
                    let loads = self.load_of(gi, a.lane);
                    loads[t1 as usize] += b.weight - a.weight;
                    loads[t2 as usize] += a.weight - b.weight;
                }
                if a.lane == Lane::Data {
                    self.refresh_peak(gi);
                }
                let (n1, n2) = (a.node, b.node);
                self.retile(&[n1, n2], |n| if n == n1 { t2 } else { t1 });
            }
            Undo::ClusterSwap { ga, gb } => self.do_cluster_swap(ga, gb),
        }
    }

    /// Restores a snapshot taken earlier in the chain.
    fn restore(&mut self, tiles: &[u16], regions: &[Vec<u16>]) {
        self.tiles.copy_from_slice(tiles);
        self.regions = regions.to_vec();
        // Rebuild loads from the restored tiles.
        for gi in 0..self.dload.len() {
            self.dload[gi].iter_mut().for_each(|v| *v = 0.0);
            self.cload[gi].iter_mut().for_each(|v| *v = 0.0);
        }
        for m in &self.movables {
            let pe = self.tiles[m.node as usize] as usize;
            match m.lane {
                Lane::Data => self.dload[m.group as usize][pe] += m.weight,
                Lane::Ctrl => self.cload[m.group as usize][pe] += m.weight,
            }
        }
    }

    /// Materializes the current tiles as a [`PlacementResult`].
    fn to_placement(&self, pl: &PlacementResult) -> PlacementResult {
        let mut out = pl.clone();
        for m in &self.movables {
            let t = self.tiles[m.node as usize];
            let p = &mut out.places[m.node as usize];
            *p = match *p {
                Placement::Pe { .. } => Placement::Pe { pe: t },
                Placement::CtrlPlane { .. } => Placement::CtrlPlane { pe: t },
                Placement::NetSwitch { .. } => Placement::NetSwitch { sw: t },
                Placement::MemUnit { .. } => unreachable!("memory units never move"),
            };
        }
        for (gi, gp) in out.groups.iter_mut().enumerate() {
            if !gp.pes.is_empty() {
                gp.pes = self.regions[gi].clone();
            }
        }
        out
    }
}

fn lane_idx(l: Lane) -> usize {
    match l {
        Lane::Data => 0,
        Lane::Ctrl => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marionette_cdfg::builder::CdfgBuilder;

    fn sample() -> Cdfg {
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 16, &[5, 3, 8, 1, 9, 2, 7, 4, 5, 3, 8, 1, 9, 2, 7, 4]);
        let o = b.array_i32("o", 16, &[]);
        b.mark_output(o);
        let zero = b.imm(0);
        let s = b.for_range(0, 16, &[zero], |b, i, v| {
            let x = b.load(a, i);
            let c = b.gt(x, 4.into());
            let r = b.if_else(c, |b| vec![b.mul(x, 2.into())], |_| vec![x]);
            b.store(o, i, r[0]);
            vec![b.add(v[0], r[0])]
        });
        b.sink("sum", s[0]);
        b.finish()
    }

    fn searched_opts() -> CompileOptions {
        let mut o = CompileOptions::marionette_4x4();
        o.search = SearchBudget::Anneal {
            moves: 300,
            restarts: 2,
            base_seed: 7,
        };
        o
    }

    #[test]
    fn chain_is_deterministic() {
        let g = sample();
        let opts = searched_opts();
        let cm = CostModel::neutral();
        let a = explore_chain(&g, &opts, &cm, 7).unwrap();
        let b = explore_chain(&g, &opts, &cm, 7).unwrap();
        assert_eq!(a.placement.places, b.placement.places);
        assert_eq!(a.total, b.total);
        assert_eq!(a.report.accepted, b.report.accepted);
    }

    #[test]
    fn search_never_worse_than_greedy() {
        let g = sample();
        let opts = searched_opts();
        let cm = CostModel::neutral();
        let best = explore(&g, &opts, &cm).unwrap().unwrap();
        let greedy = greedy_cost(&g, &opts, &cm).unwrap();
        assert!(
            best.total <= greedy.total(&cm) + 1e-9,
            "best {} vs greedy {}",
            best.total,
            greedy.total(&cm)
        );
    }

    #[test]
    fn explored_placement_respects_regions_and_caps() {
        let g = sample();
        let opts = searched_opts();
        let cm = CostModel::neutral();
        let best = explore(&g, &opts, &cm).unwrap().unwrap();
        let pl = &best.placement;
        // Data nodes stay inside their group's region.
        for (i, n) in g.nodes.iter().enumerate() {
            if let Placement::Pe { pe } = pl.places[i] {
                let grp = pl.node_group[i] as usize;
                if !pl.groups[grp].pes.is_empty() {
                    assert!(
                        pl.groups[grp].pes.contains(&pe),
                        "node {i} ({:?}) left its region",
                        n.op
                    );
                }
            }
        }
        // Densest-tile load per group never exceeds the greedy ceiling.
        let greedy = place(&g, &opts).unwrap();
        for gi in 0..pl.groups.len() {
            let peak = |p: &PlacementResult| -> f64 {
                let mut per_pe = std::collections::HashMap::new();
                for (i, _) in g.nodes.iter().enumerate() {
                    if let Placement::Pe { pe } = p.places[i] {
                        if p.node_group[i] as usize == gi {
                            *per_pe.entry(pe).or_insert(0.0) += node_weight(&g, i);
                        }
                    }
                }
                per_pe.values().cloned().fold(0.0, f64::max)
            };
            assert!(
                peak(pl) <= peak(&greedy).ceil() + 1e-9,
                "group {gi} over cap"
            );
        }
    }

    #[test]
    fn select_best_prefers_lowest_seed_on_ties() {
        let g = sample();
        let opts = searched_opts();
        let cm = CostModel::neutral();
        let a = explore_chain(&g, &opts, &cm, 7).unwrap();
        let mut b = explore_chain(&g, &opts, &cm, 8).unwrap();
        b.total = a.total; // force a tie
        let best = select_best(vec![a.clone(), b]);
        assert_eq!(best.report.seed, 7);
        let _ = a;
    }

    #[test]
    fn off_budget_explores_nothing() {
        let g = sample();
        let opts = CompileOptions::marionette_4x4();
        assert!(explore(&g, &opts, &CostModel::neutral()).unwrap().is_none());
    }
}
