//! Placement: the Marionette scheduling algorithm (Fig 8).
//!
//! Operators are partitioned into *mapping groups* — one per loop, plus
//! the top level — and groups are placed innermost-first:
//!
//! - **Agile PE Assignment** (`agile = true`): each group receives a
//!   disjoint PE region sized to run at the lowest feasible initiation
//!   interval. When PEs run out, already-placed groups are *reshaped*
//!   (time-extended: fewer PEs, higher II), choosing the reshape with the
//!   minimum `PE_waste = PEs × II − ops` exactly as the paper's
//!   pseudo-code prescribes. The resulting co-resident regions let outer
//!   basic blocks pipeline concurrently with inner loops.
//! - **Non-agile** (baseline): every group maps across the whole array
//!   and groups time-multiplex through configuration switching.
//!
//! Within a group, operators are balanced across the region's PEs with a
//! producer-affinity heuristic; branch-side operators carry fractional
//! load (the two sides of a divergent branch fire exclusively, so a
//! Marionette PE can host both at no II cost — predicated architectures
//! pay dynamically in the simulator instead).

use crate::options::{CompileOptions, CtrlPlacement, MemPlacement};
use marionette_cdfg::graph::{Cdfg, PortSrc};
use marionette_cdfg::Op;
use marionette_isa::Placement;
use marionette_net::Mesh;
use marionette_sim::FaultSet;
use std::fmt;

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// A group cannot fit even at the maximum II (instruction buffer depth).
    GroupTooLarge {
        /// Group index.
        group: u16,
        /// Operators in the group.
        ops: usize,
        /// Total slot capacity available.
        capacity: usize,
    },
    /// No dimension-ordered path (XY or YX) between two tiles avoids the
    /// dead links of the injected [`FaultSet`].
    Unroutable {
        /// Source tile (linear index).
        src_tile: u16,
        /// Destination tile (linear index).
        dst_tile: u16,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::GroupTooLarge {
                group,
                ops,
                capacity,
            } => write!(
                f,
                "group {group} has {ops} operators but only {capacity} slots exist"
            ),
            PlaceError::Unroutable { src_tile, dst_tile } => write!(
                f,
                "no fault-free XY/YX route from tile {src_tile} to tile {dst_tile}"
            ),
        }
    }
}

impl std::error::Error for PlaceError {}

/// Per-group placement decision.
#[derive(Clone, Debug)]
pub struct GroupPlacement {
    /// Loop backing this group (`None` = top level).
    pub loop_id: Option<u32>,
    /// Loop nesting depth (0 = top level).
    pub depth: u32,
    /// PEs assigned (linear indices).
    pub pes: Vec<u16>,
    /// Weighted operator count needing PE issue slots.
    pub ops: usize,
    /// Initiation interval implied by the densest PE of the region.
    pub ii: usize,
    /// `PEs × II − ops`: the reshape objective of Fig 8.
    pub waste: i64,
    /// Whether this group is an innermost loop.
    pub innermost: bool,
}

/// Result of placement.
#[derive(Clone, Debug)]
pub struct PlacementResult {
    /// Placement per node.
    pub places: Vec<Placement>,
    /// Mapping group per node.
    pub node_group: Vec<u16>,
    /// Group decisions, indexed by group id.
    pub groups: Vec<GroupPlacement>,
}

/// Computes each node's mapping group: group 0 is the top level, group
/// `l + 1` corresponds to loop `l`.
pub fn node_groups(g: &Cdfg) -> Vec<u16> {
    g.nodes
        .iter()
        .map(|n| match g.block(n.bb).loop_id {
            Some(l) => l.0 as u16 + 1,
            None => 0,
        })
        .collect()
}

fn is_innermost(g: &Cdfg, l: usize) -> bool {
    !g.loops
        .iter()
        .any(|x| x.parent == Some(marionette_cdfg::LoopId(l as u32)))
}

/// True when the node consumes a PE data-plane issue slot under the given
/// options.
pub(crate) fn takes_pe_slot(op: Op, opts: &CompileOptions) -> bool {
    match op {
        Op::Sink | Op::Start => false,
        o if o.is_control() => opts.ctrl == CtrlPlacement::PeSlots,
        o if o.is_memory() => opts.mem == MemPlacement::PeSlots,
        _ => true,
    }
}

/// Fractional issue weight: branch-side operators fire exclusively, so
/// deeper hammock sides weigh less.
pub(crate) fn node_weight(g: &Cdfg, nidx: usize) -> f64 {
    let bd = g.block(g.nodes[nidx].bb).branch_depth;
    1.0 / f64::from(1u32 << bd.min(8))
}

/// Runs placement.
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on the fabric.
pub fn place(g: &Cdfg, opts: &CompileOptions) -> Result<PlacementResult, PlaceError> {
    place_with_faults(g, opts, &FaultSet::none())
}

/// Runs placement on a faulted fabric: dead PEs are excluded from every
/// region (so no operator — data-plane, control-plane or anchor — lands
/// on a dead tile). An empty fault set is bit-identical to [`place`].
///
/// # Errors
/// Returns [`PlaceError`] when the program cannot fit on the live tiles.
pub fn place_with_faults(
    g: &Cdfg,
    opts: &CompileOptions,
    faults: &FaultSet,
) -> Result<PlacementResult, PlaceError> {
    let npes = opts.pe_count();
    let mesh = Mesh::new(opts.rows, opts.cols);
    let node_group = node_groups(g);
    let ngroups = g.loops.len() + 1;

    // Gather per-group slot-taking nodes (weighted).
    let mut group_nodes: Vec<Vec<usize>> = vec![Vec::new(); ngroups];
    let mut group_weight: Vec<f64> = vec![0.0; ngroups];
    for (i, n) in g.nodes.iter().enumerate() {
        if takes_pe_slot(n.op, opts) {
            let grp = node_group[i] as usize;
            group_nodes[grp].push(i);
            group_weight[grp] += node_weight(g, i);
        }
    }

    // ---- region allocation -------------------------------------------
    // Partition the fabric (REVEL splits it; otherwise one region). Dead
    // PEs are removed up front so every region — and every capacity
    // computation below — only sees live tiles.
    let live = |pe: &u16| -> bool { !faults.pe_dead(*pe as usize) };
    let (inner_region, outer_region): (Vec<u16>, Vec<u16>) = match opts.split {
        Some(s) => (
            (0..s.systolic_pes as u16).filter(live).collect(),
            (s.systolic_pes as u16..(s.systolic_pes + s.dataflow_pes) as u16)
                .filter(live)
                .collect(),
        ),
        None => ((0..npes as u16).filter(live).collect(), Vec::new()),
    };
    if inner_region.is_empty() {
        return Err(PlaceError::GroupTooLarge {
            group: 0,
            ops: g.nodes.len(),
            capacity: 0,
        });
    }
    let live_pes = inner_region.len() + outer_region.len();
    // First live PE: the anchor for Start/Sink control-plane residency.
    let anchor = inner_region[0];

    // Group processing order: innermost (deepest) first, as in Fig 8.
    let mut order: Vec<usize> = (0..ngroups).collect();
    let depth_of = |grp: usize| -> u32 {
        if grp == 0 {
            0
        } else {
            g.loops[grp - 1].depth
        }
    };
    order.sort_by_key(|&grp| std::cmp::Reverse(depth_of(grp)));

    let mut groups: Vec<GroupPlacement> = (0..ngroups)
        .map(|grp| GroupPlacement {
            loop_id: if grp == 0 { None } else { Some(grp as u32 - 1) },
            depth: depth_of(grp),
            pes: Vec::new(),
            ops: group_nodes[grp].len(),
            ii: 1,
            waste: 0,
            innermost: grp > 0 && is_innermost(g, grp - 1),
        })
        .collect();

    if opts.agile && opts.split.is_none() {
        // Fig 8: innermost -> outermost, reshape on exhaustion.
        let mut free: Vec<u16> = inner_region.clone();
        let mut placed: Vec<usize> = Vec::new();
        for &grp in &order {
            let w = group_weight[grp].ceil() as usize;
            if w == 0 {
                continue;
            }
            // Grow the free list (by reshaping placed groups) until the
            // group fits within the instruction buffer depth; if reshape
            // is exhausted, share the least-loaded existing region.
            let min_pes = w.div_ceil(opts.slots_per_pe).max(1);
            let mut shared = false;
            while free.len() < min_pes {
                if reshape_until_free(&mut groups, &placed, &mut free, opts).is_err() {
                    let victim = placed
                        .iter()
                        .min_by(|&&a, &&b| {
                            let la = groups[a].ops as f64 / groups[a].pes.len().max(1) as f64;
                            let lb = groups[b].ops as f64 / groups[b].pes.len().max(1) as f64;
                            la.partial_cmp(&lb).unwrap()
                        })
                        .copied()
                        .ok_or(PlaceError::GroupTooLarge {
                            group: grp as u16,
                            ops: w,
                            capacity: live_pes * opts.slots_per_pe,
                        })?;
                    let pes = groups[victim].pes.clone();
                    let ii = w.div_ceil(pes.len().max(1)).max(1);
                    groups[grp].pes = pes;
                    groups[grp].ii = ii;
                    groups[grp].waste = (groups[grp].pes.len() * ii) as i64 - w as i64;
                    placed.push(grp);
                    shared = true;
                    break;
                }
            }
            if shared {
                continue;
            }
            let take = w.min(free.len());
            let ii = w.div_ceil(take);
            groups[grp].pes = free.drain(..take).collect();
            groups[grp].ii = ii;
            groups[grp].waste = (take * ii) as i64 - w as i64;
            placed.push(grp);
        }
    } else if let Some(_s) = opts.split {
        // REVEL: innermost loops on the systolic side, the rest on the
        // tagged-dataflow side.
        for grp in 0..ngroups {
            if group_nodes[grp].is_empty() {
                continue;
            }
            let region = if groups[grp].innermost {
                &inner_region
            } else {
                &outer_region
            };
            groups[grp].pes = region.clone();
            let w = group_weight[grp].ceil() as usize;
            groups[grp].ii = w.div_ceil(region.len().max(1)).max(1);
            groups[grp].waste = (region.len() * groups[grp].ii) as i64 - w as i64;
        }
    } else {
        // Non-agile: every group maps across the whole array and levels
        // time-multiplex through configuration switching.
        for grp in 0..ngroups {
            if group_nodes[grp].is_empty() {
                continue;
            }
            groups[grp].pes = inner_region.clone();
            let w = group_weight[grp].ceil() as usize;
            let n = inner_region.len();
            groups[grp].ii = w.div_ceil(n).max(1);
            groups[grp].waste = (n * groups[grp].ii) as i64 - w as i64;
        }
    }

    // ---- node assignment ----------------------------------------------
    // Single pass in node-id order (the builder emits producers before
    // consumers), placing data-plane and control-plane operators with the
    // same producer-affinity heuristic. Control parts track their own
    // load: a Marionette PE issues one control operator per cycle in
    // parallel with its FU.
    let mut places: Vec<Placement> = vec![Placement::CtrlPlane { pe: anchor }; g.nodes.len()];
    let mut pe_load: Vec<f64> = vec![0.0; npes];
    let mut ctrl_load: Vec<f64> = vec![0.0; npes];
    let mut mem_unit_rr: u8 = 0;

    let pick_tile =
        |region: &[u16], load: &[f64], places: &[Placement], g: &Cdfg, nidx: usize| -> u16 {
            let mut best = region[0];
            let mut best_key = (i64::MAX, usize::MAX, u16::MAX);
            for &pe in region {
                // Quantize load so producer affinity wins among
                // comparably-loaded tiles.
                let lq = (load[pe as usize] * 2.0).round() as i64;
                let dist: usize = g.nodes[nidx]
                    .inputs
                    .iter()
                    .filter_map(|s| match s {
                        PortSrc::Node(p) => places[p.0 as usize]
                            .pe()
                            .map(|src_pe| mesh.hops(src_pe as usize, pe as usize)),
                        _ => None,
                    })
                    .sum();
                let key = (lq, dist, pe);
                if key < best_key {
                    best_key = key;
                    best = pe;
                }
            }
            best
        };

    for (i, n) in g.nodes.iter().enumerate() {
        let grp = node_group[i] as usize;
        let region: &[u16] = if groups[grp].pes.is_empty() {
            &inner_region
        } else {
            &groups[grp].pes
        };
        if takes_pe_slot(n.op, opts) {
            let best = pick_tile(region, &pe_load, &places, g, i);
            pe_load[best as usize] += node_weight(g, i);
            places[i] = Placement::Pe { pe: best };
            continue;
        }
        match n.op {
            Op::Start | Op::Sink => {
                places[i] = Placement::CtrlPlane { pe: anchor };
            }
            o if o.is_memory() => {
                if let MemPlacement::StreamUnits { count } = opts.mem {
                    places[i] = Placement::MemUnit {
                        unit: mem_unit_rr % count,
                    };
                    mem_unit_rr = mem_unit_rr.wrapping_add(1);
                } else {
                    unreachable!("memory on PE slots is handled above");
                }
            }
            _ => {
                let best = pick_tile(region, &ctrl_load, &places, g, i);
                ctrl_load[best as usize] += node_weight(g, i);
                places[i] = match opts.ctrl {
                    CtrlPlacement::CtrlPlane => Placement::CtrlPlane { pe: best },
                    CtrlPlacement::NetSwitches => Placement::NetSwitch { sw: best },
                    CtrlPlacement::PeSlots => unreachable!("handled above"),
                };
            }
        }
    }

    Ok(PlacementResult {
        places,
        node_group,
        groups,
    })
}

/// Bumps the II of the placed group whose reshape wastes the least,
/// releasing PEs back to the free list (the inner `reshape` loop of the
/// Fig 8 pseudo-code).
fn reshape_until_free(
    groups: &mut [GroupPlacement],
    placed: &[usize],
    free: &mut Vec<u16>,
    opts: &CompileOptions,
) -> Result<(), PlaceError> {
    let mut best: Option<(usize, usize, i64)> = None; // (group, new_ii, waste)
    for &grp in placed {
        let gi = &groups[grp];
        let w = gi.ops.max(1);
        let mut ii = gi.ii + 1;
        while ii <= opts.slots_per_pe {
            let need = w.div_ceil(ii);
            if need < gi.pes.len() {
                let waste = (need * ii) as i64 - w as i64;
                if best.is_none_or(|(_, _, bw)| waste < bw) {
                    best = Some((grp, ii, waste));
                }
                break;
            }
            ii += 1;
        }
    }
    let Some((grp, ii, waste)) = best else {
        return Err(PlaceError::GroupTooLarge {
            group: 0,
            ops: 0,
            capacity: 0,
        });
    };
    let w = groups[grp].ops.max(1);
    let need = w.div_ceil(ii);
    let released: Vec<u16> = groups[grp].pes.drain(need..).collect();
    free.extend(released);
    groups[grp].ii = ii;
    groups[grp].waste = waste;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use marionette_cdfg::builder::CdfgBuilder;

    fn nest(depth_sizes: &[i32]) -> Cdfg {
        // builds a nest of counted loops with `k` adds per level
        fn level(
            b: &mut CdfgBuilder,
            sizes: &[i32],
            acc: marionette_cdfg::V,
        ) -> marionette_cdfg::V {
            if sizes.is_empty() {
                return acc;
            }
            let n = sizes[0];
            let rest: Vec<i32> = sizes[1..].to_vec();
            let out = b.for_range(0, n, &[acc], |b, i, v| {
                let t = b.add(v[0], i);
                let u = b.mul(t, 3.into());
                let deeper = level(b, &rest, u);
                vec![deeper]
            });
            out[0]
        }
        let mut b = CdfgBuilder::new("nest");
        let zero = b.imm(0);
        let r = level(&mut b, depth_sizes, zero);
        b.sink("r", r);
        b.finish()
    }

    #[test]
    fn agile_gives_disjoint_regions() {
        let g = nest(&[4, 4, 4]);
        let opts = CompileOptions::marionette_4x4();
        let r = place(&g, &opts).unwrap();
        let mut seen = std::collections::HashSet::new();
        for gp in &r.groups {
            for &pe in &gp.pes {
                assert!(seen.insert(pe), "pe {pe} in two regions");
            }
        }
        // innermost loop must be placed
        assert!(r.groups.iter().any(|gp| gp.innermost && !gp.pes.is_empty()));
    }

    #[test]
    fn non_agile_shares_whole_array() {
        let g = nest(&[4, 4]);
        let mut opts = CompileOptions::marionette_4x4();
        opts.agile = false;
        let r = place(&g, &opts).unwrap();
        for gp in &r.groups {
            if gp.ops > 0 {
                assert_eq!(gp.pes.len(), 16);
            }
        }
    }

    #[test]
    fn waste_is_nonnegative() {
        let g = nest(&[4, 4, 4]);
        let r = place(&g, &CompileOptions::marionette_4x4()).unwrap();
        for gp in &r.groups {
            assert!(gp.waste >= 0, "waste must be non-negative");
            if !gp.pes.is_empty() {
                assert!(gp.ii >= 1);
            }
        }
    }

    #[test]
    fn every_node_placed_in_its_region() {
        let g = nest(&[4, 4]);
        let opts = CompileOptions::marionette_4x4();
        let r = place(&g, &opts).unwrap();
        for (i, n) in g.nodes.iter().enumerate() {
            if takes_pe_slot(n.op, &opts) {
                let grp = r.node_group[i] as usize;
                let pe = r.places[i].pe().unwrap();
                assert!(
                    r.groups[grp].pes.contains(&pe),
                    "node {i} outside its group region"
                );
            }
        }
    }

    #[test]
    fn reshape_triggers_on_wide_programs() {
        // Three levels with lots of ops force reshaping on a 2x2 fabric.
        let g = nest(&[3, 3, 3, 3, 3]);
        let mut opts = CompileOptions::marionette_4x4();
        opts.rows = 2;
        opts.cols = 2;
        opts.slots_per_pe = 64;
        let r = place(&g, &opts).unwrap();
        assert!(r.groups.iter().any(|gp| gp.ii > 1), "somebody reshaped");
    }

    #[test]
    fn dead_pes_are_excluded_from_every_region() {
        let g = nest(&[4, 4]);
        let opts = CompileOptions::marionette_4x4();
        let mut faults = FaultSet::new(4, 4);
        faults.add("pe:0,0".parse().unwrap()).unwrap();
        faults.add("pe:1,2".parse().unwrap()).unwrap();
        let r = place_with_faults(&g, &opts, &faults).unwrap();
        for (i, p) in r.places.iter().enumerate() {
            if let Some(pe) = p.pe() {
                assert!(
                    !faults.pe_dead(pe as usize),
                    "node {i} placed on dead pe {pe}"
                );
            }
            if let Placement::CtrlPlane { pe } = p {
                assert!(!faults.pe_dead(*pe as usize), "ctrl node {i} on dead pe");
            }
        }
        for gp in &r.groups {
            assert!(gp.pes.iter().all(|&pe| !faults.pe_dead(pe as usize)));
        }
    }

    #[test]
    fn empty_fault_set_is_bit_identical() {
        let g = nest(&[4, 4, 4]);
        let opts = CompileOptions::marionette_4x4();
        let a = place(&g, &opts).unwrap();
        let b = place_with_faults(&g, &opts, &FaultSet::none()).unwrap();
        assert_eq!(a.places, b.places);
        assert_eq!(a.node_group, b.node_group);
    }

    #[test]
    fn all_dead_fabric_is_a_typed_error() {
        let g = nest(&[4]);
        let mut opts = CompileOptions::marionette_4x4();
        opts.rows = 1;
        opts.cols = 2;
        let mut faults = FaultSet::new(1, 2);
        faults.add("pe:0,0".parse().unwrap()).unwrap();
        faults.add("pe:0,1".parse().unwrap()).unwrap();
        let err = place_with_faults(&g, &opts, &faults).unwrap_err();
        assert!(matches!(err, PlaceError::GroupTooLarge { capacity: 0, .. }));
    }

    #[test]
    fn split_fabric_separates_inner_from_outer() {
        let g = nest(&[4, 4]);
        let mut opts = CompileOptions::marionette_4x4();
        opts.agile = false;
        opts.split = Some(crate::options::SplitFabric {
            systolic_pes: 15,
            dataflow_pes: 1,
        });
        let r = place(&g, &opts).unwrap();
        let inner = r.groups.iter().find(|gp| gp.innermost).unwrap();
        assert!(inner.pes.iter().all(|&pe| pe < 15));
        let outer = r
            .groups
            .iter()
            .find(|gp| !gp.innermost && gp.ops > 0)
            .unwrap();
        assert_eq!(outer.pes, vec![15]);
    }
}
