//! # marionette-compiler
//!
//! The mapping pipeline of the Marionette stack: a CDFG program becomes a
//! placed, routed and configured [`MachineProgram`]:
//!
//! 1. [`place`]: the Marionette scheduling algorithm (Fig 8) — mapping
//!    groups per loop level, innermost first, with reshape/time-extension
//!    minimizing `PE_waste` (**Agile PE Assignment**), or whole-array
//!    time multiplexing for baseline architectures;
//! 2. [`route`]: dimension-ordered mesh paths for data edges; control
//!    edges classed for the CS-Benes control network, with a static
//!    feasibility check of the multicast sets;
//! 3. [`compile`]: operand selector resolution, per-PE instruction buffer
//!    generation with Control Flow Sender modes (DFG / Branch / Loop,
//!    Fig 7a), and a [`CompileReport`] the evaluation harness consumes.

#![warn(missing_docs)]

pub mod options;
pub mod pipeline;
pub mod place;
pub mod route;

pub use options::{CompileOptions, CtrlPlacement, MemPlacement, SplitFabric};
pub use pipeline::{compile, CompileReport};
pub use place::{place, PlaceError, PlacementResult};
pub use route::route;
