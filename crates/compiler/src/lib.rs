//! # marionette-compiler
//!
//! The mapping pipeline of the Marionette stack: a CDFG program becomes a
//! placed, routed and configured [`marionette_isa::MachineProgram`]:
//!
//! 1. [`place()`]: the Marionette scheduling algorithm (Fig 8) — mapping
//!    groups per loop level, innermost first, with reshape/time-extension
//!    minimizing `PE_waste` (**Agile PE Assignment**), or whole-array
//!    time multiplexing for baseline architectures;
//! 2. [`route()`]: dimension-ordered mesh paths for data edges; control
//!    edges classed for the CS-Benes control network, with a static
//!    feasibility check of the multicast sets;
//! 3. [`compile()`]: operand selector resolution, per-PE instruction buffer
//!    generation with Control Flow Sender modes (DFG / Branch / Loop,
//!    Fig 7a), and a [`CompileReport`] the evaluation harness consumes.
//!
//! A nonzero [`SearchBudget`] replaces steps 1–2 with the iterative
//! **mapping explorer**: simulated-annealing placement search under a
//! timing-derived [`cost::CostModel`] ([`explore`]) plus congestion-aware
//! rip-up-and-reroute ([`route::route_congestion_aware`]). The default
//! ([`SearchBudget::Off`]) keeps the one-shot pipeline bit-compatible
//! with the seed mappings.

//!
//! Fabric geometry is parametric ([`FabricDims`]), and rectangular
//! [`partition::Partition`] regions of one fabric can host independent
//! tenants — the spatial-sharding substrate behind multi-kernel
//! tenancy (see `docs/PARTITIONING.md`):
//!
//! ```
//! use marionette_compiler::{FabricDims, Partition, PartitionMap};
//!
//! // A 16x16 fabric sharded into four 8x8 partitions.
//! let map = PartitionMap::grid(FabricDims::new(16, 16), 8, 8)?;
//! assert_eq!(map.len(), 4);
//! let p: Partition = "8x8@0,8".parse()?;
//! assert_eq!(map.parts()[1], p);
//! // A tenant's control timing derives from the partition's own
//! // corner distance, not the host fabric's:
//! assert_eq!(p.dims().corner_hops(), 14);
//! assert_eq!(FabricDims::new(16, 16).corner_hops(), 30);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod explore;
pub mod options;
pub mod partition;
pub mod pipeline;
pub mod place;
pub mod route;

pub use cost::{CostModel, MappingCost};
pub use explore::{
    explore_chain, explore_chain_with_faults, select_best, ExploreResult, SearchReport,
};
pub use options::{
    CompileOptions, CtrlPlacement, FabricDims, MemPlacement, SearchBudget, SplitFabric,
};
pub use partition::{Partition, PartitionError, PartitionMap};
pub use pipeline::{
    compile, compile_with_faults, compile_with_timing, compile_with_timing_and_faults,
    compile_with_timing_and_region, finalize_explored, finalize_explored_with_faults,
    CompileReport,
};
pub use place::{place, place_with_faults, PlaceError, PlacementResult};
pub use route::route;
