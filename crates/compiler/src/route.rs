//! Routing: turns CDFG edges into physical [`Route`]s.
//!
//! Data edges take dimension-ordered mesh paths between the producer's
//! and consumer's tiles. Control edges (predicates, steering decisions,
//! loop state, ordering tokens) are classed [`RouteClass::Ctrl`]; on
//! architectures with the dedicated CS-Benes control network they ride
//! it point-to-point in one cycle, otherwise the simulator sends them
//! over the mesh (or through the CCU). The control multicast sets are
//! checked against the CS-Benes capacity here, reproducing the static
//! no-arbitration configuration of Fig 6.

use crate::place::PlaceError;
use marionette_cdfg::graph::{Cdfg, PortSrc};
use marionette_cdfg::Op;
use marionette_isa::{Placement, Route, RouteClass};
use marionette_net::{CsBenesNetwork, Mesh};
use marionette_sim::FaultSet;
use std::collections::HashMap;

/// Congestion score surcharge that makes a dead link strictly worse than
/// any congested-but-alive alternative during rip-up.
const DEAD_LINK_PENALTY: f64 = 1e18;

/// True when every mesh link of `path` survives the fault set.
fn path_is_clean(mesh: &Mesh, path: &[u16], faults: &FaultSet) -> bool {
    match mesh.links_of_path(path) {
        Some(links) => links.iter().all(|l| !faults.link_dead(l.0 as usize)),
        None => false,
    }
}

/// True when a destination port carries control information rather than
/// an operand value.
pub fn is_ctrl_port(op: Op, port: usize) -> bool {
    match op {
        Op::Steer { .. } | Op::Merge { .. } | Op::Gate => port == 0,
        Op::Carry => port == 0,
        Op::Inv => port == 1,
        // Optional memory-ordering tokens are control events.
        Op::Load(_) => port == 1,
        Op::Store(_) => port == 2,
        _ => false,
    }
}

/// Computes the set of *entry steers*: loop-control steers whose output
/// feeds loop state (carry initial values or invariant holds). Transfers
/// into them are the architectural loop-activation/configuration events —
/// the transfers the paper's Fig 3d/3f charge with CCU round trips or
/// data-path detours.
pub fn entry_steers(g: &Cdfg) -> std::collections::HashSet<u32> {
    let consumers = g.consumers();
    let mut out = std::collections::HashSet::new();
    for (id, n) in g.iter_nodes() {
        if !matches!(n.op, Op::Steer { .. }) {
            continue;
        }
        let feeds_state = consumers[id.0 as usize]
            .iter()
            .any(|&(c, port)| matches!((g.node(c).op, port), (Op::Carry, 1) | (Op::Inv, 0)));
        if feeds_state {
            out.insert(id.0);
        }
    }
    out
}

/// Operand-port → route-table-index map keyed by (node id, port).
type PortRouteMap = HashMap<(u32, u8), u32>;

/// Result of routing.
#[derive(Clone, Debug)]
pub struct RoutingResult {
    /// The route table (order matches discovery order).
    pub routes: Vec<Route>,
    /// Per-node operand selectors referencing the route table
    /// (`None` entries for non-edge ports are filled by configgen).
    pub port_route: HashMap<(u32, u8), u32>,
    /// Whether the control multicast sets fit the CS-Benes network in one
    /// static configuration.
    pub ctrl_net_fits: bool,
    /// Total control fan-out demanded of the control network.
    pub ctrl_fanout: usize,
}

/// Builds the route table with XY paths (shared by both routers). With a
/// non-empty fault set, a route whose XY path crosses a dead link falls
/// back to YX; if both dimension orders are blocked the edge is
/// unroutable (cluster-internal edges keep their path regardless — they
/// never send flits, so a dead link on them is harmless).
fn build_routes(
    g: &Cdfg,
    places: &[Placement],
    mesh: &Mesh,
    faults: &FaultSet,
) -> Result<(Vec<Route>, PortRouteMap), PlaceError> {
    let mut routes = Vec::new();
    let mut port_route = HashMap::new();
    let entries = entry_steers(g);
    let header_bb = if faults.is_empty() {
        Vec::new()
    } else {
        crate::cost::header_blocks(g)
    };
    for (i, n) in g.nodes.iter().enumerate() {
        for (port, src) in n.inputs.iter().enumerate() {
            let PortSrc::Node(p) = src else { continue };
            let src_tile = places[p.0 as usize].tile() as usize;
            let dst_tile = places[i].tile() as usize;
            let class = if is_ctrl_port(n.op, port) || g.node(*p).op.is_control() {
                RouteClass::Ctrl
            } else {
                RouteClass::Data
            };
            // Loop activation: a transfer from outside the loop header
            // into an entry steer (new loop configuration/state).
            let activation = entries.contains(&(i as u32)) && g.node(*p).bb != n.bb;
            let dynamic = activation
                && g.block(n.bb)
                    .loop_id
                    .map(|l| g.loop_info(l).dynamic_bounds)
                    .unwrap_or(false);
            let path = if src_tile == dst_tile {
                vec![src_tile as u16]
            } else if faults.is_empty() {
                mesh.path_tiles(src_tile, dst_tile)
            } else {
                let xy = mesh.path_tiles(src_tile, dst_tile);
                if path_is_clean(mesh, &xy, faults)
                    || crate::cost::is_cluster_internal(g, &header_bb, p.0 as usize, i)
                {
                    xy
                } else {
                    let yx = mesh.path_tiles_yx(src_tile, dst_tile);
                    if path_is_clean(mesh, &yx, faults) {
                        yx
                    } else {
                        return Err(PlaceError::Unroutable {
                            src_tile: src_tile as u16,
                            dst_tile: dst_tile as u16,
                        });
                    }
                }
            };
            let id = routes.len() as u32;
            routes.push(Route {
                src: p.0,
                dst: i as u32,
                dst_port: port as u8,
                class,
                activation,
                dynamic,
                path,
            });
            port_route.insert((i as u32, port as u8), id);
        }
    }
    Ok((routes, port_route))
}

/// Control-network feasibility: groups ctrl routes by source tile,
/// collects distinct destination tiles, and checks the multicast sets
/// against the CS-Benes capacity.
fn ctrl_feasibility(routes: &[Route], mesh: &Mesh) -> (bool, usize) {
    let mut casts: HashMap<usize, std::collections::BTreeSet<usize>> = HashMap::new();
    for r in routes {
        if r.class == RouteClass::Ctrl {
            let s = *r.path.first().unwrap() as usize;
            let d = *r.path.last().unwrap() as usize;
            if s != d {
                casts.entry(s).or_default().insert(d);
            }
        }
    }
    let ctrl_fanout: usize = casts.values().map(|d| d.len()).sum();
    // Control-network sizing is derived from the fabric width: four
    // internal lines per PE endpoint (64 lines on the paper's 4×4).
    let net = CsBenesNetwork::for_fabric(mesh.pe_count());
    let lines = net.lines();
    // Destinations may be shared between sources over time; the static
    // check below conservatively requires single-driver outputs, so fall
    // back to fan-out capacity when that fails (time-shared inputs).
    let cast_vec: Vec<(usize, Vec<usize>)> = casts
        .iter()
        .map(|(&s, d)| (s, d.iter().copied().collect()))
        .collect();
    let ctrl_net_fits = net.route(&cast_vec).is_ok() || ctrl_fanout <= lines;
    (ctrl_net_fits, ctrl_fanout)
}

/// Routes every node-sourced edge of the program.
pub fn route(g: &Cdfg, places: &[Placement], mesh: &Mesh) -> RoutingResult {
    route_with_faults(g, places, mesh, &FaultSet::none())
        .expect("routing is infallible without faults")
}

/// Routes every node-sourced edge, detouring flit-carrying routes around
/// the fault set's dead links (XY first, YX fallback). An empty fault
/// set is bit-identical to [`route`].
///
/// # Errors
/// Returns [`PlaceError::Unroutable`] when neither dimension order
/// between a producer/consumer tile pair avoids the dead links.
pub fn route_with_faults(
    g: &Cdfg,
    places: &[Placement],
    mesh: &Mesh,
    faults: &FaultSet,
) -> Result<RoutingResult, PlaceError> {
    let (routes, port_route) = build_routes(g, places, mesh, faults)?;
    let (ctrl_net_fits, ctrl_fanout) = ctrl_feasibility(&routes, mesh);
    Ok(RoutingResult {
        routes,
        port_route,
        ctrl_net_fits,
        ctrl_fanout,
    })
}

/// Congestion-aware rip-up-and-reroute: starts from the XY route table
/// and iteratively re-chooses each multi-hop route between its two
/// dimension orders (XY / YX) to minimize quadratic link load, weighting
/// each route by the cost model's firing-frequency estimate. The pass
/// structure is deterministic (route-table order, XY on ties), so the
/// result is a pure function of the placement.
///
/// Returns the routing plus how many routes ended up off the XY default.
pub fn route_congestion_aware(
    g: &Cdfg,
    places: &[Placement],
    mesh: &Mesh,
    cm: &crate::cost::CostModel,
    passes: usize,
) -> (RoutingResult, usize) {
    route_congestion_aware_with_faults(g, places, mesh, cm, passes, &FaultSet::none())
        .expect("routing is infallible without faults")
}

/// Fault-aware rip-up router: like [`route_congestion_aware`], but dead
/// links carry a prohibitive score surcharge and flaky links are
/// penalized by the extra stall cycles the simulator will charge
/// (`weight × link_latency × (mult − 1)`), steering traffic away from
/// degraded links when a clean alternative exists. An empty fault set is
/// bit-identical to [`route_congestion_aware`].
///
/// # Errors
/// Returns [`PlaceError::Unroutable`] when neither dimension order
/// between a producer/consumer tile pair avoids the dead links.
pub fn route_congestion_aware_with_faults(
    g: &Cdfg,
    places: &[Placement],
    mesh: &Mesh,
    cm: &crate::cost::CostModel,
    passes: usize,
    faults: &FaultSet,
) -> Result<(RoutingResult, usize), PlaceError> {
    let have_faults = !faults.is_empty();
    let (mut routes, port_route) = build_routes(g, places, mesh, faults)?;
    let depths = crate::cost::node_depths(g);
    // Loop-unit-internal edges are combinational in the simulator (no
    // flit is ever sent): they must neither seed the load map nor be
    // rerouted, exactly as the explorer's cost model excludes them.
    let header_bb = crate::cost::header_blocks(g);
    let carries_flits = |r: &Route| -> bool {
        !crate::cost::is_cluster_internal(g, &header_bb, r.src as usize, r.dst as usize)
    };

    // Candidates: multi-hop routes that actually ride the mesh, with
    // both dimension-order paths and a traffic weight.
    struct Cand {
        route: usize,
        w: f64,
        xy: Vec<u16>,
        yx: Vec<u16>,
        use_yx: bool,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (ri, r) in routes.iter().enumerate() {
        if r.path.len() <= 2 {
            continue; // 0/1 hop: both orders identical
        }
        if r.class == RouteClass::Ctrl && !cm.ctrl_on_mesh {
            continue; // rides the dedicated network; path is irrelevant
        }
        if !carries_flits(r) {
            continue; // loop-unit internal register, never on the mesh
        }
        let (s, d) = (r.path[0] as usize, *r.path.last().unwrap() as usize);
        let w = cm.freq_weight(depths[r.src as usize].min(depths[r.dst as usize]));
        let xy = mesh.path_tiles(s, d);
        // The builder already fell back to YX when XY crossed a dead
        // link; start the rip-up from that same choice.
        let use_yx = have_faults && !path_is_clean(mesh, &xy, faults);
        cands.push(Cand {
            route: ri,
            w,
            xy,
            yx: mesh.path_tiles_yx(s, d),
            use_yx,
        });
    }

    let mut load = vec![0.0f64; mesh.link_id_space()];
    let path_links = |mesh: &Mesh, path: &[u16], f: &mut dyn FnMut(usize)| {
        for w in path.windows(2) {
            let mut done = false;
            mesh.for_each_xy_link(w[0] as usize, w[1] as usize, |l| {
                debug_assert!(!done, "adjacent tiles yield one link");
                done = true;
                f(l.0 as usize);
            });
        }
    };
    // Seed the load map from *every* mesh-riding route: single-hop
    // routes cannot change dimension order, but they still congest the
    // links the candidates are scored against — omitting them would let
    // a rip-up move traffic onto an already-saturated link it cannot
    // see.
    let mut is_cand = vec![false; routes.len()];
    for c in &cands {
        is_cand[c.route] = true;
    }
    for (ri, r) in routes.iter().enumerate() {
        if is_cand[ri] || r.path.len() < 2 {
            continue;
        }
        if r.class == RouteClass::Ctrl && !cm.ctrl_on_mesh {
            continue;
        }
        if !carries_flits(r) {
            continue;
        }
        let w = cm.freq_weight(depths[r.src as usize].min(depths[r.dst as usize]));
        path_links(mesh, &r.path, &mut |l| load[l] += w);
    }
    for c in &cands {
        let seed: &[u16] = if c.use_yx { &c.yx } else { &c.xy };
        path_links(mesh, seed, &mut |l| load[l] += c.w);
    }
    // Rip-up passes: re-choose each candidate against the current loads.
    let mut moved = 0usize;
    for _ in 0..passes.max(1) {
        moved = 0;
        for c in cands.iter_mut() {
            let w = c.w;
            let cur: &[u16] = if c.use_yx { &c.yx } else { &c.xy };
            path_links(mesh, cur, &mut |l| load[l] -= w);
            let score = |path: &[u16], load: &[f64]| -> f64 {
                let mut s = 0.0;
                path_links(mesh, path, &mut |l| {
                    let mut term = (load[l] + w) * (load[l] + w);
                    if have_faults {
                        if faults.link_dead(l) {
                            term += DEAD_LINK_PENALTY;
                        } else {
                            let m = faults.link_mult(l);
                            if m > 1 {
                                term += w * crate::cost::flaky_extra(cm.link_latency, m);
                            }
                        }
                    }
                    s += term;
                });
                s
            };
            // Ties keep XY, the bit-stable default.
            let use_yx = score(&c.yx, &load) + 1e-12 < score(&c.xy, &load);
            c.use_yx = use_yx;
            let new: &[u16] = if use_yx { &c.yx } else { &c.xy };
            path_links(mesh, new, &mut |l| load[l] += w);
            if use_yx {
                moved += 1;
            }
        }
    }
    for c in &cands {
        let chosen: &[u16] = if c.use_yx { &c.yx } else { &c.xy };
        if routes[c.route].path != *chosen {
            routes[c.route].path = chosen.to_vec();
        }
    }

    let (ctrl_net_fits, ctrl_fanout) = ctrl_feasibility(&routes, mesh);
    Ok((
        RoutingResult {
            routes,
            port_route,
            ctrl_net_fits,
            ctrl_fanout,
        },
        moved,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompileOptions;
    use crate::place::place;
    use marionette_cdfg::builder::CdfgBuilder;

    fn simple() -> Cdfg {
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let zero = b.imm(0);
        let out = b.for_range(0, 8, &[zero], |b, i, v| {
            let x = b.load(a, i);
            let c = b.gt(x, 4.into());
            let r = b.if_else(c, |b| vec![b.add(v[0], x)], |_| vec![v[0]]);
            vec![r[0]]
        });
        b.sink("s", out[0]);
        b.finish()
    }

    #[test]
    fn routes_cover_all_node_edges() {
        let g = simple();
        let opts = CompileOptions::marionette_4x4();
        let pl = place(&g, &opts).unwrap();
        let mesh = Mesh::new(4, 4);
        let r = route(&g, &pl.places, &mesh);
        let expected: usize = g
            .nodes
            .iter()
            .map(|n| {
                n.inputs
                    .iter()
                    .filter(|s| matches!(s, PortSrc::Node(_)))
                    .count()
            })
            .sum();
        assert_eq!(r.routes.len(), expected);
        for (ri, route) in r.routes.iter().enumerate() {
            assert!(!route.path.is_empty(), "route {ri} has empty path");
        }
    }

    #[test]
    fn predicate_edges_are_ctrl_class() {
        let g = simple();
        let opts = CompileOptions::marionette_4x4();
        let pl = place(&g, &opts).unwrap();
        let mesh = Mesh::new(4, 4);
        let r = route(&g, &pl.places, &mesh);
        let has_ctrl = r.routes.iter().any(|x| x.class == RouteClass::Ctrl);
        let has_data = r.routes.iter().any(|x| x.class == RouteClass::Data);
        assert!(has_ctrl && has_data);
        // steers' port 0 is always ctrl
        for route in &r.routes {
            let n = &g.nodes[route.dst as usize];
            if matches!(n.op, Op::Steer { .. }) && route.dst_port == 0 {
                assert_eq!(route.class, RouteClass::Ctrl);
            }
        }
    }

    #[test]
    fn activation_edges_marked() {
        let g = simple();
        let opts = CompileOptions::marionette_4x4();
        let pl = place(&g, &opts).unwrap();
        let mesh = Mesh::new(4, 4);
        let r = route(&g, &pl.places, &mesh);
        assert!(r.routes.iter().any(|x| x.activation), "carry init edges");
    }

    /// A graph with a single mesh route, pinned to a diagonal tile pair
    /// so its XY and YX paths start over different links.
    fn pinned_diagonal() -> (Cdfg, Vec<Placement>) {
        let mut b = CdfgBuilder::new("d");
        let x = b.imm(1);
        let y = b.add(x, x);
        b.sink("r", y);
        let g = b.finish();
        let opts = CompileOptions::marionette_4x4();
        let pl = place(&g, &opts).unwrap();
        let mut places = pl.places;
        for (i, n) in g.nodes.iter().enumerate() {
            if matches!(n.op, Op::Bin(_)) {
                // Diagonal from the tile-0 Sink anchor: XY goes west
                // first (5 -> 4 -> 0), YX goes north first (5 -> 1 -> 0).
                places[i] = Placement::Pe { pe: 5 };
            }
        }
        (g, places)
    }

    #[test]
    fn dead_link_forces_detour() {
        let (g, places) = pinned_diagonal();
        let mesh = Mesh::new(4, 4);
        let mut faults = FaultSet::new(4, 4);
        faults
            .add(marionette_sim::FaultSpec::DeadLink {
                from: (1, 1),
                to: (1, 0),
            })
            .unwrap();
        let rr = route_with_faults(&g, &places, &mesh, &faults).unwrap();
        for q in &rr.routes {
            assert!(
                path_is_clean(&mesh, &q.path, &faults),
                "route {} -> {} crosses the dead link",
                q.src,
                q.dst
            );
        }
        // The add -> sink route must have taken the YX detour.
        let detoured = rr
            .routes
            .iter()
            .find(|q| q.path.first() == Some(&5))
            .unwrap();
        assert_eq!(detoured.path, vec![5, 1, 0]);
    }

    #[test]
    fn fully_blocked_pair_is_unroutable() {
        let (g, places) = pinned_diagonal();
        let mesh = Mesh::new(4, 4);
        let mut faults = FaultSet::new(4, 4);
        for to in [(1, 0), (0, 1)] {
            faults
                .add(marionette_sim::FaultSpec::DeadLink { from: (1, 1), to })
                .unwrap();
        }
        let err = route_with_faults(&g, &places, &mesh, &faults).unwrap_err();
        assert!(
            matches!(
                err,
                PlaceError::Unroutable {
                    src_tile: 5,
                    dst_tile: 0
                }
            ),
            "{err}"
        );
    }
}
