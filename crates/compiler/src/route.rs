//! Routing: turns CDFG edges into physical [`Route`]s.
//!
//! Data edges take dimension-ordered mesh paths between the producer's
//! and consumer's tiles. Control edges (predicates, steering decisions,
//! loop state, ordering tokens) are classed [`RouteClass::Ctrl`]; on
//! architectures with the dedicated CS-Benes control network they ride
//! it point-to-point in one cycle, otherwise the simulator sends them
//! over the mesh (or through the CCU). The control multicast sets are
//! checked against the CS-Benes capacity here, reproducing the static
//! no-arbitration configuration of Fig 6.

use marionette_cdfg::graph::{Cdfg, PortSrc};
use marionette_cdfg::Op;
use marionette_isa::{Placement, Route, RouteClass};
use marionette_net::{CsBenesNetwork, Mesh};
use std::collections::HashMap;

/// True when a destination port carries control information rather than
/// an operand value.
pub fn is_ctrl_port(op: Op, port: usize) -> bool {
    match op {
        Op::Steer { .. } | Op::Merge { .. } | Op::Gate => port == 0,
        Op::Carry => port == 0,
        Op::Inv => port == 1,
        // Optional memory-ordering tokens are control events.
        Op::Load(_) => port == 1,
        Op::Store(_) => port == 2,
        _ => false,
    }
}

/// Computes the set of *entry steers*: loop-control steers whose output
/// feeds loop state (carry initial values or invariant holds). Transfers
/// into them are the architectural loop-activation/configuration events —
/// the transfers the paper's Fig 3d/3f charge with CCU round trips or
/// data-path detours.
pub fn entry_steers(g: &Cdfg) -> std::collections::HashSet<u32> {
    let consumers = g.consumers();
    let mut out = std::collections::HashSet::new();
    for (id, n) in g.iter_nodes() {
        if !matches!(n.op, Op::Steer { .. }) {
            continue;
        }
        let feeds_state = consumers[id.0 as usize]
            .iter()
            .any(|&(c, port)| matches!((g.node(c).op, port), (Op::Carry, 1) | (Op::Inv, 0)));
        if feeds_state {
            out.insert(id.0);
        }
    }
    out
}

/// Result of routing.
#[derive(Clone, Debug)]
pub struct RoutingResult {
    /// The route table (order matches discovery order).
    pub routes: Vec<Route>,
    /// Per-node operand selectors referencing the route table
    /// (`None` entries for non-edge ports are filled by configgen).
    pub port_route: HashMap<(u32, u8), u32>,
    /// Whether the control multicast sets fit the CS-Benes network in one
    /// static configuration.
    pub ctrl_net_fits: bool,
    /// Total control fan-out demanded of the control network.
    pub ctrl_fanout: usize,
}

/// Builds the route table with XY paths (shared by both routers).
fn build_routes(
    g: &Cdfg,
    places: &[Placement],
    mesh: &Mesh,
) -> (Vec<Route>, HashMap<(u32, u8), u32>) {
    let mut routes = Vec::new();
    let mut port_route = HashMap::new();
    let entries = entry_steers(g);
    for (i, n) in g.nodes.iter().enumerate() {
        for (port, src) in n.inputs.iter().enumerate() {
            let PortSrc::Node(p) = src else { continue };
            let src_tile = places[p.0 as usize].tile() as usize;
            let dst_tile = places[i].tile() as usize;
            let class = if is_ctrl_port(n.op, port) || g.node(*p).op.is_control() {
                RouteClass::Ctrl
            } else {
                RouteClass::Data
            };
            // Loop activation: a transfer from outside the loop header
            // into an entry steer (new loop configuration/state).
            let activation = entries.contains(&(i as u32)) && g.node(*p).bb != n.bb;
            let dynamic = activation
                && g.block(n.bb)
                    .loop_id
                    .map(|l| g.loop_info(l).dynamic_bounds)
                    .unwrap_or(false);
            let path = if src_tile == dst_tile {
                vec![src_tile as u16]
            } else {
                mesh.path_tiles(src_tile, dst_tile)
            };
            let id = routes.len() as u32;
            routes.push(Route {
                src: p.0,
                dst: i as u32,
                dst_port: port as u8,
                class,
                activation,
                dynamic,
                path,
            });
            port_route.insert((i as u32, port as u8), id);
        }
    }
    (routes, port_route)
}

/// Control-network feasibility: groups ctrl routes by source tile,
/// collects distinct destination tiles, and checks the multicast sets
/// against the CS-Benes capacity.
fn ctrl_feasibility(routes: &[Route], mesh: &Mesh) -> (bool, usize) {
    let mut casts: HashMap<usize, std::collections::BTreeSet<usize>> = HashMap::new();
    for r in routes {
        if r.class == RouteClass::Ctrl {
            let s = *r.path.first().unwrap() as usize;
            let d = *r.path.last().unwrap() as usize;
            if s != d {
                casts.entry(s).or_default().insert(d);
            }
        }
    }
    let ctrl_fanout: usize = casts.values().map(|d| d.len()).sum();
    // Control-network sizing is derived from the fabric width: four
    // internal lines per PE endpoint (64 lines on the paper's 4×4).
    let net = CsBenesNetwork::for_fabric(mesh.pe_count());
    let lines = net.lines();
    // Destinations may be shared between sources over time; the static
    // check below conservatively requires single-driver outputs, so fall
    // back to fan-out capacity when that fails (time-shared inputs).
    let cast_vec: Vec<(usize, Vec<usize>)> = casts
        .iter()
        .map(|(&s, d)| (s, d.iter().copied().collect()))
        .collect();
    let ctrl_net_fits = net.route(&cast_vec).is_ok() || ctrl_fanout <= lines;
    (ctrl_net_fits, ctrl_fanout)
}

/// Routes every node-sourced edge of the program.
pub fn route(g: &Cdfg, places: &[Placement], mesh: &Mesh) -> RoutingResult {
    let (routes, port_route) = build_routes(g, places, mesh);
    let (ctrl_net_fits, ctrl_fanout) = ctrl_feasibility(&routes, mesh);
    RoutingResult {
        routes,
        port_route,
        ctrl_net_fits,
        ctrl_fanout,
    }
}

/// Congestion-aware rip-up-and-reroute: starts from the XY route table
/// and iteratively re-chooses each multi-hop route between its two
/// dimension orders (XY / YX) to minimize quadratic link load, weighting
/// each route by the cost model's firing-frequency estimate. The pass
/// structure is deterministic (route-table order, XY on ties), so the
/// result is a pure function of the placement.
///
/// Returns the routing plus how many routes ended up off the XY default.
pub fn route_congestion_aware(
    g: &Cdfg,
    places: &[Placement],
    mesh: &Mesh,
    cm: &crate::cost::CostModel,
    passes: usize,
) -> (RoutingResult, usize) {
    let (mut routes, port_route) = build_routes(g, places, mesh);
    let depths = crate::cost::node_depths(g);
    // Loop-unit-internal edges are combinational in the simulator (no
    // flit is ever sent): they must neither seed the load map nor be
    // rerouted, exactly as the explorer's cost model excludes them.
    let header_bb = crate::cost::header_blocks(g);
    let carries_flits = |r: &Route| -> bool {
        !crate::cost::is_cluster_internal(g, &header_bb, r.src as usize, r.dst as usize)
    };

    // Candidates: multi-hop routes that actually ride the mesh, with
    // both dimension-order paths and a traffic weight.
    struct Cand {
        route: usize,
        w: f64,
        xy: Vec<u16>,
        yx: Vec<u16>,
        use_yx: bool,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for (ri, r) in routes.iter().enumerate() {
        if r.path.len() <= 2 {
            continue; // 0/1 hop: both orders identical
        }
        if r.class == RouteClass::Ctrl && !cm.ctrl_on_mesh {
            continue; // rides the dedicated network; path is irrelevant
        }
        if !carries_flits(r) {
            continue; // loop-unit internal register, never on the mesh
        }
        let (s, d) = (r.path[0] as usize, *r.path.last().unwrap() as usize);
        let w = cm.freq_weight(depths[r.src as usize].min(depths[r.dst as usize]));
        cands.push(Cand {
            route: ri,
            w,
            xy: mesh.path_tiles(s, d),
            yx: mesh.path_tiles_yx(s, d),
            use_yx: false,
        });
    }

    let mut load = vec![0.0f64; mesh.link_id_space()];
    let path_links = |mesh: &Mesh, path: &[u16], f: &mut dyn FnMut(usize)| {
        for w in path.windows(2) {
            let mut done = false;
            mesh.for_each_xy_link(w[0] as usize, w[1] as usize, |l| {
                debug_assert!(!done, "adjacent tiles yield one link");
                done = true;
                f(l.0 as usize);
            });
        }
    };
    // Seed the load map from *every* mesh-riding route: single-hop
    // routes cannot change dimension order, but they still congest the
    // links the candidates are scored against — omitting them would let
    // a rip-up move traffic onto an already-saturated link it cannot
    // see.
    let mut is_cand = vec![false; routes.len()];
    for c in &cands {
        is_cand[c.route] = true;
    }
    for (ri, r) in routes.iter().enumerate() {
        if is_cand[ri] || r.path.len() < 2 {
            continue;
        }
        if r.class == RouteClass::Ctrl && !cm.ctrl_on_mesh {
            continue;
        }
        if !carries_flits(r) {
            continue;
        }
        let w = cm.freq_weight(depths[r.src as usize].min(depths[r.dst as usize]));
        path_links(mesh, &r.path, &mut |l| load[l] += w);
    }
    for c in &cands {
        path_links(mesh, &c.xy, &mut |l| load[l] += c.w);
    }
    // Rip-up passes: re-choose each candidate against the current loads.
    let mut moved = 0usize;
    for _ in 0..passes.max(1) {
        moved = 0;
        for c in cands.iter_mut() {
            let w = c.w;
            let cur: &[u16] = if c.use_yx { &c.yx } else { &c.xy };
            path_links(mesh, cur, &mut |l| load[l] -= w);
            let score = |path: &[u16], load: &[f64]| -> f64 {
                let mut s = 0.0;
                path_links(mesh, path, &mut |l| s += (load[l] + w) * (load[l] + w));
                s
            };
            // Ties keep XY, the bit-stable default.
            let use_yx = score(&c.yx, &load) + 1e-12 < score(&c.xy, &load);
            c.use_yx = use_yx;
            let new: &[u16] = if use_yx { &c.yx } else { &c.xy };
            path_links(mesh, new, &mut |l| load[l] += w);
            if use_yx {
                moved += 1;
            }
        }
    }
    for c in &cands {
        if c.use_yx {
            routes[c.route].path = c.yx.clone();
        }
    }

    let (ctrl_net_fits, ctrl_fanout) = ctrl_feasibility(&routes, mesh);
    (
        RoutingResult {
            routes,
            port_route,
            ctrl_net_fits,
            ctrl_fanout,
        },
        moved,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompileOptions;
    use crate::place::place;
    use marionette_cdfg::builder::CdfgBuilder;

    fn simple() -> Cdfg {
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let zero = b.imm(0);
        let out = b.for_range(0, 8, &[zero], |b, i, v| {
            let x = b.load(a, i);
            let c = b.gt(x, 4.into());
            let r = b.if_else(c, |b| vec![b.add(v[0], x)], |_| vec![v[0]]);
            vec![r[0]]
        });
        b.sink("s", out[0]);
        b.finish()
    }

    #[test]
    fn routes_cover_all_node_edges() {
        let g = simple();
        let opts = CompileOptions::marionette_4x4();
        let pl = place(&g, &opts).unwrap();
        let mesh = Mesh::new(4, 4);
        let r = route(&g, &pl.places, &mesh);
        let expected: usize = g
            .nodes
            .iter()
            .map(|n| {
                n.inputs
                    .iter()
                    .filter(|s| matches!(s, PortSrc::Node(_)))
                    .count()
            })
            .sum();
        assert_eq!(r.routes.len(), expected);
        for (ri, route) in r.routes.iter().enumerate() {
            assert!(!route.path.is_empty(), "route {ri} has empty path");
        }
    }

    #[test]
    fn predicate_edges_are_ctrl_class() {
        let g = simple();
        let opts = CompileOptions::marionette_4x4();
        let pl = place(&g, &opts).unwrap();
        let mesh = Mesh::new(4, 4);
        let r = route(&g, &pl.places, &mesh);
        let has_ctrl = r.routes.iter().any(|x| x.class == RouteClass::Ctrl);
        let has_data = r.routes.iter().any(|x| x.class == RouteClass::Data);
        assert!(has_ctrl && has_data);
        // steers' port 0 is always ctrl
        for route in &r.routes {
            let n = &g.nodes[route.dst as usize];
            if matches!(n.op, Op::Steer { .. }) && route.dst_port == 0 {
                assert_eq!(route.class, RouteClass::Ctrl);
            }
        }
    }

    #[test]
    fn activation_edges_marked() {
        let g = simple();
        let opts = CompileOptions::marionette_4x4();
        let pl = place(&g, &opts).unwrap();
        let mesh = Mesh::new(4, 4);
        let r = route(&g, &pl.places, &mesh);
        assert!(r.routes.iter().any(|x| x.activation), "carry init edges");
    }
}
