//! Mapping cost model: scores a candidate placement without simulating.
//!
//! The mapping explorer (`crate::explore`) needs a cheap, monotonic
//! proxy for simulated cycles. This module derives one from the same
//! quantities the cycle-level simulator charges for:
//!
//! - **route latency**: every mesh-riding token pays
//!   `hops × link_latency` ([`marionette_sim::TimingModel::link_latency`]);
//!   control tokens pay it only when control shares the mesh
//!   ([`marionette_sim::CtrlTransport::Mesh`]);
//! - **congestion**: one flit per directed link per cycle — overlapping
//!   routes stall ([`marionette_sim::RunStats::link_stall_cycles`] in the simulator). The
//!   model charges a quadratic penalty on expected per-link load, with
//!   each edge weighted by an estimated firing frequency (deeper loop
//!   nests fire more);
//! - **group window pressure**: the densest PE of a mapping group bounds
//!   the group's initiation interval, so the model penalizes the sum of
//!   per-group maximum loads (the same `PE_waste` pressure Fig 8
//!   reshapes against);
//! - **control fan-out**: distinct destination tiles per control source
//!   consume CS-Benes broadcast lines (`marionette_net` feasibility), so
//!   fan-out carries a small penalty when the dedicated network is used.
//!
//! Weights come from a [`TimingModel`] via [`CostModel::from_timing`];
//! [`CostModel::neutral`] gives placement-search defaults when no timing
//! model is in scope (e.g. the pure-`CompileOptions` entry point).

use marionette_cdfg::graph::Cdfg;
use marionette_sim::{CtrlTransport, TimingModel};

/// Weight set of the mapping cost function.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cycles per mesh hop (data tokens; and control tokens when
    /// [`CostModel::ctrl_on_mesh`]).
    pub link_latency: f64,
    /// Whether control-class routes ride the mesh (and therefore pay hop
    /// latency and congestion) instead of the dedicated network.
    pub ctrl_on_mesh: bool,
    /// Weight on the quadratic per-link congestion term.
    pub congestion_weight: f64,
    /// Weight on the per-group maximum-PE-load (window pressure) term.
    pub pressure_weight: f64,
    /// Weight on control fan-out (distinct destination tiles per control
    /// source) when the dedicated control network is used.
    pub fanout_weight: f64,
    /// Base of the per-loop-depth firing-frequency estimate: an edge at
    /// loop depth `d` is weighted `depth_base^d` (capped).
    pub depth_base: f64,
}

impl CostModel {
    /// Placement-search defaults when no timing model is available:
    /// unit-latency mesh shared by control and data (the conservative
    /// assumption — hops always matter).
    pub fn neutral() -> Self {
        CostModel {
            link_latency: 1.0,
            ctrl_on_mesh: true,
            congestion_weight: 0.5,
            pressure_weight: 2.0,
            fanout_weight: 0.05,
            depth_base: 3.0,
        }
    }

    /// Derives weights from an architecture's timing model: hop cost from
    /// `link_latency`, control transport from `ctrl_transport`, and a
    /// congestion weight scaled by how much in-flight traffic the model
    /// permits (tight `route_inflight_cap`s stall sooner).
    pub fn from_timing(tm: &TimingModel) -> Self {
        let ctrl_on_mesh = matches!(tm.ctrl_transport, CtrlTransport::Mesh);
        CostModel {
            link_latency: f64::from(tm.link_latency),
            ctrl_on_mesh,
            congestion_weight: 0.5 + 2.0 / tm.route_inflight_cap.max(1) as f64,
            pressure_weight: 2.0,
            fanout_weight: if ctrl_on_mesh { 0.0 } else { 0.05 },
            depth_base: 3.0,
        }
    }

    /// Firing-frequency estimate of a node's block at loop depth `depth`
    /// (`0` = top level), used to weight that node's edges in the
    /// congestion term.
    pub fn freq_weight(&self, depth: u32) -> f64 {
        self.depth_base.powi(depth.min(8) as i32)
    }
}

/// Per-block flag: blocks hosting a loop-control cluster (they contain a
/// `Carry` operator). The simulator folds each such block into one *loop
/// unit* whose internal edges are combinational — see
/// [`is_cluster_internal`].
pub fn header_blocks(g: &Cdfg) -> Vec<bool> {
    let max_bb = g
        .nodes
        .iter()
        .map(|n| n.bb.0 as usize + 1)
        .max()
        .unwrap_or(1);
    let mut header_bb = vec![false; max_bb];
    for n in &g.nodes {
        if matches!(n.op, marionette_cdfg::Op::Carry) {
            header_bb[n.bb.0 as usize] = true;
        }
    }
    header_bb
}

/// True when the edge `src -> dst` is internal to a loop-header cluster:
/// the simulator forwards it combinationally inside one loop unit (no
/// flit is ever sent), so it carries no mapping cost and must not seed
/// the congestion-aware router's load map either.
pub fn is_cluster_internal(g: &Cdfg, header_bb: &[bool], src: usize, dst: usize) -> bool {
    header_bb[g.nodes[src].bb.0 as usize]
        && g.nodes[src].bb == g.nodes[dst].bb
        && !g.nodes[dst].op.is_memory()
}

/// Extra stall cycles one flit pays crossing a flaky link with stall
/// multiplier `mult` — mirrors the simulator's charge of
/// `link_latency.max(1) × (mult − 1)` so the router and explorer
/// penalize flaky links by exactly the cycles they will cost.
pub fn flaky_extra(link_latency: f64, mult: u32) -> f64 {
    link_latency.max(1.0) * f64::from(mult.saturating_sub(1))
}

/// Loop depth of every node's basic block (`0` = outside any loop).
pub fn node_depths(g: &Cdfg) -> Vec<u32> {
    g.nodes
        .iter()
        .map(|n| match g.block(n.bb).loop_id {
            Some(l) => g.loop_info(l).depth,
            None => 0,
        })
        .collect()
}

/// Decomposed cost of one candidate mapping.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MappingCost {
    /// Σ route hop latency (frequency-weighted).
    pub latency: f64,
    /// Σ per-link quadratic congestion.
    pub congestion: f64,
    /// Σ per-group maximum PE load.
    pub pressure: f64,
    /// Control fan-out demanded of the CS-Benes network.
    pub fanout: f64,
}

impl MappingCost {
    /// The scalar the annealer minimizes.
    pub fn total(&self, cm: &CostModel) -> f64 {
        self.latency
            + cm.congestion_weight * self.congestion
            + cm.pressure_weight * self.pressure
            + cm.fanout_weight * self.fanout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_timing_tracks_transport() {
        let mut tm = TimingModel::ideal("x");
        tm.ctrl_transport = CtrlTransport::Mesh;
        tm.link_latency = 2;
        let cm = CostModel::from_timing(&tm);
        assert!(cm.ctrl_on_mesh);
        assert_eq!(cm.link_latency, 2.0);
        tm.ctrl_transport = CtrlTransport::CtrlNetwork { latency: 1 };
        assert!(!CostModel::from_timing(&tm).ctrl_on_mesh);
    }

    #[test]
    fn totals_compose() {
        let cm = CostModel::neutral();
        let c = MappingCost {
            latency: 10.0,
            congestion: 4.0,
            pressure: 3.0,
            fanout: 2.0,
        };
        let t = c.total(&cm);
        assert!((t - (10.0 + 0.5 * 4.0 + 2.0 * 3.0 + 0.05 * 2.0)).abs() < 1e-12);
        assert!(cm.freq_weight(2) > cm.freq_weight(1));
    }
}
