//! Spatial partitions: rectangular region masks over a fabric, the unit
//! of multi-kernel tenancy.
//!
//! A [`Partition`] is an R×C rectangle of tiles anchored at an origin
//! inside a (possibly larger) host fabric; a [`PartitionMap`] is a set
//! of partitions validated to be in-bounds and pairwise disjoint. The
//! tenancy stack is built on two views of the same region:
//!
//! - **Local view** — a tenant kernel is compiled *as if on a solo
//!   fabric of the partition's dimensions* ([`Partition::dims`]); its
//!   control timing is derived from the *partition's* corner distance,
//!   not the host fabric's (see `marionette-arch`), and the resulting
//!   bitstream uses partition-local tile indices. This is what makes a
//!   co-resident tenant bit-identical to its solo run on an equal-sized
//!   fabric.
//! - **Fabric view** — [`Partition::local_to_fabric`] embeds local
//!   tiles into host-fabric coordinates for footprint/overlap checks
//!   when per-partition bitstreams are merged into one multi-tenant
//!   image (`marionette_isa::image`), and
//!   [`PartitionMap::exclusion_mask`] renders a region as a
//!   [`FaultSet`] avoid-mask — every tile outside the region dead,
//!   every link crossing the region boundary dead — so the annealing
//!   placer's legality caps and the rip-up router confine a
//!   full-fabric compile to the region with the exact machinery the
//!   fault plane already uses (see
//!   [`crate::pipeline::compile_with_timing_and_region`]).
//!
//! The CLI syntax everywhere is `RxC@r,c` (dimensions at row,col
//! origin), e.g. `8x8@0,8` for an 8×8 region whose top-left tile is
//! row 0, column 8 of the host fabric.

use crate::options::FabricDims;
use marionette_sim::{FaultSet, FaultSpec};
use std::fmt;
use std::str::FromStr;

/// One rectangular fabric region: `rows × cols` tiles anchored at
/// `(row0, col0)` of the host fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Partition {
    /// Region rows.
    pub rows: usize,
    /// Region columns.
    pub cols: usize,
    /// Host-fabric row of the region's top-left tile.
    pub row0: usize,
    /// Host-fabric column of the region's top-left tile.
    pub col0: usize,
}

impl Partition {
    /// An R×C region at origin (r0, c0).
    ///
    /// # Panics
    /// Panics if either dimension is zero (origins may be anything; the
    /// host-fabric bounds check happens in [`PartitionMap::new`]).
    pub fn new(rows: usize, cols: usize, row0: usize, col0: usize) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "partition dimensions must be positive"
        );
        Partition {
            rows,
            cols,
            row0,
            col0,
        }
    }

    /// The region's dimensions as a solo-fabric geometry: what a tenant
    /// kernel is compiled on, and what the per-partition control timing
    /// (CCU round trips etc.) is derived from.
    pub fn dims(&self) -> FabricDims {
        FabricDims::new(self.rows, self.cols)
    }

    /// Number of tiles in the region.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Does the region contain the host-fabric tile (r, c)?
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r >= self.row0 && r < self.row0 + self.rows && c >= self.col0 && c < self.col0 + self.cols
    }

    /// Does the region fit inside `fabric`?
    pub fn fits(&self, fabric: FabricDims) -> bool {
        self.row0 + self.rows <= fabric.rows && self.col0 + self.cols <= fabric.cols
    }

    /// Do two regions share any tile?
    pub fn overlaps(&self, other: &Partition) -> bool {
        self.row0 < other.row0 + other.rows
            && other.row0 < self.row0 + self.rows
            && self.col0 < other.col0 + other.cols
            && other.col0 < self.col0 + self.cols
    }

    /// Embeds a partition-local linear tile index into the host fabric's
    /// linear index space. Returns `None` when the local index is not a
    /// tile of the region — which is exactly how a merged image detects
    /// a route escaping its partition.
    pub fn local_to_fabric(&self, local: usize, fabric: FabricDims) -> Option<usize> {
        let (r, c) = (local / self.cols, local % self.cols);
        if r >= self.rows {
            return None;
        }
        Some((self.row0 + r) * fabric.cols + (self.col0 + c))
    }

    /// The host-fabric linear tile indices of the region, row-major.
    pub fn fabric_tiles(&self, fabric: FabricDims) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.pe_count());
        for r in self.row0..self.row0 + self.rows {
            for c in self.col0..self.col0 + self.cols {
                out.push(r * fabric.cols + c);
            }
        }
        out
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}@{},{}", self.rows, self.cols, self.row0, self.col0)
    }
}

impl FromStr for Partition {
    type Err = String;

    /// Parses the shared CLI syntax `RxC@r,c` (e.g. `8x8@0,8`).
    fn from_str(s: &str) -> Result<Self, String> {
        let err = || format!("`{s}` is not a partition spec RxC@r,c (e.g. 8x8@0,8)");
        let (dims, origin) = s.split_once('@').ok_or_else(err)?;
        let dims: FabricDims = dims.trim().parse().map_err(|_| err())?;
        let (r, c) = origin.split_once(',').ok_or_else(err)?;
        let row0: usize = r.trim().parse().map_err(|_| err())?;
        let col0: usize = c.trim().parse().map_err(|_| err())?;
        Ok(Partition::new(dims.rows, dims.cols, row0, col0))
    }
}

/// Why a set of partitions is not a valid tenancy layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// The map has no partitions.
    Empty,
    /// A partition reaches outside the host fabric.
    OutOfFabric {
        /// The offending partition (display syntax).
        part: String,
        /// The host fabric.
        fabric: FabricDims,
    },
    /// Two partitions share at least one tile.
    Overlap {
        /// First partition (display syntax).
        a: String,
        /// Second partition (display syntax).
        b: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Empty => write!(f, "partition map has no partitions"),
            PartitionError::OutOfFabric { part, fabric } => {
                write!(f, "partition {part} does not fit the {fabric} fabric")
            }
            PartitionError::Overlap { a, b } => {
                write!(f, "partitions {a} and {b} overlap")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A validated set of pairwise-disjoint partitions on one host fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionMap {
    fabric: FabricDims,
    parts: Vec<Partition>,
}

impl PartitionMap {
    /// Validates that every partition fits `fabric` and that no two
    /// partitions overlap.
    ///
    /// # Errors
    /// Returns the typed [`PartitionError`] naming the offending
    /// region(s).
    pub fn new(fabric: FabricDims, parts: Vec<Partition>) -> Result<Self, PartitionError> {
        if parts.is_empty() {
            return Err(PartitionError::Empty);
        }
        for p in &parts {
            if !p.fits(fabric) {
                return Err(PartitionError::OutOfFabric {
                    part: p.to_string(),
                    fabric,
                });
            }
        }
        for i in 0..parts.len() {
            for j in i + 1..parts.len() {
                if parts[i].overlaps(&parts[j]) {
                    return Err(PartitionError::Overlap {
                        a: parts[i].to_string(),
                        b: parts[j].to_string(),
                    });
                }
            }
        }
        Ok(PartitionMap { fabric, parts })
    }

    /// The tightest fabric covering `parts` (used by CLIs that infer the
    /// host fabric from the partition list), validated as a map.
    ///
    /// # Errors
    /// As [`PartitionMap::new`].
    pub fn covering(parts: Vec<Partition>) -> Result<Self, PartitionError> {
        if parts.is_empty() {
            return Err(PartitionError::Empty);
        }
        let rows = parts.iter().map(|p| p.row0 + p.rows).max().unwrap_or(1);
        let cols = parts.iter().map(|p| p.col0 + p.cols).max().unwrap_or(1);
        PartitionMap::new(FabricDims::new(rows, cols), parts)
    }

    /// Splits `fabric` into a grid of equal `tile_rows × tile_cols`
    /// partitions (e.g. `quadrants(16x16, 8, 8)` is the 2×2-of-8×8
    /// sharding). The fabric dimensions must divide evenly.
    ///
    /// # Errors
    /// Returns [`PartitionError::OutOfFabric`] when the tile shape does
    /// not divide the fabric.
    pub fn grid(
        fabric: FabricDims,
        tile_rows: usize,
        tile_cols: usize,
    ) -> Result<Self, PartitionError> {
        if tile_rows == 0
            || tile_cols == 0
            || !fabric.rows.is_multiple_of(tile_rows)
            || !fabric.cols.is_multiple_of(tile_cols)
        {
            return Err(PartitionError::OutOfFabric {
                part: format!("{tile_rows}x{tile_cols}@grid"),
                fabric,
            });
        }
        let mut parts = Vec::new();
        for r in (0..fabric.rows).step_by(tile_rows) {
            for c in (0..fabric.cols).step_by(tile_cols) {
                parts.push(Partition::new(tile_rows, tile_cols, r, c));
            }
        }
        PartitionMap::new(fabric, parts)
    }

    /// The host fabric.
    pub fn fabric(&self) -> FabricDims {
        self.fabric
    }

    /// The partitions, in insertion order.
    pub fn parts(&self) -> &[Partition] {
        &self.parts
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Always false — [`PartitionMap::new`] rejects empty maps.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Renders partition `i` as a [`FaultSet`] avoid-mask on the host
    /// fabric: every tile *outside* the region is a dead PE and every
    /// directed link with an endpoint outside the region is dead. Feeding
    /// this mask to the fault-aware placer/router
    /// ([`crate::place::place_with_faults`], the annealing explorer's
    /// legality caps, the rip-up router's path screens) confines a
    /// full-fabric compile to the region — region scoping and fault
    /// avoidance are the same mechanism.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn exclusion_mask(&self, i: usize) -> FaultSet {
        let p = &self.parts[i];
        let (rows, cols) = (self.fabric.rows, self.fabric.cols);
        let mut fs = FaultSet::new(rows, cols);
        let mut dead_link = |from: (usize, usize), to: (usize, usize)| {
            // Kill any mesh link not internal to the region, in the
            // direction from -> to; duplicates are ignored by `add`.
            if !(p.contains(from.0, from.1) && p.contains(to.0, to.1)) {
                fs.add(FaultSpec::DeadLink { from, to })
                    .expect("adjacent in-fabric link");
            }
        };
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    dead_link((r, c), (r, c + 1));
                    dead_link((r, c + 1), (r, c));
                }
                if r + 1 < rows {
                    dead_link((r, c), (r + 1, c));
                    dead_link((r + 1, c), (r, c));
                }
            }
        }
        for r in 0..rows {
            for c in 0..cols {
                if !p.contains(r, c) {
                    fs.add(FaultSpec::DeadPe { r, c }).expect("in-fabric tile");
                }
            }
        }
        fs
    }
}

impl fmt::Display for PartitionMap {
    /// `fabric:[p0,p1,...]`, e.g. `16x16:[8x8@0,0,8x8@0,8]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:[", self.fabric)?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for s in ["8x8@0,8", "4x4@0,0", "2x6@10,3"] {
            let p: Partition = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
        let p: Partition = "8x8@2,3".parse().unwrap();
        assert_eq!(p.dims(), FabricDims::new(8, 8));
        assert_eq!((p.row0, p.col0), (2, 3));
    }

    #[test]
    fn parse_rejects_malformed() {
        for s in ["8x8", "8x8@", "8x8@1", "@1,2", "0x4@0,0", "8x8@a,b", ""] {
            assert!(s.parse::<Partition>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn containment_and_embedding() {
        let p = Partition::new(2, 3, 1, 4);
        let fabric = FabricDims::new(4, 8);
        assert!(p.contains(1, 4) && p.contains(2, 6));
        assert!(!p.contains(0, 4) && !p.contains(1, 7) && !p.contains(3, 4));
        assert!(p.fits(fabric));
        assert!(!p.fits(FabricDims::new(4, 6)));
        // Local tile 0 is the origin; local (1,2) lands at fabric (2,6).
        assert_eq!(p.local_to_fabric(0, fabric), Some(12));
        assert_eq!(p.local_to_fabric(5, fabric), Some(2 * 8 + 6));
        assert_eq!(p.local_to_fabric(6, fabric), None, "past the region");
        assert_eq!(p.fabric_tiles(fabric), vec![12, 13, 14, 20, 21, 22]);
    }

    #[test]
    fn map_rejects_overlap_and_escape() {
        let f = FabricDims::new(8, 8);
        let a = Partition::new(4, 4, 0, 0);
        let b = Partition::new(4, 4, 0, 4);
        let c = Partition::new(4, 4, 3, 3);
        assert!(PartitionMap::new(f, vec![a, b]).is_ok());
        match PartitionMap::new(f, vec![a, c]).unwrap_err() {
            PartitionError::Overlap { a, b } => {
                assert_eq!((a.as_str(), b.as_str()), ("4x4@0,0", "4x4@3,3"));
            }
            other => panic!("expected Overlap, got {other}"),
        }
        match PartitionMap::new(f, vec![Partition::new(4, 4, 6, 0)]).unwrap_err() {
            PartitionError::OutOfFabric { part, fabric } => {
                assert_eq!(part, "4x4@6,0");
                assert_eq!(fabric, f);
            }
            other => panic!("expected OutOfFabric, got {other}"),
        }
        assert_eq!(
            PartitionMap::new(f, vec![]).unwrap_err(),
            PartitionError::Empty
        );
    }

    #[test]
    fn grid_and_covering() {
        let q = PartitionMap::grid(FabricDims::new(16, 16), 8, 8).unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q.parts()[1].to_string(), "8x8@0,8");
        assert!(PartitionMap::grid(FabricDims::new(16, 16), 5, 8).is_err());
        let cov = PartitionMap::covering(vec![
            Partition::new(6, 12, 0, 0),
            Partition::new(6, 12, 6, 0),
        ])
        .unwrap();
        assert_eq!(cov.fabric(), FabricDims::new(12, 12));
        assert_eq!(cov.to_string(), "12x12:[6x12@0,0,6x12@6,0]");
    }

    #[test]
    fn exclusion_mask_kills_exactly_the_complement() {
        let map = PartitionMap::new(
            FabricDims::new(4, 4),
            vec![Partition::new(2, 2, 1, 1), Partition::new(1, 4, 0, 0)],
        )
        .unwrap();
        let fs = map.exclusion_mask(0);
        let p = map.parts()[0];
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(
                    fs.pe_dead(r * 4 + c),
                    !p.contains(r, c),
                    "tile ({r},{c}) mask mismatch"
                );
            }
        }
        // An interior link survives, a boundary-crossing one dies.
        // Tile (1,1)=5 east to (1,2): interior. (1,1) north to (0,1): crosses.
        assert!(!fs.link_dead(5 * 4));
        assert!(fs.link_dead(5 * 4 + 3));
        assert_eq!(fs.dead_pe_count(), 12);
    }
}
