//! Architecture definitions, normalized to a 4×4 computing fabric.

use marionette_compiler::{CompileOptions, CtrlPlacement, MemPlacement, SplitFabric};
use marionette_sim::{CtrlTransport, TimingModel};

/// One evaluated architecture: mapping policy + timing model.
#[derive(Clone, Debug)]
pub struct Architecture {
    /// Display name.
    pub name: &'static str,
    /// Short tag used in figures.
    pub short: &'static str,
    /// Mapping policy.
    pub opts: CompileOptions,
    /// Timing model.
    pub tm: TimingModel,
}

/// CCU round trip for a centralized configuration change: branch PE →
/// CCU over the mesh (~corner distance), CCU processing, configuration
/// network back out (Fig 3c "the whole array is left idle").
const CCU_SWITCH: u32 = 12;
/// Surcharge for configuring a dynamically-bounded loop through the CCU.
const CCU_DYN: u32 = 10;
/// Host-processor round trip for Softbrain stream reconfiguration
/// ("processor fetches instruction from memory", Table 2).
const HOST_SWITCH: u32 = 30;
const HOST_DYN: u32 = 20;
/// Proactive configuration switch: next-stage addresses are already
/// resident in the Control Flow Trigger when the data arrives (Fig 5).
const PROACTIVE_SWITCH: u32 = 1;

/// Generic von Neumann PE array (Fig 2a): predicated branches, control
/// hand-offs through a centralized control unit, configuration switching
/// stalls the array.
pub fn von_neumann_pe() -> Architecture {
    let mut opts = CompileOptions::marionette_4x4();
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.agile = false;
    let mut tm = TimingModel::ideal("von Neumann PE");
    tm.predicated_branches = true;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.exclusive_groups = true;
    tm.group_switch_cost = CCU_SWITCH;
    tm.dyn_bound_extra = CCU_DYN;
    tm.ctrl_parallel = false;
    Architecture {
        name: "von Neumann PE",
        short: "vN",
        opts,
        tm,
    }
}

/// Generic dataflow PE array (Fig 2b): tagged tokens couple configuration
/// to every firing (one extra cycle of occupancy) and control may only
/// travel on data paths.
pub fn dataflow_pe() -> Architecture {
    let mut opts = CompileOptions::marionette_4x4();
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.agile = false;
    let mut tm = TimingModel::ideal("dataflow PE");
    tm.per_fire_overhead = 1;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.ctrl_parallel = false;
    // Fig 3f: loop configuration rides the data path (no direct channel
    // between producer PEs and the loop generator).
    tm.activation_extra = 6;
    // Tagged token stores are shallow: wait-match capacity limits how far
    // iterations can run ahead (the temporal coupling of Fig 2b).
    tm.queue_capacity = 2;
    tm.route_inflight_cap = 2;
    // Under the conventional phased schedule only the current mapping's
    // instructions are resident; switching fetches the next phase's
    // configuration tokens.
    tm.exclusive_groups = true;
    tm.group_switch_cost = 4;
    tm.idle_switch_threshold = 1;
    Architecture {
        name: "dataflow PE",
        short: "DF",
        opts,
        tm,
    }
}

/// Marionette PE with Proactive PE Configuration only (the Fig 11
/// configuration: unified data network, no Agile PE Assignment).
pub fn marionette_pe() -> Architecture {
    let mut opts = CompileOptions::marionette_4x4();
    opts.agile = false;
    let mut tm = TimingModel::ideal("Marionette PE");
    tm.ctrl_transport = CtrlTransport::Mesh; // §6.1: "we unify the data network"
    tm.exclusive_groups = true; // pipelines rebuild serially without Agile
    tm.group_switch_cost = PROACTIVE_SWITCH;
    tm.idle_switch_threshold = 0; // proactive: switch as soon as the phase drains
    Architecture {
        name: "Marionette PE",
        short: "M-PE",
        opts,
        tm,
    }
}

/// Marionette PE + the dedicated CS-Benes control network (Fig 12).
pub fn marionette_cn() -> Architecture {
    let mut a = marionette_pe();
    a.name = "Marionette PE + Control Network";
    a.short = "M-CN";
    a.tm.name = a.name.into();
    a.tm.ctrl_transport = CtrlTransport::CtrlNetwork { latency: 1 };
    a
}

/// Full Marionette: + Agile PE Assignment (Fig 14): loop levels become
/// co-resident pipelines on disjoint, reshape-sized PE regions.
pub fn marionette_full() -> Architecture {
    let mut a = marionette_cn();
    a.name = "Marionette";
    a.short = "M";
    a.tm.name = a.name.into();
    a.opts.agile = true;
    a.tm.exclusive_groups = false;
    a.tm.group_switch_cost = 0;
    a
}

/// Softbrain (stream-dataflow): memory on stream engines, innermost-loop
/// pipelines, but outer control and reconfiguration owned by the host
/// processor.
pub fn softbrain() -> Architecture {
    let mut opts = CompileOptions::marionette_4x4();
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.mem = MemPlacement::StreamUnits { count: 3 };
    opts.agile = false;
    let mut tm = TimingModel::ideal("Softbrain");
    tm.predicated_branches = true;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.exclusive_groups = true;
    tm.group_switch_cost = HOST_SWITCH;
    tm.dyn_bound_extra = HOST_DYN;
    tm.ctrl_parallel = false;
    Architecture {
        name: "Softbrain",
        short: "SB",
        opts,
        tm,
    }
}

/// TIA (triggered instructions): autonomous — no centralized round trips
/// — but trigger resolution serializes with execution like a dataflow PE,
/// and control shares the data network.
pub fn tia() -> Architecture {
    let mut opts = CompileOptions::marionette_4x4();
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.agile = false;
    let mut tm = TimingModel::ideal("TIA");
    tm.per_fire_overhead = 1;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.ctrl_parallel = false;
    // Triggered instructions are autonomous but control still shares the
    // datapath: activation transfers take the indirect route (Fig 3f).
    tm.activation_extra = 6;
    // Per-PE trigger state is shallow (a few architectural registers).
    tm.queue_capacity = 2;
    tm.route_inflight_cap = 2;
    // A PE holds only ~16 triggered instructions: multi-level nests are
    // phased, and the scheduler re-resolves triggers on each phase entry.
    tm.exclusive_groups = true;
    tm.group_switch_cost = 6;
    tm.idle_switch_threshold = 1;
    Architecture {
        name: "TIA",
        short: "TIA",
        opts,
        tm,
    }
}

/// REVEL (hybrid systolic-dataflow): 15 systolic PEs pipeline innermost
/// loops at full rate; everything else shares the single tagged-dataflow
/// PE (the paper's normalization: "15 systolic PEs, 1 tagged-dataflow
/// PE").
pub fn revel() -> Architecture {
    let mut opts = CompileOptions::marionette_4x4();
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.agile = false;
    opts.split = Some(SplitFabric {
        systolic_pes: 15,
        dataflow_pes: 1,
    });
    opts.slots_per_pe = 64; // the dataflow PE multiplexes many operators
    let mut tm = TimingModel::ideal("REVEL");
    tm.predicated_branches = true; // systolic lanes cannot steer
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.dyn_bound_extra = 2; // fast stream-port handoff
    tm.ctrl_parallel = false;
    Architecture {
        name: "REVEL",
        short: "RV",
        opts,
        tm,
    }
}

/// RipTide (control flow in the NoC): control operators execute inside
/// network switches — no PE slots, no reconfiguration — but every control
/// transfer is a multi-hop trip through the shared, slower fabric.
pub fn riptide() -> Architecture {
    let mut opts = CompileOptions::marionette_4x4();
    opts.ctrl = CtrlPlacement::NetSwitches;
    opts.agile = false;
    let mut tm = TimingModel::ideal("RipTide");
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.link_latency = 2; // energy-minimal NoC: "the transferring is slow"
    tm.ctrl_parallel = true; // switches run beside PEs
    Architecture {
        name: "RipTide",
        short: "RT",
        opts,
        tm,
    }
}

/// The four state-of-the-art comparison architectures of Fig 17.
pub fn all_sota() -> Vec<Architecture> {
    vec![softbrain(), tia(), revel(), riptide()]
}

/// All nine evaluated presets in canonical order: the vN/DF baselines,
/// the Marionette ablation ladder, then the SOTA models. The single
/// source of truth for "every preset" sweeps (bench, fuzzing, tests).
pub fn all_presets() -> Vec<Architecture> {
    let mut archs = vec![
        von_neumann_pe(),
        dataflow_pe(),
        marionette_pe(),
        marionette_cn(),
        marionette_full(),
    ];
    archs.extend(all_sota());
    archs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        let archs = [
            von_neumann_pe(),
            dataflow_pe(),
            marionette_pe(),
            marionette_cn(),
            marionette_full(),
            softbrain(),
            tia(),
            revel(),
            riptide(),
        ];
        let mut names = std::collections::HashSet::new();
        for a in &archs {
            assert!(names.insert(a.short), "duplicate {}", a.short);
        }
    }

    #[test]
    fn ablation_ladder_is_monotone_in_features() {
        let pe = marionette_pe();
        let cn = marionette_cn();
        let full = marionette_full();
        assert!(matches!(pe.tm.ctrl_transport, CtrlTransport::Mesh));
        assert!(matches!(
            cn.tm.ctrl_transport,
            CtrlTransport::CtrlNetwork { .. }
        ));
        assert!(!pe.opts.agile && !cn.opts.agile && full.opts.agile);
        assert!(pe.tm.exclusive_groups && !full.tm.exclusive_groups);
    }

    #[test]
    fn revel_splits_fabric() {
        let r = revel();
        let s = r.opts.split.unwrap();
        assert_eq!(s.systolic_pes + s.dataflow_pes, 16);
    }
}
