//! Architecture definitions, parameterized over the fabric geometry.
//!
//! Every preset exists in two forms: the no-argument constructor (the
//! paper's 4×4 normalization, e.g. [`von_neumann_pe`]) and an `_on`
//! variant taking explicit [`FabricDims`] (e.g. [`von_neumann_pe_on`]).
//! The 4×4 instantiations are bit-identical to the historical constants:
//! the geometry-derived timing formulas below reproduce the paper's
//! numbers exactly at 4×4 (pinned by tests), while larger fabrics let
//! the `fabric_sweep` experiment measure how centralized-control costs
//! grow with the array — the paper's thesis at scales it didn't plot.

use marionette_compiler::{
    CompileOptions, CtrlPlacement, FabricDims, MemPlacement, Partition, PartitionMap, SplitFabric,
};
use marionette_sim::{CtrlTransport, TimingModel};

/// One evaluated architecture: mapping policy + timing model.
#[derive(Clone, Debug)]
pub struct Architecture {
    /// Display name.
    pub name: &'static str,
    /// Short tag used in figures.
    pub short: &'static str,
    /// Mapping policy.
    pub opts: CompileOptions,
    /// Timing model.
    pub tm: TimingModel,
}

impl Architecture {
    /// The fabric geometry this preset instance is normalized to.
    pub fn fabric(&self) -> FabricDims {
        self.opts.dims()
    }
}

// ---- geometry-derived timing ---------------------------------------------
//
// The paper's centralized-control costs are distances on the mesh: a
// configuration change travels branch PE → CCU and configuration network →
// array, each "~corner distance" of the fabric. On the 4×4 evaluation
// fabric the corner distance is 6 hops, which is where the historical
// constants (12-cycle CCU switch, 10-cycle dynamic-bound surcharge,
// 6-cycle data-path detour) come from. Deriving them from [`FabricDims`]
// keeps the 4×4 numbers bit-identical while letting the costs grow with
// the array.

/// CCU round trip for a centralized configuration change: branch PE →
/// CCU over the mesh plus configuration network back out, each one
/// corner distance (Fig 3c "the whole array is left idle"). `2 × corner
/// hops`; 12 on the 4×4 fabric.
pub fn ccu_switch_cycles(dims: FabricDims) -> u32 {
    2 * dims.corner_hops()
}

/// Surcharge for configuring a dynamically-bounded loop through the CCU:
/// the round trip again, minus the two cycles of CCU-local processing
/// already overlapped with the switch itself. `2 × corner hops − 2`; 10
/// on the 4×4 fabric.
pub fn ccu_dyn_cycles(dims: FabricDims) -> u32 {
    (2 * dims.corner_hops()).saturating_sub(2)
}

/// Loop-configuration detour for architectures whose control must ride
/// the data network (Fig 3f: no direct channel between producer PEs and
/// the loop generator): one corner distance; 6 on the 4×4 fabric.
pub fn activation_detour_cycles(dims: FabricDims) -> u32 {
    dims.corner_hops()
}

/// TIA phase-entry cost: the scheduler re-resolves triggers across the
/// phased region, a sweep of one corner distance; 6 on the 4×4 fabric.
pub fn tia_switch_cycles(dims: FabricDims) -> u32 {
    dims.corner_hops()
}

/// Host-processor round trip for Softbrain stream reconfiguration
/// ("processor fetches instruction from memory", Table 2). A property of
/// the host interface, not the array — it does not scale with the
/// fabric.
const HOST_SWITCH: u32 = 30;
const HOST_DYN: u32 = 20;
/// Dataflow-PE configuration switch: fetching the next phase's
/// configuration tokens from the PE-local store — fabric-independent.
const DF_SWITCH: u32 = 4;
/// Proactive configuration switch: next-stage addresses are already
/// resident in the Control Flow Trigger when the data arrives (Fig 5).
const PROACTIVE_SWITCH: u32 = 1;

/// Generic von Neumann PE array (Fig 2a) on the paper's 4×4 fabric.
pub fn von_neumann_pe() -> Architecture {
    von_neumann_pe_on(FabricDims::paper())
}

/// Generic von Neumann PE array (Fig 2a): predicated branches, control
/// hand-offs through a centralized control unit, configuration switching
/// stalls the array. Switch costs scale with the CCU round trip
/// ([`ccu_switch_cycles`]).
pub fn von_neumann_pe_on(dims: FabricDims) -> Architecture {
    let mut opts = CompileOptions::for_fabric(dims);
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.agile = false;
    let mut tm = TimingModel::ideal("von Neumann PE");
    tm.predicated_branches = true;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.exclusive_groups = true;
    tm.group_switch_cost = ccu_switch_cycles(dims);
    tm.dyn_bound_extra = ccu_dyn_cycles(dims);
    tm.ctrl_parallel = false;
    Architecture {
        name: "von Neumann PE",
        short: "vN",
        opts,
        tm,
    }
}

/// Generic dataflow PE array (Fig 2b) on the paper's 4×4 fabric.
pub fn dataflow_pe() -> Architecture {
    dataflow_pe_on(FabricDims::paper())
}

/// Generic dataflow PE array (Fig 2b): tagged tokens couple configuration
/// to every firing (one extra cycle of occupancy) and control may only
/// travel on data paths, so loop configuration pays the corner-distance
/// detour ([`activation_detour_cycles`]).
pub fn dataflow_pe_on(dims: FabricDims) -> Architecture {
    let mut opts = CompileOptions::for_fabric(dims);
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.agile = false;
    let mut tm = TimingModel::ideal("dataflow PE");
    tm.per_fire_overhead = 1;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.ctrl_parallel = false;
    // Fig 3f: loop configuration rides the data path (no direct channel
    // between producer PEs and the loop generator).
    tm.activation_extra = activation_detour_cycles(dims);
    // Tagged token stores are shallow: wait-match capacity limits how far
    // iterations can run ahead (the temporal coupling of Fig 2b).
    tm.queue_capacity = 2;
    tm.route_inflight_cap = 2;
    // Under the conventional phased schedule only the current mapping's
    // instructions are resident; switching fetches the next phase's
    // configuration tokens.
    tm.exclusive_groups = true;
    tm.group_switch_cost = DF_SWITCH;
    tm.idle_switch_threshold = 1;
    Architecture {
        name: "dataflow PE",
        short: "DF",
        opts,
        tm,
    }
}

/// Marionette PE (Proactive PE Configuration only) on the 4×4 fabric.
pub fn marionette_pe() -> Architecture {
    marionette_pe_on(FabricDims::paper())
}

/// Marionette PE with Proactive PE Configuration only (the Fig 11
/// configuration: unified data network, no Agile PE Assignment).
pub fn marionette_pe_on(dims: FabricDims) -> Architecture {
    let mut opts = CompileOptions::for_fabric(dims);
    opts.agile = false;
    let mut tm = TimingModel::ideal("Marionette PE");
    tm.ctrl_transport = CtrlTransport::Mesh; // §6.1: "we unify the data network"
    tm.exclusive_groups = true; // pipelines rebuild serially without Agile
    tm.group_switch_cost = PROACTIVE_SWITCH;
    tm.idle_switch_threshold = 0; // proactive: switch as soon as the phase drains
    Architecture {
        name: "Marionette PE",
        short: "M-PE",
        opts,
        tm,
    }
}

/// Marionette PE + control network (Fig 12) on the 4×4 fabric.
pub fn marionette_cn() -> Architecture {
    marionette_cn_on(FabricDims::paper())
}

/// Marionette PE + the dedicated CS-Benes control network (Fig 12). The
/// network stays single-cycle at every fabric size — the Fig 13
/// scalability point (line count grows with the array, latency barely).
pub fn marionette_cn_on(dims: FabricDims) -> Architecture {
    let mut a = marionette_pe_on(dims);
    a.name = "Marionette PE + Control Network";
    a.short = "M-CN";
    a.tm.name = a.name.into();
    a.tm.ctrl_transport = CtrlTransport::CtrlNetwork { latency: 1 };
    a
}

/// Full Marionette (Fig 14) on the 4×4 fabric.
pub fn marionette_full() -> Architecture {
    marionette_full_on(FabricDims::paper())
}

/// Full Marionette: + Agile PE Assignment (Fig 14): loop levels become
/// co-resident pipelines on disjoint, reshape-sized PE regions.
pub fn marionette_full_on(dims: FabricDims) -> Architecture {
    let mut a = marionette_cn_on(dims);
    a.name = "Marionette";
    a.short = "M";
    a.tm.name = a.name.into();
    a.opts.agile = true;
    a.tm.exclusive_groups = false;
    a.tm.group_switch_cost = 0;
    a
}

/// Softbrain (Fig 17) on the 4×4 fabric.
pub fn softbrain() -> Architecture {
    softbrain_on(FabricDims::paper())
}

/// Softbrain (stream-dataflow): memory on stream engines, innermost-loop
/// pipelines, but outer control and reconfiguration owned by the host
/// processor — a fabric-independent host round trip.
pub fn softbrain_on(dims: FabricDims) -> Architecture {
    let mut opts = CompileOptions::for_fabric(dims);
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.mem = MemPlacement::StreamUnits { count: 3 };
    opts.agile = false;
    let mut tm = TimingModel::ideal("Softbrain");
    tm.predicated_branches = true;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.exclusive_groups = true;
    tm.group_switch_cost = HOST_SWITCH;
    tm.dyn_bound_extra = HOST_DYN;
    tm.ctrl_parallel = false;
    Architecture {
        name: "Softbrain",
        short: "SB",
        opts,
        tm,
    }
}

/// TIA (Fig 17) on the 4×4 fabric.
pub fn tia() -> Architecture {
    tia_on(FabricDims::paper())
}

/// TIA (triggered instructions): autonomous — no centralized round trips
/// — but trigger resolution serializes with execution like a dataflow PE,
/// and control shares the data network (corner-distance activation
/// detours, phase-entry trigger re-resolution sweeps).
pub fn tia_on(dims: FabricDims) -> Architecture {
    let mut opts = CompileOptions::for_fabric(dims);
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.agile = false;
    let mut tm = TimingModel::ideal("TIA");
    tm.per_fire_overhead = 1;
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.ctrl_parallel = false;
    // Triggered instructions are autonomous but control still shares the
    // datapath: activation transfers take the indirect route (Fig 3f).
    tm.activation_extra = activation_detour_cycles(dims);
    // Per-PE trigger state is shallow (a few architectural registers).
    tm.queue_capacity = 2;
    tm.route_inflight_cap = 2;
    // A PE holds only ~16 triggered instructions: multi-level nests are
    // phased, and the scheduler re-resolves triggers on each phase entry.
    tm.exclusive_groups = true;
    tm.group_switch_cost = tia_switch_cycles(dims);
    tm.idle_switch_threshold = 1;
    Architecture {
        name: "TIA",
        short: "TIA",
        opts,
        tm,
    }
}

/// REVEL (Fig 17) on the 4×4 fabric.
pub fn revel() -> Architecture {
    revel_on(FabricDims::paper())
}

/// REVEL (hybrid systolic-dataflow): all but one PE pipeline innermost
/// loops at full rate; everything else shares the single tagged-dataflow
/// PE (the paper's 4×4 normalization: "15 systolic PEs, 1 tagged-dataflow
/// PE" — the same 1-dataflow-PE split scaled to the fabric).
pub fn revel_on(dims: FabricDims) -> Architecture {
    let mut opts = CompileOptions::for_fabric(dims);
    opts.ctrl = CtrlPlacement::PeSlots;
    opts.agile = false;
    opts.split = Some(SplitFabric {
        systolic_pes: dims.pe_count() - 1,
        dataflow_pes: 1,
    });
    opts.slots_per_pe = 64; // the dataflow PE multiplexes many operators
    let mut tm = TimingModel::ideal("REVEL");
    tm.predicated_branches = true; // systolic lanes cannot steer
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.dyn_bound_extra = 2; // fast stream-port handoff
    tm.ctrl_parallel = false;
    Architecture {
        name: "REVEL",
        short: "RV",
        opts,
        tm,
    }
}

/// RipTide (Fig 17) on the 4×4 fabric.
pub fn riptide() -> Architecture {
    riptide_on(FabricDims::paper())
}

/// RipTide (control flow in the NoC): control operators execute inside
/// network switches — no PE slots, no reconfiguration — but every control
/// transfer is a multi-hop trip through the shared, slower fabric.
pub fn riptide_on(dims: FabricDims) -> Architecture {
    let mut opts = CompileOptions::for_fabric(dims);
    opts.ctrl = CtrlPlacement::NetSwitches;
    opts.agile = false;
    let mut tm = TimingModel::ideal("RipTide");
    tm.ctrl_transport = CtrlTransport::Mesh;
    tm.link_latency = 2; // energy-minimal NoC: "the transferring is slow"
    tm.ctrl_parallel = true; // switches run beside PEs
    Architecture {
        name: "RipTide",
        short: "RT",
        opts,
        tm,
    }
}

/// The four state-of-the-art comparison architectures of Fig 17.
pub fn all_sota() -> Vec<Architecture> {
    all_sota_on(FabricDims::paper())
}

/// The Fig 17 SOTA comparison points on an explicit fabric.
pub fn all_sota_on(dims: FabricDims) -> Vec<Architecture> {
    vec![
        softbrain_on(dims),
        tia_on(dims),
        revel_on(dims),
        riptide_on(dims),
    ]
}

/// All nine evaluated presets on the paper's 4×4 fabric, in canonical
/// order: the vN/DF baselines, the Marionette ablation ladder, then the
/// SOTA models. The single source of truth for "every preset" sweeps
/// (bench, fuzzing, tests).
pub fn all_presets() -> Vec<Architecture> {
    all_presets_on(FabricDims::paper())
}

/// All nine evaluated presets on an explicit fabric, in canonical order.
/// `all_presets_on(FabricDims::paper())` is bit-identical to
/// [`all_presets`].
pub fn all_presets_on(dims: FabricDims) -> Vec<Architecture> {
    let mut archs = vec![
        von_neumann_pe_on(dims),
        dataflow_pe_on(dims),
        marionette_pe_on(dims),
        marionette_cn_on(dims),
        marionette_full_on(dims),
    ];
    archs.extend(all_sota_on(dims));
    archs
}

/// Resolves preset short tags (e.g. `"M,vN"`) to architectures on the
/// given fabric. Tags are matched case-insensitively against the
/// [`all_presets_on`] canonical set.
///
/// # Errors
/// Returns a message naming the unknown tag and the known tags.
pub fn presets_by_tags_on(dims: FabricDims, tags: &str) -> Result<Vec<Architecture>, String> {
    let all = all_presets_on(dims);
    let mut out = Vec::new();
    for t in tags.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match all.iter().find(|a| a.short.eq_ignore_ascii_case(t)) {
            Some(a) => out.push(a.clone()),
            None => {
                return Err(format!(
                    "unknown preset {t} (known: {})",
                    all.iter().map(|a| a.short).collect::<Vec<_>>().join(", ")
                ))
            }
        }
    }
    Ok(out)
}

/// Instantiates a preset on a fabric **partition**: the architecture is
/// normalized to the partition's own dimensions, so every
/// geometry-derived control cost (CCU switch round trips, activation
/// detours, TIA predicate broadcast) is priced by the *partition's*
/// corner distance rather than the host fabric's. An 8x8 tenant of a
/// 16x16 fabric pays 14-hop control round trips, not 30-hop ones — the
/// control-plane payoff of spatial sharding (see `docs/PARTITIONING.md`).
///
/// # Errors
/// Returns the [`presets_by_tags_on`] message for an unknown tag.
pub fn preset_for_partition(part: &Partition, tag: &str) -> Result<Architecture, String> {
    let mut v = presets_by_tags_on(part.dims(), tag)?;
    match v.len() {
        1 => Ok(v.remove(0)),
        n => Err(format!("expected one preset tag, got {n} ({tag})")),
    }
}

/// One preset instance per partition of a [`PartitionMap`], each
/// normalized to its own partition's dimensions (see
/// [`preset_for_partition`]).
///
/// # Errors
/// Returns the [`presets_by_tags_on`] message for an unknown tag.
pub fn presets_for_partitions(map: &PartitionMap, tag: &str) -> Result<Vec<Architecture>, String> {
    map.parts()
        .iter()
        .map(|p| preset_for_partition(p, tag))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        let archs = all_presets();
        assert_eq!(archs.len(), 9);
        let mut names = std::collections::HashSet::new();
        for a in &archs {
            assert!(names.insert(a.short), "duplicate {}", a.short);
        }
    }

    #[test]
    fn ablation_ladder_is_monotone_in_features() {
        let pe = marionette_pe();
        let cn = marionette_cn();
        let full = marionette_full();
        assert!(matches!(pe.tm.ctrl_transport, CtrlTransport::Mesh));
        assert!(matches!(
            cn.tm.ctrl_transport,
            CtrlTransport::CtrlNetwork { .. }
        ));
        assert!(!pe.opts.agile && !cn.opts.agile && full.opts.agile);
        assert!(pe.tm.exclusive_groups && !full.tm.exclusive_groups);
    }

    #[test]
    fn revel_splits_fabric() {
        let r = revel();
        let s = r.opts.split.unwrap();
        assert_eq!(s.systolic_pes + s.dataflow_pes, 16);
        let r8 = revel_on(FabricDims::new(8, 8));
        let s8 = r8.opts.split.unwrap();
        assert_eq!(s8.systolic_pes, 63);
        assert_eq!(s8.dataflow_pes, 1);
    }

    #[test]
    fn derived_timing_reproduces_the_paper_constants_at_4x4() {
        let d = FabricDims::paper();
        assert_eq!(ccu_switch_cycles(d), 12, "Fig 3c CCU round trip");
        assert_eq!(ccu_dyn_cycles(d), 10, "Fig 3d dynamic-bound surcharge");
        assert_eq!(activation_detour_cycles(d), 6, "Fig 3f data-path detour");
        assert_eq!(tia_switch_cycles(d), 6);
        let vn = von_neumann_pe();
        assert_eq!(vn.tm.group_switch_cost, 12);
        assert_eq!(vn.tm.dyn_bound_extra, 10);
        assert_eq!(dataflow_pe().tm.activation_extra, 6);
        assert_eq!(dataflow_pe().tm.group_switch_cost, 4);
        assert_eq!(tia().tm.group_switch_cost, 6);
        assert_eq!(tia().tm.activation_extra, 6);
    }

    #[test]
    fn centralized_costs_grow_with_the_fabric() {
        let d6 = FabricDims::new(6, 6);
        let d8 = FabricDims::new(8, 8);
        assert_eq!(ccu_switch_cycles(d6), 20);
        assert_eq!(ccu_switch_cycles(d8), 28);
        let vn6 = von_neumann_pe_on(d6);
        assert_eq!(vn6.tm.group_switch_cost, 20);
        assert_eq!(vn6.tm.dyn_bound_extra, 18);
        // Marionette's proactive switch stays flat.
        assert_eq!(marionette_pe_on(d8).tm.group_switch_cost, 1);
        // Host round trips don't scale with the array.
        assert_eq!(softbrain_on(d8).tm.group_switch_cost, 30);
    }

    #[test]
    fn presets_on_paper_fabric_match_the_legacy_constructors() {
        let legacy = all_presets();
        let rxc = all_presets_on(FabricDims::new(4, 4));
        assert_eq!(legacy.len(), rxc.len());
        for (a, b) in legacy.iter().zip(&rxc) {
            assert_eq!(a.short, b.short);
            assert_eq!(a.opts, b.opts, "{}: options drifted", a.short);
            assert_eq!(a.tm, b.tm, "{}: timing model drifted", a.short);
        }
    }

    #[test]
    fn tags_resolve_on_any_fabric() {
        let sel = presets_by_tags_on(FabricDims::new(6, 6), "M,vN").unwrap();
        assert_eq!(sel.len(), 2);
        assert_eq!(sel[0].fabric(), FabricDims::new(6, 6));
        assert_eq!(
            sel[0].tm.ctrl_transport,
            CtrlTransport::CtrlNetwork { latency: 1 }
        );
        assert_eq!(sel[1].tm.group_switch_cost, 20);
        assert!(presets_by_tags_on(FabricDims::paper(), "nope").is_err());
    }
}
