//! # marionette-arch
//!
//! Architecture presets: each evaluated machine is a pair of a mapping
//! policy (`marionette-compiler::CompileOptions`) and a timing model
//! (`marionette-sim::TimingModel`), normalized to the same computing
//! fabric exactly as the paper does ("we built the performance models of
//! Softbrain, TIA, REVEL, RipTide and Marionette with the simulator and
//! normalized the computing fabric to the same size"). The no-argument
//! constructors give the paper's 4×4 normalization; every preset also
//! has an `_on(FabricDims)` variant whose centralized-control timing is
//! derived from the mesh corner distance (see `presets`).
//!
//! - [`von_neumann_pe`] / [`dataflow_pe`] — the two generic PE execution
//!   models of §2.3 (Fig 2), used by Fig 11;
//! - [`marionette_pe`], [`marionette_cn`], [`marionette_full`] — the
//!   feature-ablation ladder (Proactive PE Configuration → + Control
//!   Network → + Agile PE Assignment) behind Figs 11, 12, 14, 15, 16;
//! - [`softbrain`], [`tia`], [`revel`], [`riptide`] — the SOTA comparison
//!   points of Fig 17, parameterized from their published execution
//!   models (§8);
//! - [`taxonomy`] — the static data behind Tables 2 and 3.

#![warn(missing_docs)]

pub mod presets;
pub mod taxonomy;

pub use marionette_compiler::FabricDims;
pub use presets::{
    activation_detour_cycles, all_presets, all_presets_on, all_sota, all_sota_on, ccu_dyn_cycles,
    ccu_switch_cycles, dataflow_pe, dataflow_pe_on, marionette_cn, marionette_cn_on,
    marionette_full, marionette_full_on, marionette_pe, marionette_pe_on, preset_for_partition,
    presets_by_tags_on, presets_for_partitions, revel, revel_on, riptide, riptide_on, softbrain,
    softbrain_on, tia, tia_on, tia_switch_cycles, von_neumann_pe, von_neumann_pe_on, Architecture,
};
pub use taxonomy::{capability_matrix, sa_taxonomy, Capabilities};
