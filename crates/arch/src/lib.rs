//! # marionette-arch
//!
//! Architecture presets: each evaluated machine is a pair of a mapping
//! policy (`marionette-compiler::CompileOptions`) and a timing model
//! (`marionette-sim::TimingModel`), normalized to the same 4×4 computing
//! fabric exactly as the paper does ("we built the performance models of
//! Softbrain, TIA, REVEL, RipTide and Marionette with the simulator and
//! normalized the computing fabric to the same size").
//!
//! - [`von_neumann_pe`] / [`dataflow_pe`] — the two generic PE execution
//!   models of §2.3 (Fig 2), used by Fig 11;
//! - [`marionette_pe`], [`marionette_cn`], [`marionette_full`] — the
//!   feature-ablation ladder (Proactive PE Configuration → + Control
//!   Network → + Agile PE Assignment) behind Figs 11, 12, 14, 15, 16;
//! - [`softbrain`], [`tia`], [`revel`], [`riptide`] — the SOTA comparison
//!   points of Fig 17, parameterized from their published execution
//!   models (§8);
//! - [`taxonomy`] — the static data behind Tables 2 and 3.

#![warn(missing_docs)]

pub mod presets;
pub mod taxonomy;

pub use presets::{
    all_presets, all_sota, dataflow_pe, marionette_cn, marionette_full, marionette_pe, revel,
    riptide, softbrain, tia, von_neumann_pe, Architecture,
};
pub use taxonomy::{capability_matrix, sa_taxonomy, Capabilities};
