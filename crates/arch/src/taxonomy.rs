//! Static survey data: the SA taxonomy of Table 2 and the control-flow
//! capability matrix of Table 3.

/// The paper's three control-flow capabilities (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Can a PE autonomously change the configuration of other PEs?
    pub autonomous: bool,
    /// Is there a direct peer-to-peer control flow path between PEs?
    pub peer_to_peer: bool,
    /// Is control handling temporally loosely-coupled with the datapath
    /// (configuration overlapping computation)?
    pub temporally_decoupled: bool,
}

/// One row of the Table 2 survey.
#[derive(Clone, Copy, Debug)]
pub struct TaxonomyRow {
    /// Architecture name.
    pub architecture: &'static str,
    /// `"von Neumann"` or `"dataflow"`.
    pub class: &'static str,
    /// Configuration-triggering mechanism, quoted from the survey.
    pub mechanism: &'static str,
}

/// Table 2: SA taxonomy by PE execution model.
pub fn sa_taxonomy() -> Vec<TaxonomyRow> {
    vec![
        TaxonomyRow {
            architecture: "RICA",
            class: "von Neumann",
            mechanism: "A core processor that generates the overall configuration signal",
        },
        TaxonomyRow {
            architecture: "DRP",
            class: "von Neumann",
            mechanism: "Switching all PE configurations via a finite state machine",
        },
        TaxonomyRow {
            architecture: "DySER",
            class: "von Neumann",
            mechanism: "Configuration update via external processor signal",
        },
        TaxonomyRow {
            architecture: "FPCA",
            class: "von Neumann",
            mechanism: "External processor assignments",
        },
        TaxonomyRow {
            architecture: "DORA",
            class: "von Neumann",
            mechanism: "A counter determines the end and update of the configurations",
        },
        TaxonomyRow {
            architecture: "Plasticine",
            class: "von Neumann",
            mechanism: "A counter controls the distribution and execution of configurations",
        },
        TaxonomyRow {
            architecture: "Softbrain",
            class: "von Neumann",
            mechanism: "Processor fetches instruction from memory",
        },
        TaxonomyRow {
            architecture: "SPU",
            class: "von Neumann",
            mechanism: "Processor fetches instruction from memory",
        },
        TaxonomyRow {
            architecture: "MP-CGRA",
            class: "von Neumann",
            mechanism: "Distributed instruction counters",
        },
        TaxonomyRow {
            architecture: "DRIPS",
            class: "von Neumann",
            mechanism: "The centralized controller dynamically changes the map table",
        },
        TaxonomyRow {
            architecture: "RipTide",
            class: "von Neumann",
            mechanism: "Processor fetches instruction",
        },
        TaxonomyRow {
            architecture: "TRIPS",
            class: "dataflow",
            mechanism: "An instruction window to determine instruction execution",
        },
        TaxonomyRow {
            architecture: "WaveScalar",
            class: "dataflow",
            mechanism: "According to the data, configurations are fetched to execute",
        },
        TaxonomyRow {
            architecture: "TIA",
            class: "dataflow",
            mechanism: "Scheduler selects instructions based on the input data",
        },
        TaxonomyRow {
            architecture: "T3",
            class: "dataflow",
            mechanism: "An instruction window to determine instruction execution",
        },
        TaxonomyRow {
            architecture: "SGMF",
            class: "dataflow",
            mechanism: "The corresponding thread is executed when the token arrives",
        },
        TaxonomyRow {
            architecture: "dMT-CGRA",
            class: "dataflow",
            mechanism: "An instruction window to determine instruction execution",
        },
    ]
}

/// Table 3: control-flow capabilities of the compared architectures.
pub fn capability_matrix() -> Vec<(&'static str, Capabilities)> {
    vec![
        (
            "Softbrain",
            Capabilities {
                autonomous: false,
                peer_to_peer: false,
                temporally_decoupled: false,
            },
        ),
        (
            "TIA",
            Capabilities {
                autonomous: true,
                peer_to_peer: false,
                temporally_decoupled: false,
            },
        ),
        (
            "DySER",
            Capabilities {
                autonomous: false,
                peer_to_peer: false,
                temporally_decoupled: false,
            },
        ),
        (
            "Plasticine",
            Capabilities {
                autonomous: false,
                peer_to_peer: false,
                temporally_decoupled: false,
            },
        ),
        (
            "RipTide",
            Capabilities {
                autonomous: false,
                peer_to_peer: false,
                temporally_decoupled: false,
            },
        ),
        (
            "Marionette",
            Capabilities {
                autonomous: true,
                peer_to_peer: true,
                temporally_decoupled: true,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_matches_paper_counts() {
        let rows = sa_taxonomy();
        assert_eq!(rows.len(), 17);
        assert_eq!(rows.iter().filter(|r| r.class == "dataflow").count(), 6);
    }

    #[test]
    fn only_marionette_has_all_three() {
        let m = capability_matrix();
        let full: Vec<_> = m
            .iter()
            .filter(|(_, c)| c.autonomous && c.peer_to_peer && c.temporally_decoupled)
            .collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].0, "Marionette");
        // TIA is the only other architecture with autonomy (Table 3).
        assert!(m.iter().any(|(n, c)| *n == "TIA" && c.autonomous));
    }
}
