//! Structured CDFG construction.
//!
//! The builder plays the role of the paper's *annotated C → Clang → LLVM IR →
//! CDFG extraction* front end (§4.4, Fig 9/10): kernels are written against a
//! structured API (`for_range`, `loop_while`, `if_else`) and lowered into the
//! flat dataflow operator set of [`crate::op::Op`], while basic blocks, the
//! loop tree and branch regions are recorded as CFG metadata for the
//! compiler's Agile PE Assignment.
//!
//! # Lowering scheme
//!
//! Loops use the *guarded rotated-loop* form:
//!
//! ```text
//! g = cond(inits)                         (parent region)
//! in_k   = steer[T,loop](g, init_k)       (one activation token per entry)
//! byp_k  = steer[F,loop](g, init_k)       (zero-trip bypass)
//! var_k  = carry(last, in_k, next_k)      (per-iteration value)
//! ...body: next_k = f(var_*)...
//! cont   = cond(next_*) ; last = !cont    (per-iteration)
//! exit_k = steer[T,loop](last, next_k)    (one token on loop exit)
//! out_k  = merge[loop](g, exit_k, byp_k)  (join with the bypass)
//! ```
//!
//! Values defined outside a loop but used inside are automatically wrapped in
//! [`Op::Inv`] (loop-invariant replay); values used inside a branch side are
//! automatically steered by the branch predicate. This *import* machinery
//! keeps token rates consistent across regions — the invariant the
//! interpreter and simulator rely on.
//!
//! Loops may not appear inside `if_else` sides (only loop-free hammocks are
//! predicable; this matches how the paper's von Neumann baseline applies
//! Predication vs. Switch Configuration). The builder panics on violation.

use crate::graph::{
    ArrayDecl, BlockId, BlockInfo, BlockKind, Cdfg, CfgEdge, CfgEdgeKind, LoopId, LoopInfo, Node,
    NodeId, ParamDecl, PortSrc,
};
use crate::op::{ArrayId, BinOp, NlOp, Op, SteerRole, UnOp};
use crate::value::{ElemTy, Value};
use std::collections::HashMap;

/// An SSA-like value handle produced by builder operations.
#[derive(Clone, Copy, Debug)]
pub struct V(pub(crate) PortSrc);

impl From<i32> for V {
    fn from(v: i32) -> Self {
        V(PortSrc::Imm(Value::I32(v)))
    }
}

impl From<f32> for V {
    fn from(v: f32) -> Self {
        V(PortSrc::Imm(Value::F32(v)))
    }
}

impl From<Value> for V {
    fn from(v: Value) -> Self {
        V(PortSrc::Imm(v))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct RegionId(usize);

enum RegionKind {
    Top,
    Loop {
        /// Nodes whose `last` port must be patched when the loop closes.
        pending_last: Vec<(NodeId, usize)>,
        /// Zero-trip guard token: imports are steered by it so that
        /// skipped activations leave no stale tokens behind.
        guard: PortSrc,
    },
    Branch {
        pred: PortSrc,
        sense: bool,
    },
}

struct Region {
    kind: RegionKind,
    parent: Option<RegionId>,
    /// Per-region activation tick used to gate all-immediate computations.
    tick: Option<PortSrc>,
    /// Memoized imports of outer values into this region.
    imports: HashMap<NodeId, PortSrc>,
    bb: BlockId,
}

/// Builder for [`Cdfg`] programs.
///
/// # Examples
///
/// ```
/// use marionette_cdfg::builder::CdfgBuilder;
///
/// let mut b = CdfgBuilder::new("dot");
/// let a = b.array_i32("a", 4, &[1, 2, 3, 4]);
/// let x = b.array_i32("x", 4, &[5, 6, 7, 8]);
/// let n = b.imm(4);
/// let sum = b.for_range(0, n, &[0.into()], |b, i, vars| {
///     let av = b.load(a, i);
///     let xv = b.load(x, i);
///     let p = b.mul(av, xv);
///     vec![b.add(vars[0], p)]
/// });
/// b.sink("dot", sum[0]);
/// let g = b.finish();
/// assert!(g.validate().is_empty());
/// ```
pub struct CdfgBuilder {
    g: Cdfg,
    regions: Vec<Region>,
    cur_region: RegionId,
    cur_bb: BlockId,
    /// Output-rate region of every node.
    node_region: Vec<RegionId>,
    start: NodeId,
    loop_parent_stack: Vec<LoopId>,
}

impl CdfgBuilder {
    /// Creates a builder with an entry block and the program start token.
    pub fn new(name: impl Into<String>) -> Self {
        let mut g = Cdfg::new(name);
        g.blocks.push(BlockInfo {
            name: "entry".into(),
            kind: BlockKind::Entry,
            loop_id: None,
            parent: None,
            branch_depth: 0,
        });
        g.nodes.push(Node {
            op: Op::Start,
            inputs: vec![],
            bb: BlockId(0),
            label: None,
        });
        let start = NodeId(0);
        let regions = vec![Region {
            kind: RegionKind::Top,
            parent: None,
            tick: Some(PortSrc::Node(start)),
            imports: HashMap::new(),
            bb: BlockId(0),
        }];
        CdfgBuilder {
            g,
            regions,
            cur_region: RegionId(0),
            cur_bb: BlockId(0),
            node_region: vec![RegionId(0)],
            start,
            loop_parent_stack: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    /// Declares an i32 scratchpad array initialized with `init`
    /// (zero-extended to `len`).
    pub fn array_i32(&mut self, name: &str, len: usize, init: &[i32]) -> ArrayId {
        self.array(
            name,
            len,
            ElemTy::I32,
            init.iter().map(|&v| Value::I32(v)).collect(),
        )
    }

    /// Declares an f32 scratchpad array initialized with `init`.
    pub fn array_f32(&mut self, name: &str, len: usize, init: &[f32]) -> ArrayId {
        self.array(
            name,
            len,
            ElemTy::F32,
            init.iter().map(|&v| Value::F32(v)).collect(),
        )
    }

    /// Declares an array with explicit element type and initial values.
    pub fn array(&mut self, name: &str, len: usize, elem: ElemTy, init: Vec<Value>) -> ArrayId {
        assert!(
            self.g.array_by_name(name).is_none(),
            "duplicate array {name}"
        );
        assert!(init.len() <= len, "array {name}: init longer than len");
        let id = ArrayId(self.g.arrays.len() as u32);
        self.g.arrays.push(ArrayDecl {
            name: name.into(),
            len,
            elem,
            init,
            is_output: false,
        });
        id
    }

    /// Marks an array as a program output (checked against golden models).
    pub fn mark_output(&mut self, arr: ArrayId) {
        self.g.arrays[arr.0 as usize].is_output = true;
    }

    /// Declares a runtime scalar parameter with a default value.
    pub fn param(&mut self, name: &str, default: impl Into<Value>) -> V {
        let id = crate::graph::ParamId(self.g.params.len() as u32);
        self.g.params.push(ParamDecl {
            name: name.into(),
            default: default.into(),
        });
        V(PortSrc::Param(id))
    }

    /// An immediate value.
    pub fn imm(&mut self, v: impl Into<Value>) -> V {
        V(PortSrc::Imm(v.into()))
    }

    // ------------------------------------------------------------------
    // Region / node plumbing
    // ------------------------------------------------------------------

    fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0]
    }

    fn is_ancestor(&self, anc: RegionId, mut r: RegionId) -> bool {
        loop {
            if r == anc {
                return true;
            }
            match self.region(r).parent {
                Some(p) => r = p,
                None => return false,
            }
        }
    }

    /// Raw node creation: no import, no gating. Used for lowering wiring
    /// where token rates intentionally differ between ports.
    fn node_raw(&mut self, op: Op, inputs: Vec<PortSrc>, region: RegionId, bb: BlockId) -> NodeId {
        debug_assert_eq!(inputs.len(), op.input_ports(), "{op}: bad arity");
        let id = NodeId(self.g.nodes.len() as u32);
        self.g.nodes.push(Node {
            op,
            inputs,
            bb,
            label: None,
        });
        self.node_region.push(region);
        id
    }

    /// Imports `src` into region `target`, wrapping with `Inv` (loop) or
    /// branch steers as needed. Immediates and params import freely.
    fn import_into(&mut self, src: PortSrc, target: RegionId) -> PortSrc {
        let n = match src {
            PortSrc::Node(n) => n,
            other => return other,
        };
        let nr = self.node_region[n.0 as usize];
        if nr == target {
            return src;
        }
        assert!(
            self.is_ancestor(nr, target),
            "value {n} (region {:?}) used outside its region (target {:?}); \
             values may only flow outward through loop exits / branch merges",
            nr,
            target
        );
        if let Some(hit) = self.region(target).imports.get(&n) {
            return *hit;
        }
        // Import into the parent first, then wrap one level down.
        let parent = self.region(target).parent.expect("non-top region");
        let from_parent = self.import_into(src, parent);
        let bb = self.region(target).bb;
        let imported = match &self.regions[target.0].kind {
            RegionKind::Loop { guard, .. } => {
                // Gate by the zero-trip guard (the token only enters the
                // loop when the loop actually runs), then replay it every
                // iteration with Inv.
                let guard = *guard;
                let gated = self.node_raw(
                    Op::Steer {
                        sense: true,
                        role: SteerRole::LoopCtl,
                    },
                    vec![guard, from_parent],
                    parent,
                    bb,
                );
                let inv = self.node_raw(
                    Op::Inv,
                    vec![PortSrc::Node(gated), PortSrc::None],
                    target,
                    bb,
                );
                if let RegionKind::Loop { pending_last, .. } = &mut self.regions[target.0].kind {
                    pending_last.push((inv, 1));
                }
                PortSrc::Node(inv)
            }
            RegionKind::Branch { pred, sense } => {
                let (pred, sense) = (*pred, *sense);
                let steer = self.node_raw(
                    Op::Steer {
                        sense,
                        role: SteerRole::Branch,
                    },
                    vec![pred, from_parent],
                    target,
                    bb,
                );
                PortSrc::Node(steer)
            }
            RegionKind::Top => unreachable!("top region has no parent"),
        };
        self.regions[target.0].imports.insert(n, imported);
        imported
    }

    /// The activation tick of the given region (created lazily for branch
    /// regions).
    fn tick_of(&mut self, region: RegionId) -> PortSrc {
        if let Some(t) = self.region(region).tick {
            return t;
        }
        // Branch region: steer the parent tick by the predicate.
        let parent = self.region(region).parent.expect("tickless top region");
        let ptick = self.tick_of(parent);
        let t = self.import_into(ptick, region);
        self.regions[region.0].tick = Some(t);
        t
    }

    /// Ensures `v` is a token (consumable) in the current region by gating
    /// immediates/params off the region tick.
    fn tokenize(&mut self, v: PortSrc) -> PortSrc {
        match v {
            PortSrc::Node(_) => self.import_into(v, self.cur_region),
            PortSrc::Imm(_) | PortSrc::Param(_) => {
                let tick = self.tick_of(self.cur_region);
                let g = self.node_raw(Op::Gate, vec![tick, v], self.cur_region, self.cur_bb);
                PortSrc::Node(g)
            }
            PortSrc::None => PortSrc::None,
        }
    }

    /// Standard node creation: imports all operands into the current region
    /// and guarantees at least one token input.
    fn node(&mut self, op: Op, inputs: Vec<PortSrc>) -> V {
        let mut ins: Vec<PortSrc> = inputs
            .into_iter()
            .map(|s| self.import_into(s, self.cur_region))
            .collect();
        if !ins.iter().any(|s| matches!(s, PortSrc::Node(_))) {
            // All-immediate computation: gate the first connected port so
            // the node fires once per region activation.
            let pos = ins
                .iter()
                .position(|s| s.is_connected())
                .expect("node with no connected inputs");
            ins[pos] = self.tokenize(ins[pos]);
        }
        let id = self.node_raw(op, ins, self.cur_region, self.cur_bb);
        V(PortSrc::Node(id))
    }

    // ------------------------------------------------------------------
    // Compute operations
    // ------------------------------------------------------------------

    /// Creates a binary operation node.
    pub fn bin(&mut self, op: BinOp, a: V, b: V) -> V {
        self.node(Op::Bin(op), vec![a.0, b.0])
    }

    /// Creates a unary operation node.
    pub fn un(&mut self, op: UnOp, a: V) -> V {
        self.node(Op::Un(op), vec![a.0])
    }

    /// Creates a nonlinear operation node (requires a nonlinear PE).
    pub fn nl(&mut self, op: NlOp, a: V) -> V {
        self.node(Op::Nl(op), vec![a.0])
    }

    /// Three-input multiplexer: `if pred { t } else { f }` with both sides
    /// computed (cheap hammock predication on the data plane).
    pub fn mux(&mut self, pred: V, t: V, f: V) -> V {
        self.node(Op::Mux, vec![pred.0, t.0, f.0])
    }

    /// Loads `arr[idx]`.
    pub fn load(&mut self, arr: ArrayId, idx: V) -> V {
        self.node(Op::Load(arr), vec![idx.0, PortSrc::None])
    }

    /// Loads `arr[idx]` ordered after the dependence token `dep`.
    pub fn load_dep(&mut self, arr: ArrayId, idx: V, dep: V) -> V {
        self.node(Op::Load(arr), vec![idx.0, dep.0])
    }

    /// Stores `val` to `arr[idx]`; returns the store's dependence token.
    pub fn store(&mut self, arr: ArrayId, idx: V, val: V) -> V {
        self.node(Op::Store(arr), vec![idx.0, val.0, PortSrc::None])
    }

    /// Stores with an explicit dependence token (memory ordering).
    pub fn store_dep(&mut self, arr: ArrayId, idx: V, val: V, dep: V) -> V {
        self.node(Op::Store(arr), vec![idx.0, val.0, dep.0])
    }

    /// Collects `v` under the result label `name`.
    ///
    /// Immediates and parameters are gated off the region's activation
    /// tick (like any all-immediate computation), so `sink("x", b.imm(5))`
    /// collects one value per region activation instead of never firing.
    pub fn sink(&mut self, name: &str, v: V) {
        let v = self.tokenize(v.0);
        let id = self.node_raw(Op::Sink, vec![v], self.cur_region, self.cur_bb);
        self.g.nodes[id.0 as usize].label = Some(name.into());
    }

    // ------------------------------------------------------------------
    // Structured control flow
    // ------------------------------------------------------------------

    /// `for i in lo..hi` with loop-carried variables.
    ///
    /// `body(builder, i, vars)` returns the next value of each variable;
    /// the final values (after the last iteration, or the initial values if
    /// the loop runs zero times) are returned.
    pub fn for_range<F>(
        &mut self,
        lo: impl Into<V>,
        hi: impl Into<V>,
        inits: &[V],
        body: F,
    ) -> Vec<V>
    where
        F: FnOnce(&mut Self, V, &[V]) -> Vec<V>,
    {
        self.for_range_step(lo, hi, 1, inits, body)
    }

    /// `for i in (lo..hi).step_by(step)` with loop-carried variables.
    ///
    /// # Panics
    /// Panics if `step <= 0` or if called inside an `if_else` side.
    pub fn for_range_step<F>(
        &mut self,
        lo: impl Into<V>,
        hi: impl Into<V>,
        step: i32,
        inits: &[V],
        body: F,
    ) -> Vec<V>
    where
        F: FnOnce(&mut Self, V, &[V]) -> Vec<V>,
    {
        assert!(step > 0, "for_range_step requires a positive step");
        let lo = lo.into();
        let hi = hi.into();
        let dynamic = matches!(hi.0, PortSrc::Node(_)) || matches!(lo.0, PortSrc::Node(_));
        let mut all_inits = vec![lo];
        all_inits.extend_from_slice(inits);
        let step_v = V(PortSrc::Imm(Value::I32(step)));
        let outs = self.lower_loop(
            &all_inits,
            dynamic,
            |b, vals| b.bin(BinOp::Lt, vals[0], hi),
            |b, vals| {
                let i = vals[0];
                let user_next = body(b, i, &vals[1..]);
                // The induction increment belongs to the loop operator
                // (header cluster), not the body pipeline.
                let inext = b.in_loop_header(|b| b.bin(BinOp::Add, i, step_v));
                let mut next = vec![inext];
                next.extend(user_next);
                next
            },
        );
        outs[1..].to_vec()
    }

    /// General while loop over carried variables.
    ///
    /// `cond` is evaluated twice: on the initial values (zero-trip guard,
    /// in the enclosing region) and on each iteration's next values
    /// (continuation test). `body` maps current values to next values.
    /// Returns the post-loop values.
    ///
    /// # Panics
    /// Panics if `inits` is empty or if called inside an `if_else` side.
    pub fn loop_while<C, F>(&mut self, inits: &[V], cond: C, body: F) -> Vec<V>
    where
        C: Fn(&mut Self, &[V]) -> V,
        F: FnOnce(&mut Self, &[V]) -> Vec<V>,
    {
        assert!(
            !inits.is_empty(),
            "loop_while requires at least one variable"
        );
        self.lower_loop(inits, true, cond, body)
    }

    /// Builds nodes inside the enclosing loop's header block (the loop
    /// operator cluster): loop-control arithmetic placed here executes on
    /// the loop generator at one iteration per cycle.
    ///
    /// # Panics
    /// Panics when called outside a loop body.
    pub fn in_loop_header<F, R>(&mut self, f: F) -> R
    where
        F: FnOnce(&mut Self) -> R,
    {
        let lid = *self
            .loop_parent_stack
            .last()
            .expect("in_loop_header requires an enclosing loop");
        let header = self.g.loops[lid.0 as usize].header;
        let saved = self.cur_bb;
        self.cur_bb = header;
        let r = f(self);
        self.cur_bb = saved;
        r
    }

    fn assert_not_in_branch(&self) {
        let mut r = self.cur_region;
        loop {
            match &self.region(r).kind {
                RegionKind::Branch { .. } => panic!(
                    "loops inside if_else sides are not supported: only loop-free \
                     hammocks are predicable (restructure the kernel so the loop \
                     surrounds the branch)"
                ),
                RegionKind::Loop { .. } => match self.region(r).parent {
                    Some(p) => r = p,
                    None => return,
                },
                RegionKind::Top => return,
            }
        }
    }

    fn lower_loop<C, F>(&mut self, inits: &[V], dynamic: bool, cond: C, body: F) -> Vec<V>
    where
        C: Fn(&mut Self, &[V]) -> V,
        F: FnOnce(&mut Self, &[V]) -> Vec<V>,
    {
        self.assert_not_in_branch();
        let parent_region = self.cur_region;
        let parent_bb = self.cur_bb;

        // --- guard, in the parent region -------------------------------
        let g_raw = cond(self, inits);
        let g = self.tokenize(g_raw.0);

        // --- blocks & loop metadata ------------------------------------
        let loop_id = LoopId(self.g.loops.len() as u32);
        let depth = self.loop_parent_stack.len() as u32 + 1;
        let parent_loop = self.loop_parent_stack.last().copied();
        let header_bb = BlockId(self.g.blocks.len() as u32);
        self.g.blocks.push(BlockInfo {
            name: format!("loop{}.header", loop_id.0),
            kind: BlockKind::LoopHeader,
            loop_id: Some(loop_id),
            parent: Some(parent_bb),
            branch_depth: self.g.block(parent_bb).branch_depth,
        });
        let body_bb = BlockId(self.g.blocks.len() as u32);
        self.g.blocks.push(BlockInfo {
            name: format!("loop{}.body", loop_id.0),
            kind: BlockKind::LoopBody,
            loop_id: Some(loop_id),
            parent: Some(header_bb),
            branch_depth: self.g.block(parent_bb).branch_depth,
        });
        self.g.loops.push(LoopInfo {
            header: header_bb,
            body: body_bb,
            parent: parent_loop,
            depth,
            dynamic_bounds: dynamic,
            has_own_compute: false, // fixed up in finish()
        });
        self.g.cfg_edges.push(CfgEdge {
            from: parent_bb,
            to: header_bb,
            kind: CfgEdgeKind::LoopEnter,
        });
        self.g.cfg_edges.push(CfgEdge {
            from: header_bb,
            to: body_bb,
            kind: CfgEdgeKind::Seq,
        });
        self.g.cfg_edges.push(CfgEdge {
            from: body_bb,
            to: header_bb,
            kind: CfgEdgeKind::LoopBack,
        });
        self.g.cfg_edges.push(CfgEdge {
            from: header_bb,
            to: parent_bb,
            kind: CfgEdgeKind::LoopExit,
        });

        // --- entry steers (activation rate: parent region) -------------
        let mut loop_in = Vec::with_capacity(inits.len());
        let mut bypass = Vec::with_capacity(inits.len());
        for init in inits {
            let iv = self.import_into(init.0, parent_region);
            let li = self.node_raw(
                Op::Steer {
                    sense: true,
                    role: SteerRole::LoopCtl,
                },
                vec![g, iv],
                parent_region,
                header_bb,
            );
            let by = self.node_raw(
                Op::Steer {
                    sense: false,
                    role: SteerRole::LoopCtl,
                },
                vec![g, iv],
                parent_region,
                parent_bb,
            );
            loop_in.push(PortSrc::Node(li));
            bypass.push(PortSrc::Node(by));
        }

        // --- loop region + carries --------------------------------------
        let loop_region = RegionId(self.regions.len());
        self.regions.push(Region {
            kind: RegionKind::Loop {
                pending_last: Vec::new(),
                guard: g,
            },
            parent: Some(parent_region),
            tick: None, // set to the first carry below
            imports: HashMap::new(),
            bb: header_bb,
        });
        let mut carries = Vec::with_capacity(inits.len());
        for li in &loop_in {
            let c = self.node_raw(
                Op::Carry,
                vec![PortSrc::None, *li, PortSrc::None],
                loop_region,
                header_bb,
            );
            if let RegionKind::Loop { pending_last, .. } = &mut self.regions[loop_region.0].kind {
                pending_last.push((c, 0));
            }
            carries.push(c);
        }
        self.regions[loop_region.0].tick = Some(PortSrc::Node(carries[0]));

        // --- body --------------------------------------------------------
        self.cur_region = loop_region;
        self.cur_bb = body_bb;
        self.loop_parent_stack.push(loop_id);
        let vars: Vec<V> = carries.iter().map(|&c| V(PortSrc::Node(c))).collect();
        let next = body(self, &vars);
        assert_eq!(
            next.len(),
            inits.len(),
            "loop body must return one next value per variable"
        );
        self.loop_parent_stack.pop();

        // --- continuation test, in the header --------------------------
        self.cur_bb = header_bb;
        let next_srcs: Vec<PortSrc> = next
            .iter()
            .map(|v| {
                let s = self.import_into(v.0, loop_region);
                // `next` feeds a carry and an exit steer, which pop per
                // iteration: immediates would never be consumed, so gate
                // them to the iteration rate.
                if matches!(s, PortSrc::Node(_)) {
                    s
                } else {
                    self.tokenize(s)
                }
            })
            .collect();
        let cont = cond(self, &next_srcs.iter().map(|&s| V(s)).collect::<Vec<_>>());
        let cont = self.import_into(cont.0, loop_region);
        let last_id = self.node_raw(Op::Un(UnOp::LNot), vec![cont], loop_region, header_bb);
        let last = PortSrc::Node(last_id);

        // --- patch carries/invariants with `last`, wire `next` ---------
        let pending = match &mut self.regions[loop_region.0].kind {
            RegionKind::Loop { pending_last, .. } => std::mem::take(pending_last),
            _ => unreachable!(),
        };
        for (node, port) in pending {
            self.g.nodes[node.0 as usize].inputs[port] = last;
        }
        for (k, &c) in carries.iter().enumerate() {
            self.g.nodes[c.0 as usize].inputs[2] = next_srcs[k];
        }

        // --- exits + join ----------------------------------------------
        self.cur_region = parent_region;
        self.cur_bb = parent_bb;
        let mut outs = Vec::with_capacity(inits.len());
        for k in 0..inits.len() {
            let ex = self.node_raw(
                Op::Steer {
                    sense: true,
                    role: SteerRole::LoopCtl,
                },
                vec![last, next_srcs[k]],
                parent_region,
                header_bb,
            );
            let m = self.node_raw(
                Op::Merge {
                    role: SteerRole::LoopCtl,
                },
                vec![g, PortSrc::Node(ex), bypass[k]],
                parent_region,
                parent_bb,
            );
            outs.push(V(PortSrc::Node(m)));
        }
        outs
    }

    /// Structured branch: both closures return the same number of values,
    /// which are merged by the predicate. Parent values used inside a side
    /// are automatically steered; loops are not allowed inside sides.
    pub fn if_else<T, E>(&mut self, pred: V, then_f: T, else_f: E) -> Vec<V>
    where
        T: FnOnce(&mut Self) -> Vec<V>,
        E: FnOnce(&mut Self) -> Vec<V>,
    {
        let parent_region = self.cur_region;
        let parent_bb = self.cur_bb;
        let p = self.tokenize(pred.0);
        let bd = self.g.block(parent_bb).branch_depth + 1;
        let loop_id = self.g.block(parent_bb).loop_id;

        type SideBody<'b, B> = Box<dyn FnOnce(&mut B) -> Vec<V> + 'b>;
        let run_side =
            |builder: &mut Self, sense: bool, f: SideBody<'_, Self>| -> (Vec<PortSrc>, BlockId) {
                let bb = BlockId(builder.g.blocks.len() as u32);
                builder.g.blocks.push(BlockInfo {
                    name: format!("{}{}", if sense { "then" } else { "else" }, bb.0),
                    kind: if sense {
                        BlockKind::BranchThen
                    } else {
                        BlockKind::BranchElse
                    },
                    loop_id,
                    parent: Some(parent_bb),
                    branch_depth: bd,
                });
                builder.g.cfg_edges.push(CfgEdge {
                    from: parent_bb,
                    to: bb,
                    kind: if sense {
                        CfgEdgeKind::BranchTaken
                    } else {
                        CfgEdgeKind::BranchUntaken
                    },
                });
                builder.g.cfg_edges.push(CfgEdge {
                    from: bb,
                    to: parent_bb,
                    kind: CfgEdgeKind::Join,
                });
                let region = RegionId(builder.regions.len());
                builder.regions.push(Region {
                    kind: RegionKind::Branch { pred: p, sense },
                    parent: Some(parent_region),
                    tick: None,
                    imports: HashMap::new(),
                    bb,
                });
                builder.cur_region = region;
                builder.cur_bb = bb;
                let vals = f(builder);
                // Import returned values into the side region so the merge sees
                // one token per activation even for untouched parent values.
                let srcs = vals
                    .iter()
                    .map(|v| builder.import_into(v.0, region))
                    .collect();
                builder.cur_region = parent_region;
                builder.cur_bb = parent_bb;
                (srcs, bb)
            };

        let (tvals, _tbb) = run_side(self, true, Box::new(then_f));
        let (evals, _ebb) = run_side(self, false, Box::new(else_f));
        assert_eq!(
            tvals.len(),
            evals.len(),
            "if_else sides must return the same number of values"
        );
        tvals
            .into_iter()
            .zip(evals)
            .map(|(t, e)| {
                V(PortSrc::Node(self.node_raw(
                    Op::Merge {
                        role: SteerRole::Branch,
                    },
                    vec![p, t, e],
                    parent_region,
                    parent_bb,
                )))
            })
            .collect()
    }

    /// Finishes construction: computes loop metadata and validates.
    ///
    /// # Panics
    /// Panics if the constructed graph fails [`Cdfg::validate`].
    pub fn finish(mut self) -> Cdfg {
        // has_own_compute: a loop directly contains data-plane work if any
        // non-control node lives in a block whose innermost loop is this
        // loop (headers excluded: loop control is control-plane work).
        let mut own = vec![false; self.g.loops.len()];
        for n in &self.g.nodes {
            if n.op.is_control() || matches!(n.op, Op::Sink) {
                continue;
            }
            let b = self.g.block(n.bb);
            if let Some(l) = b.loop_id {
                if b.kind != BlockKind::LoopHeader {
                    own[l.0 as usize] = true;
                }
            }
        }
        for (i, l) in self.g.loops.iter_mut().enumerate() {
            l.has_own_compute = own[i];
        }
        self.g.assert_valid();
        self.g
    }

    /// Number of nodes created so far (useful for size assertions).
    pub fn node_count(&self) -> usize {
        self.g.nodes.len()
    }

    /// The program start token (one `Unit` token at program begin).
    pub fn start_token(&self) -> V {
        V(PortSrc::Node(self.start))
    }
}

// Convenience wrappers for every operator, so kernels read naturally.
macro_rules! bin_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl CdfgBuilder {
            $(
                #[doc = concat!("Shorthand for [`CdfgBuilder::bin`] with [`BinOp::", stringify!($op), "`].")]
                pub fn $name(&mut self, a: V, b: V) -> V {
                    self.bin(BinOp::$op, a, b)
                }
            )*
        }
    };
}

bin_methods!(
    add => Add, sub => Sub, mul => Mul, div => Div, rem => Rem,
    and_ => And, or_ => Or, xor => Xor, shl => Shl, shr => Shr, ashr => AShr,
    min => Min, max => Max,
    lt => Lt, le => Le, gt => Gt, ge => Ge, eq => Eq, ne => Ne,
    fadd => FAdd, fsub => FSub, fmul => FMul, fdiv => FDiv,
    fmin => FMin, fmax => FMax,
    flt => FLt, fle => FLe, fgt => FGt, fge => FGe,
);

macro_rules! un_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl CdfgBuilder {
            $(
                #[doc = concat!("Shorthand for [`CdfgBuilder::un`] with [`UnOp::", stringify!($op), "`].")]
                pub fn $name(&mut self, a: V) -> V {
                    self.un(UnOp::$op, a)
                }
            )*
        }
    };
}

un_methods!(
    not_ => Not, neg => Neg, abs => Abs, fneg => FNeg, fabs => FAbs,
    i2f => I2F, f2i => F2I, lnot => LNot,
);

macro_rules! nl_methods {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl CdfgBuilder {
            $(
                #[doc = concat!("Shorthand for [`CdfgBuilder::nl`] with [`NlOp::", stringify!($op), "`].")]
                pub fn $name(&mut self, a: V) -> V {
                    self.nl(NlOp::$op, a)
                }
            )*
        }
    };
}

nl_methods!(
    sigmoid => Sigmoid, log_ => Log, exp_ => Exp, sqrt_ => Sqrt,
    recip => Recip, tanh_ => Tanh,
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlockKind;

    #[test]
    fn straight_line() {
        let mut b = CdfgBuilder::new("t");
        let x = b.imm(2);
        let y = b.imm(3);
        let s = b.add(x, y);
        b.sink("s", s);
        let g = b.finish();
        assert_eq!(g.blocks.len(), 1);
        // start, gate (tokenized imm), add, sink
        assert_eq!(g.nodes.len(), 4);
    }

    #[test]
    fn counted_loop_structure() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let outs = b.for_range(0, 10, &[zero], |b, i, vars| vec![b.add(vars[0], i)]);
        b.sink("sum", outs[0]);
        let g = b.finish();
        assert_eq!(g.loops.len(), 1);
        assert_eq!(g.blocks.len(), 3); // entry, header, body
        assert!(!g.loops[0].dynamic_bounds);
        assert_eq!(g.loops[0].depth, 1);
        assert!(g.blocks.iter().any(|b| b.kind == BlockKind::LoopHeader));
    }

    #[test]
    fn nested_loop_depth_and_dynamic_bounds() {
        let mut b = CdfgBuilder::new("t");
        let acc0 = b.imm(0);
        let n = b.param("n", 4);
        let outs = b.for_range(0, n, &[acc0], |b, i, vars| {
            let hi = b.add(i, 3.into());
            let inner = b.for_range(i, hi, &[vars[0]], |b, j, v| vec![b.add(v[0], j)]);
            vec![inner[0]]
        });
        b.sink("acc", outs[0]);
        let g = b.finish();
        assert_eq!(g.loops.len(), 2);
        assert_eq!(g.loops[1].depth, 2);
        assert_eq!(g.loops[1].parent, Some(LoopId(0)));
        assert!(g.loops[1].dynamic_bounds, "bounds come from computation");
        assert!(g.max_loop_depth() == 2);
    }

    #[test]
    fn if_else_structure() {
        let mut b = CdfgBuilder::new("t");
        let x = b.param("x", 5);
        let zero = b.imm(0);
        let p = b.gt(x, zero);
        let outs = b.if_else(
            p,
            |b| vec![b.add(x, 1.into())],
            |b| vec![b.sub(x, 1.into())],
        );
        b.sink("r", outs[0]);
        let g = b.finish();
        assert!(g.blocks.iter().any(|b| b.kind == BlockKind::BranchThen));
        assert!(g.blocks.iter().any(|b| b.kind == BlockKind::BranchElse));
        assert_eq!(g.blocks.iter().map(|b| b.branch_depth).max(), Some(1));
    }

    #[test]
    #[should_panic(expected = "loops inside if_else")]
    fn loop_in_branch_rejected() {
        let mut b = CdfgBuilder::new("t");
        let one = b.imm(1);
        b.if_else(
            one,
            |b| {
                let z = b.imm(0);
                let o = b.for_range(0, 3, &[z], |b, i, v| vec![b.add(v[0], i)]);
                vec![o[0]]
            },
            |b| vec![b.imm(0)],
        );
    }

    #[test]
    #[should_panic(expected = "used outside its region")]
    fn escape_rejected() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let mut leaked = None;
        let _ = b.for_range(0, 3, &[zero], |b, i, v| {
            leaked = Some(b.add(i, 1.into()));
            vec![v[0]]
        });
        // Using a loop-interior value outside the loop must panic.
        let l = leaked.unwrap();
        let _ = b.add(l, 1.into());
    }

    #[test]
    fn invariant_import_is_memoized() {
        let mut b = CdfgBuilder::new("t");
        let n = b.param("n", 8);
        let big = b.add(n, 100.into()); // parent-region node value
        let zero = b.imm(0);
        let _ = b.for_range(0, 4, &[zero], |b, _i, v| {
            let a = b.add(v[0], big);
            let c = b.add(a, big); // second use: same Inv node
            vec![c]
        });
        let g = b.finish();
        let invs = g.nodes.iter().filter(|n| matches!(n.op, Op::Inv)).count();
        assert_eq!(invs, 1, "one Inv per imported value per region");
    }

    #[test]
    fn loop_metadata_has_own_compute() {
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 8, &[]);
        let zero = b.imm(0);
        let _ = b.for_range(0, 4, &[zero], |b, i, v| {
            // outer body has compute (the mul) and a subloop -> imperfect
            let base = b.mul(i, 2.into());
            let inner = b.for_range(0, 2, &[v[0]], |b, j, w| {
                let idx = b.add(j, base);
                let x = b.load(a, idx);
                vec![b.add(w[0], x)]
            });
            vec![inner[0]]
        });
        let g = b.finish();
        assert!(g.loops[0].has_own_compute, "outer loop has its own mul");
        assert!(g.loops[1].has_own_compute, "inner loop has the load/add");
    }
}
