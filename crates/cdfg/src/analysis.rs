//! CDFG analyses backing the paper's characterization tables.
//!
//! - [`ControlFlowProfile`] reproduces Table 1 (control flow forms across
//!   applications): branch forms (nested/innermost/serial) and loop forms
//!   (nested/imperfect/serial).
//! - [`ops_under_branch_ratio`] reproduces the secondary series of Fig 11
//!   (the fraction of operators under a branch, which exposes the PE waste
//!   of static predicated mapping).

use crate::graph::{BlockId, BlockKind, Cdfg, LoopId};
use crate::op::Op;
use std::fmt;

/// Branch-divergence forms found in a kernel (Table 1 vocabulary).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BranchForms {
    /// A branch nested inside another branch (`deep >= 2`).
    pub nested: bool,
    /// A branch whose innermost enclosing loop is an innermost loop.
    pub innermost: bool,
    /// A branch in a loop that still contains deeper loops ("sub-inner").
    pub sub_inner: bool,
    /// Two or more sibling branch regions in the same block.
    pub serial: bool,
    /// Total number of branch regions (then/else pairs counted once).
    pub count: usize,
}

/// Loop-nest forms found in a kernel (Table 1 vocabulary).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoopForms {
    /// Maximum loop nesting depth.
    pub max_depth: u32,
    /// Nested loops present (depth >= 2).
    pub nested: bool,
    /// An outer loop carries its own compute besides subloops.
    pub imperfect: bool,
    /// Two or more sibling loops at the same nesting level.
    pub serial: bool,
    /// A loop whose bounds are computed at run time.
    pub dynamic_bounds: bool,
    /// Total loop count.
    pub count: usize,
}

/// Control-flow characterization of one kernel: one row of Table 1.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ControlFlowProfile {
    /// Branch forms present.
    pub branches: BranchForms,
    /// Loop forms present.
    pub loops: LoopForms,
    /// Fraction of data-plane operators under a branch region, 0..=1.
    pub ops_under_branch: f64,
    /// Total data-plane (compute + memory + mux) operators.
    pub compute_ops: usize,
    /// Total control-plane operators.
    pub control_ops: usize,
}

impl ControlFlowProfile {
    /// True when the kernel exercises intensive control flow: any branch
    /// divergence, imperfect/serial loops, or dynamic bounds.
    pub fn is_intensive(&self) -> bool {
        self.branches.count > 0
            || self.loops.imperfect
            || self.loops.serial
            || self.loops.dynamic_bounds
    }

    /// Table-1 style human-readable branch description.
    pub fn branch_text(&self) -> String {
        if self.branches.count == 0 {
            return "N/A".into();
        }
        let mut parts = Vec::new();
        if self.branches.nested {
            parts.push("Nested branches");
        }
        if self.branches.serial {
            parts.push("Serial branches");
        }
        if self.branches.innermost {
            parts.push("Innermost");
        } else if self.branches.sub_inner {
            parts.push("Sub-inner");
        }
        if parts.is_empty() {
            parts.push("Branches");
        }
        parts.join(", ")
    }

    /// Table-1 style human-readable loop description.
    pub fn loop_text(&self) -> String {
        if self.loops.count == 0 {
            return "N/A".into();
        }
        let mut parts = Vec::new();
        if self.loops.imperfect && self.loops.nested {
            parts.push("Imperfect nested");
        } else if self.loops.nested {
            parts.push("Nested");
        }
        if self.loops.serial {
            parts.push("Serial loops");
        }
        if parts.is_empty() {
            parts.push("Single");
        }
        parts.join(", ")
    }
}

impl fmt::Display for ControlFlowProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "branches: {} | loops: {} | ops-under-branch {:.0}%",
            self.branch_text(),
            self.loop_text(),
            self.ops_under_branch * 100.0
        )
    }
}

/// Whether `l` is an innermost loop (has no children).
pub fn is_innermost(g: &Cdfg, l: LoopId) -> bool {
    !g.loops.iter().any(|x| x.parent == Some(l))
}

/// Blocks belonging to branch regions, with their parent block.
fn branch_blocks(g: &Cdfg) -> Vec<(BlockId, &crate::graph::BlockInfo)> {
    g.blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| matches!(b.kind, BlockKind::BranchThen | BlockKind::BranchElse))
        .map(|(i, b)| (BlockId(i as u32), b))
        .collect()
}

/// Computes the fraction of data-plane operators that live under a branch
/// region (Fig 11's secondary axis).
pub fn ops_under_branch_ratio(g: &Cdfg) -> f64 {
    let mut total = 0usize;
    let mut under = 0usize;
    for n in &g.nodes {
        if n.op.is_control() || matches!(n.op, Op::Sink) {
            continue;
        }
        total += 1;
        if g.block(n.bb).branch_depth > 0 {
            under += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        under as f64 / total as f64
    }
}

/// Characterizes a kernel's control flow (one Table 1 row).
pub fn profile(g: &Cdfg) -> ControlFlowProfile {
    let mut branches = BranchForms::default();
    let bb = branch_blocks(g);
    // then/else pairs share a parent; count regions as then-blocks.
    let then_blocks: Vec<_> = bb
        .iter()
        .filter(|(_, b)| b.kind == BlockKind::BranchThen)
        .collect();
    branches.count = then_blocks.len();
    for (_, b) in &then_blocks {
        if b.branch_depth >= 2 {
            branches.nested = true;
        }
        match b.loop_id {
            Some(l) if is_innermost(g, l) => branches.innermost = true,
            Some(_) => branches.sub_inner = true,
            None => {}
        }
    }
    // serial: two then-blocks with the same parent block
    for i in 0..then_blocks.len() {
        for j in (i + 1)..then_blocks.len() {
            if then_blocks[i].1.parent == then_blocks[j].1.parent {
                branches.serial = true;
            }
        }
    }

    let mut loops = LoopForms {
        max_depth: g.max_loop_depth(),
        count: g.loops.len(),
        ..Default::default()
    };
    loops.nested = loops.max_depth >= 2;
    for (i, l) in g.loops.iter().enumerate() {
        let has_children = g.loops.iter().any(|x| x.parent == Some(LoopId(i as u32)));
        if has_children && l.has_own_compute {
            loops.imperfect = true;
        }
        if l.dynamic_bounds {
            loops.dynamic_bounds = true;
        }
    }
    // serial: two loops with the same parent
    for i in 0..g.loops.len() {
        for j in (i + 1)..g.loops.len() {
            if g.loops[i].parent == g.loops[j].parent {
                loops.serial = true;
            }
        }
    }

    ControlFlowProfile {
        branches,
        loops,
        ops_under_branch: ops_under_branch_ratio(g),
        compute_ops: g.compute_node_count(),
        control_ops: g.control_node_count(),
    }
}

/// Per-block data-plane operator counts, used by the scheduler's reshape
/// pass to size PE regions.
pub fn compute_ops_per_block(g: &Cdfg) -> Vec<usize> {
    let mut counts = vec![0usize; g.blocks.len()];
    for n in &g.nodes {
        if !n.op.is_control() && !matches!(n.op, Op::Sink) {
            counts[n.bb.0 as usize] += 1;
        }
    }
    counts
}

/// Blocks directly belonging to a loop (header + body + branch blocks of
/// that loop level, excluding deeper loops).
pub fn loop_own_blocks(g: &Cdfg, l: LoopId) -> Vec<BlockId> {
    g.blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.loop_id == Some(l))
        .map(|(i, _)| BlockId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;

    fn branchy_imperfect() -> Cdfg {
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 64, &[]);
        let zero = b.imm(0);
        let _ = b.for_range(0, 8, &[zero], |b, i, v| {
            let base = b.mul(i, 8.into()); // outer compute -> imperfect
            let inner = b.for_range(0, 8, &[v[0]], |b, j, w| {
                let idx = b.add(base, j);
                let x = b.load(a, idx);
                let c = b.gt(x, 0.into());
                let r = b.if_else(c, |b| vec![b.add(w[0], x)], |_| vec![w[0]]);
                vec![r[0]]
            });
            vec![inner[0]]
        });
        b.finish()
    }

    #[test]
    fn profile_detects_forms() {
        let g = branchy_imperfect();
        let p = profile(&g);
        assert!(p.loops.nested);
        assert!(p.loops.imperfect);
        assert!(!p.loops.serial);
        assert!(p.branches.innermost);
        assert!(!p.branches.nested);
        assert_eq!(p.branches.count, 1);
        assert!(p.is_intensive());
        assert!(p.ops_under_branch > 0.0 && p.ops_under_branch < 1.0);
        assert_eq!(p.loop_text(), "Imperfect nested");
    }

    #[test]
    fn serial_loops_detected() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let o1 = b.for_range(0, 4, &[zero], |b, i, v| vec![b.add(v[0], i)]);
        let o2 = b.for_range(0, 4, &[o1[0]], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("s", o2[0]);
        let g = b.finish();
        let p = profile(&g);
        assert!(p.loops.serial);
        assert!(!p.loops.nested);
        assert_eq!(p.loop_text(), "Serial loops");
    }

    #[test]
    fn non_intensive_single_loop() {
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 16, &[]);
        let o = b.array_i32("o", 16, &[]);
        let zero = b.imm(0);
        let _ = b.for_range(0, 16, &[zero], |b, i, v| {
            let x = b.load(a, i);
            let y = b.mul(x, 3.into());
            b.store(o, i, y);
            vec![v[0]]
        });
        let g = b.finish();
        let p = profile(&g);
        assert!(!p.is_intensive());
        assert_eq!(p.branch_text(), "N/A");
        assert_eq!(p.ops_under_branch, 0.0);
    }

    #[test]
    fn nested_branches_detected() {
        let mut b = CdfgBuilder::new("t");
        let x = b.param("x", 5);
        let c1 = b.gt(x, 0.into());
        let r = b.if_else(
            c1,
            |b| {
                let c2 = b.gt(x, 10.into());
                let rr = b.if_else(c2, |b| vec![b.imm(2)], |b| vec![b.imm(1)]);
                vec![rr[0]]
            },
            |b| vec![b.imm(0)],
        );
        b.sink("r", r[0]);
        let g = b.finish();
        let p = profile(&g);
        assert!(p.branches.nested);
        assert!(p.branch_text().contains("Nested"));
    }

    #[test]
    fn ops_per_block_counts() {
        let g = branchy_imperfect();
        let counts = compute_ops_per_block(&g);
        assert_eq!(counts.iter().sum::<usize>(), g.compute_node_count());
    }
}
