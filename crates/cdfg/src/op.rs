//! Operator set of the Marionette CDFG.
//!
//! The CDFG is a *flat dynamic-dataflow* graph: structured control flow
//! (loops, branches) is lowered by the [builder](crate::builder) into
//! explicit control operators — [`Op::Steer`], [`Op::Carry`], [`Op::Inv`],
//! [`Op::Merge`] — in the style of WaveScalar/RipTide, while every node
//! stays tagged with the basic block it came from so the compiler and the
//! control flow plane can reason about CFG structure.
//!
//! Operator classification matters architecturally: *control operators* are
//! the ones Marionette hoists into its control flow plane (executed by the
//! PE's control flow part, traveling over the control network), while
//! baseline architectures must spend data-plane resources on them
//! (PE slots for von Neumann/dataflow/TIA, network slots for RipTide).

use crate::value::Value;
use std::fmt;

/// Two-operand arithmetic / logic / comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    // integer arithmetic (wrapping, like the RTL datapath)
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    AShr,
    Min,
    Max,
    // integer comparisons -> I32(0|1)
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    // float arithmetic
    FAdd,
    FSub,
    FMul,
    FDiv,
    FMin,
    FMax,
    // float comparisons -> I32(0|1)
    FLt,
    FLe,
    FGt,
    FGe,
}

impl BinOp {
    /// Evaluates the operator. Poison is absorbing.
    pub fn eval(self, a: Value, b: Value) -> Value {
        if a.is_poison() || b.is_poison() {
            return Value::Poison;
        }
        use BinOp::*;
        match self {
            Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | AShr | Min | Max | Lt
            | Le | Gt | Ge | Eq | Ne => {
                let x = a.to_i32_lossy();
                let y = b.to_i32_lossy();
                let r = match self {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    // Division by zero yields 0 in the datapath rather than
                    // trapping; kernels never rely on it.
                    Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    Rem => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    And => x & y,
                    Or => x | y,
                    Xor => x ^ y,
                    Shl => x.wrapping_shl(y as u32 & 31),
                    Shr => ((x as u32).wrapping_shr(y as u32 & 31)) as i32,
                    AShr => x.wrapping_shr(y as u32 & 31),
                    Min => x.min(y),
                    Max => x.max(y),
                    Lt => (x < y) as i32,
                    Le => (x <= y) as i32,
                    Gt => (x > y) as i32,
                    Ge => (x >= y) as i32,
                    Eq => (x == y) as i32,
                    Ne => (x != y) as i32,
                    _ => unreachable!(),
                };
                Value::I32(r)
            }
            FAdd | FSub | FMul | FDiv | FMin | FMax => {
                let x = f32_of(a);
                let y = f32_of(b);
                let r = match self {
                    FAdd => x + y,
                    FSub => x - y,
                    FMul => x * y,
                    FDiv => x / y,
                    FMin => x.min(y),
                    FMax => x.max(y),
                    _ => unreachable!(),
                };
                Value::F32(r)
            }
            FLt | FLe | FGt | FGe => {
                let x = f32_of(a);
                let y = f32_of(b);
                let r = match self {
                    FLt => x < y,
                    FLe => x <= y,
                    FGt => x > y,
                    FGe => x >= y,
                    _ => unreachable!(),
                };
                Value::from(r)
            }
        }
    }

    /// Functional-unit latency in cycles used by the timing model.
    ///
    /// The paper treats "executing an instruction takes two cycles" as a
    /// relative cost; we refine per operator class (single-cycle ALU,
    /// two-cycle multiplier, iterative divider).
    pub fn latency(self) -> u32 {
        use BinOp::*;
        match self {
            Mul | FMul => 2,
            Div | Rem | FDiv => 8,
            FAdd | FSub | FMin | FMax => 2,
            _ => 1,
        }
    }

    /// True for comparison operators (producing a 0/1 predicate).
    pub fn is_cmp(self) -> bool {
        use BinOp::*;
        matches!(self, Lt | Le | Gt | Ge | Eq | Ne | FLt | FLe | FGt | FGe)
    }
}

fn f32_of(v: Value) -> f32 {
    match v {
        Value::F32(f) => f,
        Value::I32(i) => i as f32,
        Value::Unit | Value::Poison => 0.0,
    }
}

/// One-operand operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
    Abs,
    FNeg,
    FAbs,
    /// i32 -> f32 conversion.
    I2F,
    /// f32 -> i32 conversion (truncating).
    F2I,
    /// Logical boolean negation: 0 -> 1, nonzero -> 0.
    LNot,
}

impl UnOp {
    /// Evaluates the operator. Poison is absorbing.
    pub fn eval(self, a: Value) -> Value {
        if a.is_poison() {
            return Value::Poison;
        }
        match self {
            UnOp::Not => Value::I32(!a.to_i32_lossy()),
            UnOp::Neg => Value::I32(a.to_i32_lossy().wrapping_neg()),
            UnOp::Abs => Value::I32(a.to_i32_lossy().wrapping_abs()),
            UnOp::FNeg => Value::F32(-f32_of(a)),
            UnOp::FAbs => Value::F32(f32_of(a).abs()),
            UnOp::I2F => Value::F32(a.to_i32_lossy() as f32),
            UnOp::F2I => Value::I32(f32_of(a) as i32),
            UnOp::LNot => Value::from(a.as_bool() == Some(false)),
        }
    }

    /// Functional-unit latency in cycles.
    pub fn latency(self) -> u32 {
        1
    }
}

/// Nonlinear operators, supported only by the 4 nonlinear-fitting PEs of the
/// 4×4 Marionette array (Table 4 distinguishes "ordinary" from "nonlinear
/// fitting" PEs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum NlOp {
    Sigmoid,
    Log,
    Exp,
    Sqrt,
    Recip,
    Tanh,
}

impl NlOp {
    /// Evaluates the operator.
    ///
    /// This function is the *single source of truth* for nonlinear math:
    /// golden kernel references call it too, so simulator output is
    /// bit-identical to the reference.
    pub fn eval(self, a: Value) -> Value {
        if a.is_poison() {
            return Value::Poison;
        }
        let x = f32_of(a);
        let r = match self {
            NlOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            NlOp::Log => x.ln(),
            NlOp::Exp => x.exp(),
            NlOp::Sqrt => x.sqrt(),
            NlOp::Recip => 1.0 / x,
            NlOp::Tanh => x.tanh(),
        };
        Value::F32(r)
    }

    /// Functional-unit latency in cycles (piecewise-fitting unit).
    pub fn latency(self) -> u32 {
        4
    }
}

/// Identifies a declared memory array (scratchpad region).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Distinguishes steers/merges that implement *branch divergence* from the
/// ones that implement *loop sequencing*.
///
/// Von Neumann-style architectures predicate branch steers (both sides
/// execute; see `Value::Poison`) but handle loop control with
/// counters/CCU — so only `Branch`-role steers participate in predicated
/// execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SteerRole {
    /// If/else divergence inside a loop-free hammock.
    Branch,
    /// Loop guard / exit / continuation control.
    LoopCtl,
}

/// A CDFG operator.
///
/// Every node has exactly one output port (possibly fanned out to many
/// consumers) and a small fixed number of input ports; see
/// [`Op::input_ports`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Two-operand compute. Ports: `[a, b]`.
    Bin(BinOp),
    /// One-operand compute. Ports: `[a]`.
    Un(UnOp),
    /// Nonlinear compute (only on nonlinear-capable PEs). Ports: `[a]`.
    Nl(NlOp),
    /// Three-input multiplexer; all inputs arrive. Ports: `[pred, t, f]`.
    Mux,
    /// Memory load. Ports: `[index]` or `[index, dep]`.
    Load(ArrayId),
    /// Memory store. Ports: `[index, value]` or `[index, value, dep]`.
    /// Output: unit dependence token.
    Store(ArrayId),
    /// Conditional pass: emits input when predicate matches `sense`, else
    /// drops it (or emits poison under predicated execution for
    /// [`SteerRole::Branch`]). Ports: `[pred, v]`.
    Steer {
        /// Predicate polarity that lets the value through.
        sense: bool,
        /// Branch-divergence or loop-control steer.
        role: SteerRole,
    },
    /// Loop-carried variable. Ports: `[last, init, next]`.
    ///
    /// Fresh state: pops `init`, emits it, enters looping state (does not
    /// consume `last`). Looping state: pops one `last` token; on `false`
    /// pops `next` and emits it; on `true` (or poison) pops-and-drops
    /// `next` and resets to fresh.
    Carry,
    /// Loop-invariant replay. Ports: `[v, last]`.
    ///
    /// Empty: pops `v`, holds and emits. Held: pops `last`; on `false`
    /// emits the held value again; on `true` (or poison) releases without
    /// emitting.
    Inv,
    /// Control-flow join. Ports: `[pred, t, f]`.
    ///
    /// Dropping mode: pops `pred`, then pops only the selected side.
    /// Predicated mode (`Branch` role): pops all three, selects by `pred`.
    Merge {
        /// Same classification as for steers.
        role: SteerRole,
    },
    /// Emits its (usually immediate) value once per trigger token.
    /// Ports: `[trigger, v]`.
    Gate,
    /// Emits a single `Unit` token when the program starts. No inputs.
    Start,
    /// Named result collector. Ports: `[v]`. No output.
    Sink,
}

impl Op {
    /// Number of input ports this operator exposes.
    ///
    /// `Load`/`Store` report their maximum arity; the optional trailing
    /// dependence port may be left unconnected.
    pub fn input_ports(self) -> usize {
        match self {
            Op::Bin(_) => 2,
            Op::Un(_) | Op::Nl(_) | Op::Sink => 1,
            Op::Mux | Op::Merge { .. } => 3,
            Op::Load(_) => 2,
            Op::Store(_) => 3,
            Op::Steer { .. } | Op::Inv | Op::Gate => 2,
            Op::Carry => 3,
            Op::Start => 0,
        }
    }

    /// Number of *required* input ports (optional dependence ports and the
    /// like excluded).
    pub fn required_ports(self) -> usize {
        match self {
            Op::Load(_) => 1,
            Op::Store(_) => 2,
            other => other.input_ports(),
        }
    }

    /// Whether the node produces an output token when it fires.
    pub fn has_output(self) -> bool {
        !matches!(self, Op::Sink)
    }

    /// True for the operators Marionette hoists into the control flow
    /// plane: steering, loop carries, invariant replay, merges and gates.
    ///
    /// Compute, memory and mux operators stay on the data flow plane.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Op::Steer { .. } | Op::Carry | Op::Inv | Op::Merge { .. } | Op::Gate | Op::Start
        )
    }

    /// True for memory operators.
    pub fn is_memory(self) -> bool {
        matches!(self, Op::Load(_) | Op::Store(_))
    }

    /// True if this operator requires a nonlinear-capable PE.
    pub fn needs_nonlinear(self) -> bool {
        matches!(self, Op::Nl(_))
    }

    /// Functional-unit latency of the operator in cycles.
    pub fn latency(self) -> u32 {
        match self {
            Op::Bin(b) => b.latency(),
            Op::Un(u) => u.latency(),
            Op::Nl(n) => n.latency(),
            Op::Mux => 1,
            Op::Load(_) => 2,
            Op::Store(_) => 1,
            // Control operators resolve in a single cycle in the control
            // flow plane.
            Op::Steer { .. } | Op::Carry | Op::Inv | Op::Merge { .. } | Op::Gate | Op::Start => 1,
            Op::Sink => 0,
        }
    }

    /// Short mnemonic used by the disassembler and Debug dumps.
    pub fn mnemonic(self) -> String {
        match self {
            Op::Bin(b) => format!("{b:?}").to_lowercase(),
            Op::Un(u) => format!("{u:?}").to_lowercase(),
            Op::Nl(n) => format!("{n:?}").to_lowercase(),
            Op::Mux => "mux".into(),
            Op::Load(a) => format!("ld{a}"),
            Op::Store(a) => format!("st{a}"),
            Op::Steer { sense, role } => {
                let r = if role == SteerRole::Branch { "b" } else { "l" };
                format!("steer.{}{}", if sense { "t" } else { "f" }, r)
            }
            Op::Carry => "carry".into(),
            Op::Inv => "inv".into(),
            Op::Merge { role } => {
                if role == SteerRole::Branch {
                    "merge.b".into()
                } else {
                    "merge.l".into()
                }
            }
            Op::Gate => "gate".into(),
            Op::Start => "start".into(),
            Op::Sink => "sink".into(),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith() {
        assert_eq!(BinOp::Add.eval(Value::I32(2), Value::I32(3)), Value::I32(5));
        assert_eq!(
            BinOp::Sub.eval(Value::I32(2), Value::I32(3)),
            Value::I32(-1)
        );
        assert_eq!(
            BinOp::Mul.eval(Value::I32(i32::MAX), Value::I32(2)),
            Value::I32(i32::MAX.wrapping_mul(2))
        );
        assert_eq!(BinOp::Div.eval(Value::I32(7), Value::I32(2)), Value::I32(3));
        assert_eq!(BinOp::Div.eval(Value::I32(7), Value::I32(0)), Value::I32(0));
        assert_eq!(BinOp::Rem.eval(Value::I32(7), Value::I32(0)), Value::I32(0));
        assert_eq!(
            BinOp::Shr.eval(Value::I32(-1), Value::I32(28)),
            Value::I32(0xF)
        );
        assert_eq!(
            BinOp::AShr.eval(Value::I32(-16), Value::I32(2)),
            Value::I32(-4)
        );
        assert_eq!(
            BinOp::Min.eval(Value::I32(3), Value::I32(-2)),
            Value::I32(-2)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(BinOp::Lt.eval(Value::I32(1), Value::I32(2)), Value::TRUE);
        assert_eq!(BinOp::Ge.eval(Value::I32(1), Value::I32(2)), Value::FALSE);
        assert_eq!(
            BinOp::FLt.eval(Value::F32(1.0), Value::F32(2.0)),
            Value::TRUE
        );
        assert!(BinOp::Lt.is_cmp());
        assert!(!BinOp::Add.is_cmp());
    }

    #[test]
    fn float_arith() {
        assert_eq!(
            BinOp::FAdd.eval(Value::F32(1.5), Value::F32(2.5)),
            Value::F32(4.0)
        );
        assert_eq!(
            BinOp::FDiv.eval(Value::F32(1.0), Value::F32(4.0)),
            Value::F32(0.25)
        );
    }

    #[test]
    fn poison_absorbs() {
        assert_eq!(BinOp::Add.eval(Value::Poison, Value::I32(1)), Value::Poison);
        assert_eq!(UnOp::Neg.eval(Value::Poison), Value::Poison);
        assert_eq!(NlOp::Sqrt.eval(Value::Poison), Value::Poison);
    }

    #[test]
    fn unops() {
        assert_eq!(UnOp::Not.eval(Value::I32(0)), Value::I32(-1));
        assert_eq!(UnOp::LNot.eval(Value::I32(0)), Value::TRUE);
        assert_eq!(UnOp::LNot.eval(Value::I32(7)), Value::FALSE);
        assert_eq!(UnOp::I2F.eval(Value::I32(3)), Value::F32(3.0));
        assert_eq!(UnOp::F2I.eval(Value::F32(3.9)), Value::I32(3));
        assert_eq!(UnOp::Abs.eval(Value::I32(-5)), Value::I32(5));
    }

    #[test]
    fn nl_matches_reference_formulas() {
        let x = 0.7f32;
        assert_eq!(
            NlOp::Sigmoid.eval(Value::F32(x)),
            Value::F32(1.0 / (1.0 + (-x).exp()))
        );
        assert_eq!(NlOp::Log.eval(Value::F32(x)), Value::F32(x.ln()));
    }

    #[test]
    fn port_counts() {
        assert_eq!(Op::Bin(BinOp::Add).input_ports(), 2);
        assert_eq!(Op::Carry.input_ports(), 3);
        assert_eq!(Op::Start.input_ports(), 0);
        assert_eq!(Op::Load(ArrayId(0)).required_ports(), 1);
        assert_eq!(Op::Store(ArrayId(0)).required_ports(), 2);
        assert!(!Op::Sink.has_output());
        assert!(Op::Carry.is_control());
        assert!(!Op::Mux.is_control());
        assert!(Op::Load(ArrayId(1)).is_memory());
        assert!(Op::Nl(NlOp::Exp).needs_nonlinear());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Op::Bin(BinOp::Add).mnemonic(), "add");
        assert_eq!(
            Op::Steer {
                sense: true,
                role: SteerRole::Branch
            }
            .mnemonic(),
            "steer.tb"
        );
        assert_eq!(Op::Load(ArrayId(2)).mnemonic(), "ld@2");
    }
}
