//! The control-data flow graph: flat dataflow nodes tagged with CFG
//! structure (basic blocks and the loop tree).

use crate::op::{ArrayId, Op};
use crate::value::{ElemTy, Value};
use std::fmt;

/// Index of a node in [`Cdfg::nodes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Index of a basic block in [`Cdfg::blocks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of a loop in [`Cdfg::loops`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// Index of a runtime scalar parameter in [`Cdfg::params`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// Source feeding one input port of a node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PortSrc {
    /// Token stream produced by another node.
    Node(NodeId),
    /// Compile-time immediate: always available, never consumed.
    Imm(Value),
    /// Runtime scalar parameter, resolved to an immediate at load time.
    Param(ParamId),
    /// Unconnected optional port (dependence ports only).
    None,
}

impl PortSrc {
    /// Returns the producing node, if this port is node-sourced.
    pub fn node(self) -> Option<NodeId> {
        match self {
            PortSrc::Node(n) => Some(n),
            _ => None,
        }
    }

    /// True if the port is wired to anything at all.
    pub fn is_connected(self) -> bool {
        !matches!(self, PortSrc::None)
    }
}

/// A dataflow node.
#[derive(Clone, Debug)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Input port sources; length == `op.input_ports()`.
    pub inputs: Vec<PortSrc>,
    /// Basic block this node belongs to.
    pub bb: BlockId,
    /// Sink label (result name) for `Op::Sink` nodes.
    pub label: Option<String>,
}

/// A declared scratchpad array.
#[derive(Clone, Debug)]
pub struct ArrayDecl {
    /// Array name (unique within the program).
    pub name: String,
    /// Number of 32-bit elements.
    pub len: usize,
    /// Element type.
    pub elem: ElemTy,
    /// Initial contents supplied by the workload; zero-filled if shorter.
    pub init: Vec<Value>,
    /// Whether this array is an output to check against the golden model.
    pub is_output: bool,
}

/// A declared runtime scalar parameter.
#[derive(Clone, Debug)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Default value (workloads override at run time).
    pub default: Value,
}

/// Classification of a basic block, mirroring the paper's CFG vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// Function entry (straight-line prologue).
    Entry,
    /// Loop control cluster: guard, carries, continuation test.
    LoopHeader,
    /// Loop body straight-line region.
    LoopBody,
    /// Taken side of a branch.
    BranchThen,
    /// Untaken side of a branch.
    BranchElse,
}

/// Basic block metadata.
#[derive(Clone, Debug)]
pub struct BlockInfo {
    /// Human-readable name (`"entry"`, `"loop0.body"`, ...).
    pub name: String,
    /// Structural classification.
    pub kind: BlockKind,
    /// Innermost loop containing this block, if any.
    pub loop_id: Option<LoopId>,
    /// Enclosing block in the region tree (`None` for the entry block).
    pub parent: Option<BlockId>,
    /// Nesting depth of *branch* regions containing this block.
    pub branch_depth: u32,
}

/// Loop metadata node in the loop tree.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// Header block holding the loop-control operator cluster.
    pub header: BlockId,
    /// Body block.
    pub body: BlockId,
    /// Parent loop, if nested.
    pub parent: Option<LoopId>,
    /// Nesting depth; outermost loops have depth 1.
    pub depth: u32,
    /// True when the loop's trip count depends on runtime data (for
    /// example SPMV row extents) rather than immediates/parameters, which
    /// forces CCU round-trips on von Neumann machines.
    pub dynamic_bounds: bool,
    /// True when this loop directly contains non-control compute besides
    /// its subloops (makes the enclosing nest an *imperfect loop*).
    pub has_own_compute: bool,
}

/// Edge kinds of the control flow graph over basic blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CfgEdgeKind {
    /// Sequential fallthrough.
    Seq,
    /// Loop entry edge.
    LoopEnter,
    /// Loop back edge.
    LoopBack,
    /// Loop exit edge.
    LoopExit,
    /// Branch taken edge.
    BranchTaken,
    /// Branch untaken edge.
    BranchUntaken,
    /// Join after a branch.
    Join,
}

/// An edge of the CFG (between basic blocks).
#[derive(Clone, Copy, Debug)]
pub struct CfgEdge {
    /// Source block.
    pub from: BlockId,
    /// Destination block.
    pub to: BlockId,
    /// Edge kind.
    pub kind: CfgEdgeKind,
}

/// A complete control-data flow graph program.
///
/// Produced by [`crate::builder::CdfgBuilder`]; consumed by the reference
/// interpreter, the compiler and the simulator.
#[derive(Clone, Debug, Default)]
pub struct Cdfg {
    /// Program name.
    pub name: String,
    /// Flat dataflow nodes.
    pub nodes: Vec<Node>,
    /// Scratchpad arrays.
    pub arrays: Vec<ArrayDecl>,
    /// Runtime scalar parameters.
    pub params: Vec<ParamDecl>,
    /// Basic blocks.
    pub blocks: Vec<BlockInfo>,
    /// Loop tree.
    pub loops: Vec<LoopInfo>,
    /// CFG edges.
    pub cfg_edges: Vec<CfgEdge>,
}

impl Cdfg {
    /// Creates an empty program with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Cdfg {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Node accessor.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Block accessor.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BlockInfo {
        &self.blocks[id.0 as usize]
    }

    /// Loop accessor.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.0 as usize]
    }

    /// Array accessor.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// Iterates over `(NodeId, &Node)` pairs.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Looks up an array by name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|i| ArrayId(i as u32))
    }

    /// Looks up a parameter by name.
    pub fn param_by_name(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| ParamId(i as u32))
    }

    /// All sink nodes with their labels, in declaration order.
    pub fn sinks(&self) -> Vec<(NodeId, &str)> {
        self.iter_nodes()
            .filter(|(_, n)| matches!(n.op, Op::Sink))
            .map(|(id, n)| (id, n.label.as_deref().unwrap_or("")))
            .collect()
    }

    /// Builds the consumer adjacency: for every node, the list of
    /// `(consumer, port)` pairs reading its output.
    pub fn consumers(&self) -> Vec<Vec<(NodeId, usize)>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (id, n) in self.iter_nodes() {
            for (port, src) in n.inputs.iter().enumerate() {
                if let PortSrc::Node(p) = src {
                    out[p.0 as usize].push((id, port));
                }
            }
        }
        out
    }

    /// Number of nodes whose operator is a control operator.
    pub fn control_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.op.is_control()).count()
    }

    /// Number of nodes carrying data-plane work (compute + memory + mux).
    pub fn compute_node_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.op.is_control() && !matches!(n.op, Op::Sink))
            .count()
    }

    /// Maximum loop nesting depth of the program.
    pub fn max_loop_depth(&self) -> u32 {
        self.loops.iter().map(|l| l.depth).max().unwrap_or(0)
    }

    /// Structural validation; returns a list of human-readable problems
    /// (empty when the graph is well-formed).
    ///
    /// Checked invariants:
    /// - every node has exactly `op.input_ports()` port sources;
    /// - required ports are connected;
    /// - port sources reference existing nodes/params;
    /// - source nodes have an output (`Sink` feeds nothing);
    /// - array references are in range;
    /// - block/loop references are in range and the loop tree is
    ///   consistent (parents shallower than children);
    /// - exactly one `Start` node exists.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let mut starts = 0usize;
        for (id, n) in self.iter_nodes() {
            if n.inputs.len() != n.op.input_ports() {
                errs.push(format!(
                    "{id}: {} expects {} ports, has {}",
                    n.op,
                    n.op.input_ports(),
                    n.inputs.len()
                ));
            }
            for (port, src) in n.inputs.iter().enumerate() {
                match src {
                    PortSrc::Node(p) => {
                        if p.0 as usize >= self.nodes.len() {
                            errs.push(format!("{id}: port {port} references missing node {p}"));
                        } else if !self.node(*p).op.has_output() {
                            errs.push(format!("{id}: port {port} reads from output-less node {p}"));
                        }
                    }
                    PortSrc::Param(p) => {
                        if p.0 as usize >= self.params.len() {
                            errs.push(format!("{id}: port {port} references missing param"));
                        }
                    }
                    PortSrc::None => {
                        if port < n.op.required_ports() {
                            errs.push(format!(
                                "{id}: required port {port} of {} unconnected",
                                n.op
                            ));
                        }
                    }
                    PortSrc::Imm(_) => {}
                }
            }
            match n.op {
                Op::Load(a) | Op::Store(a) if a.0 as usize >= self.arrays.len() => {
                    errs.push(format!("{id}: references missing array {a}"));
                }
                Op::Start => starts += 1,
                _ => {}
            }
            if n.bb.0 as usize >= self.blocks.len() {
                errs.push(format!("{id}: references missing block {}", n.bb));
            }
        }
        if starts != 1 {
            errs.push(format!(
                "program must have exactly 1 start node, has {starts}"
            ));
        }
        for (i, l) in self.loops.iter().enumerate() {
            if l.header.0 as usize >= self.blocks.len() || l.body.0 as usize >= self.blocks.len() {
                errs.push(format!("loop{i}: header/body out of range"));
            }
            if let Some(p) = l.parent {
                match self.loops.get(p.0 as usize) {
                    Some(par) if par.depth + 1 == l.depth => {}
                    Some(_) => errs.push(format!("loop{i}: depth inconsistent with parent")),
                    None => errs.push(format!("loop{i}: missing parent")),
                }
            } else if l.depth != 1 {
                errs.push(format!("loop{i}: top-level loop must have depth 1"));
            }
        }
        for e in &self.cfg_edges {
            if e.from.0 as usize >= self.blocks.len() || e.to.0 as usize >= self.blocks.len() {
                errs.push("cfg edge endpoint out of range".into());
            }
        }
        errs
    }

    /// Panicking variant of [`Cdfg::validate`] for tests and builders.
    ///
    /// # Panics
    /// Panics with the list of problems if the graph is malformed.
    pub fn assert_valid(&self) {
        let errs = self.validate();
        assert!(
            errs.is_empty(),
            "invalid CDFG {}:\n  {}",
            self.name,
            errs.join("\n  ")
        );
    }
}

impl fmt::Display for Cdfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cdfg {} ({} nodes, {} blocks, {} loops, {} arrays)",
            self.name,
            self.nodes.len(),
            self.blocks.len(),
            self.loops.len(),
            self.arrays.len()
        )?;
        for (id, n) in self.iter_nodes() {
            let ins: Vec<String> = n
                .inputs
                .iter()
                .map(|s| match s {
                    PortSrc::Node(p) => p.to_string(),
                    PortSrc::Imm(v) => format!("#{v}"),
                    PortSrc::Param(p) => format!("${}", self.params[p.0 as usize].name),
                    PortSrc::None => "_".into(),
                })
                .collect();
            writeln!(f, "  {id} [{}] = {} ({})", n.bb, n.op, ins.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinOp;

    fn tiny() -> Cdfg {
        let mut g = Cdfg::new("tiny");
        g.blocks.push(BlockInfo {
            name: "entry".into(),
            kind: BlockKind::Entry,
            loop_id: None,
            parent: None,
            branch_depth: 0,
        });
        g.nodes.push(Node {
            op: Op::Start,
            inputs: vec![],
            bb: BlockId(0),
            label: None,
        });
        g.nodes.push(Node {
            op: Op::Gate,
            inputs: vec![PortSrc::Node(NodeId(0)), PortSrc::Imm(Value::I32(21))],
            bb: BlockId(0),
            label: None,
        });
        g.nodes.push(Node {
            op: Op::Bin(BinOp::Add),
            inputs: vec![PortSrc::Node(NodeId(1)), PortSrc::Node(NodeId(1))],
            bb: BlockId(0),
            label: None,
        });
        g.nodes.push(Node {
            op: Op::Sink,
            inputs: vec![PortSrc::Node(NodeId(2))],
            bb: BlockId(0),
            label: Some("out".into()),
        });
        g
    }

    #[test]
    fn valid_graph_passes() {
        let g = tiny();
        assert!(g.validate().is_empty(), "{:?}", g.validate());
        g.assert_valid();
    }

    #[test]
    fn consumers_adjacency() {
        let g = tiny();
        let cons = g.consumers();
        assert_eq!(cons[1], vec![(NodeId(2), 0), (NodeId(2), 1)]);
        assert_eq!(cons[2], vec![(NodeId(3), 0)]);
        assert!(cons[3].is_empty());
    }

    #[test]
    fn detects_bad_port_count() {
        let mut g = tiny();
        g.nodes[2].inputs.pop();
        assert!(g.validate().iter().any(|e| e.contains("expects 2 ports")));
    }

    #[test]
    fn detects_missing_node_ref() {
        let mut g = tiny();
        g.nodes[2].inputs[0] = PortSrc::Node(NodeId(99));
        assert!(!g.validate().is_empty());
    }

    #[test]
    fn detects_read_from_sink() {
        let mut g = tiny();
        g.nodes[2].inputs[0] = PortSrc::Node(NodeId(3));
        assert!(g.validate().iter().any(|e| e.contains("output-less")));
    }

    #[test]
    fn detects_multiple_starts() {
        let mut g = tiny();
        g.nodes.push(Node {
            op: Op::Start,
            inputs: vec![],
            bb: BlockId(0),
            label: None,
        });
        assert!(g.validate().iter().any(|e| e.contains("start")));
    }

    #[test]
    fn counts() {
        let g = tiny();
        assert_eq!(g.compute_node_count(), 1); // the add
        assert_eq!(g.control_node_count(), 2); // start + gate
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.max_loop_depth(), 0);
    }
}
