//! Scratchpad memory state shared by the interpreter and the simulator.

use crate::graph::Cdfg;
use crate::op::ArrayId;
use crate::value::Value;

/// The data scratchpad: one dense region per declared array.
///
/// Out-of-bounds accesses do not abort execution (hardware would silently
/// wrap); they are counted in [`Memory::oob_events`] and tests assert the
/// count stays zero.
#[derive(Clone, Debug)]
pub struct Memory {
    arrays: Vec<Vec<Value>>,
    oob: u64,
    loads: u64,
    stores: u64,
}

impl Memory {
    /// Allocates and initializes memory from a program's declarations.
    pub fn from_cdfg(g: &Cdfg) -> Self {
        let arrays = g
            .arrays
            .iter()
            .map(|a| {
                let mut v = vec![a.elem.zero(); a.len];
                for (i, x) in a.init.iter().enumerate() {
                    v[i] = *x;
                }
                v
            })
            .collect();
        Memory {
            arrays,
            oob: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// Reads `arr[idx]`; out of bounds yields zero and bumps the OOB count.
    pub fn load(&mut self, arr: ArrayId, idx: i32) -> Value {
        self.loads += 1;
        let a = &self.arrays[arr.0 as usize];
        if idx < 0 || idx as usize >= a.len() {
            self.oob += 1;
            return Value::I32(0);
        }
        a[idx as usize]
    }

    /// Writes `arr[idx]`; out of bounds is dropped and counted.
    pub fn store(&mut self, arr: ArrayId, idx: i32, v: Value) {
        self.stores += 1;
        let a = &mut self.arrays[arr.0 as usize];
        if idx < 0 || idx as usize >= a.len() {
            self.oob += 1;
            return;
        }
        a[idx as usize] = v;
    }

    /// Borrow an array's contents.
    pub fn array(&self, arr: ArrayId) -> &[Value] {
        &self.arrays[arr.0 as usize]
    }

    /// Overwrite an array's contents (workload injection).
    ///
    /// # Panics
    /// Panics if `data` is longer than the declared array.
    pub fn write_array(&mut self, arr: ArrayId, data: &[Value]) {
        let a = &mut self.arrays[arr.0 as usize];
        assert!(data.len() <= a.len(), "workload larger than array");
        a[..data.len()].copy_from_slice(data);
    }

    /// Number of out-of-bounds accesses observed.
    pub fn oob_events(&self) -> u64 {
        self.oob
    }

    /// Total loads performed.
    pub fn load_count(&self) -> u64 {
        self.loads
    }

    /// Total stores performed.
    pub fn store_count(&self) -> u64 {
        self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;

    #[test]
    fn init_load_store_oob() {
        let mut b = CdfgBuilder::new("m");
        let a = b.array_i32("a", 4, &[7, 8]);
        let x = b.imm(0);
        b.sink("unused", x);
        let g = b.finish();
        let mut m = Memory::from_cdfg(&g);
        assert_eq!(m.load(a, 0), Value::I32(7));
        assert_eq!(m.load(a, 1), Value::I32(8));
        assert_eq!(m.load(a, 2), Value::I32(0)); // zero-filled
        m.store(a, 3, Value::I32(5));
        assert_eq!(m.load(a, 3), Value::I32(5));
        assert_eq!(m.oob_events(), 0);
        assert_eq!(m.load(a, 4), Value::I32(0));
        m.store(a, -1, Value::I32(1));
        assert_eq!(m.oob_events(), 2);
        assert_eq!(m.load_count(), 5);
        assert_eq!(m.store_count(), 2);
    }
}
