//! # marionette-cdfg
//!
//! The computational model of the Marionette spatial architecture
//! (MICRO 2023): programs are **control-data flow graphs** — a control flow
//! graph (CFG) of basic blocks, each holding data flow graph (DFG)
//! operators — lowered into a flat *dynamic dataflow* representation whose
//! control operators (steer / carry / invariant / merge) are exactly the
//! operators Marionette's control flow plane executes.
//!
//! The crate provides:
//!
//! - [`builder::CdfgBuilder`] — a structured front end (loops, branches,
//!   arrays) standing in for the paper's annotated-C/LLVM flow;
//! - [`interp`] — a sequential reference interpreter (Kahn network
//!   semantics) used as the specification for the cycle-level simulator,
//!   in both dropping (dataflow) and predicated (von Neumann) modes;
//! - [`analysis`] — control-flow characterization reproducing Table 1 and
//!   the operators-under-branch ratio of Fig 11;
//! - [`memory::Memory`] — the scratchpad model shared with the simulator.
//!
//! ## Example
//!
//! ```
//! use marionette_cdfg::builder::CdfgBuilder;
//! use marionette_cdfg::interp::{interpret, ExecMode};
//! use marionette_cdfg::value::Value;
//!
//! // sum of squares 0..10
//! let mut b = CdfgBuilder::new("sumsq");
//! let zero = b.imm(0);
//! let out = b.for_range(0, 10, &[zero], |b, i, vars| {
//!     let sq = b.mul(i, i);
//!     vec![b.add(vars[0], sq)]
//! });
//! b.sink("sum", out[0]);
//! let g = b.finish();
//!
//! let r = interpret(&g, ExecMode::Dropping, &[])?;
//! assert_eq!(r.scalar("sum")?, Value::I32(285));
//! # Ok::<(), marionette_cdfg::interp::InterpError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod graph;
pub mod interp;
pub mod memory;
pub mod op;
pub mod value;

pub use builder::{CdfgBuilder, V};
pub use graph::{BlockId, Cdfg, LoopId, Node, NodeId, PortSrc};
pub use interp::{interpret, ExecMode, InterpResult};
pub use memory::Memory;
pub use op::{ArrayId, BinOp, NlOp, Op, SteerRole, UnOp};
pub use value::{ElemTy, Value};
