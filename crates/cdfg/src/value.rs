//! Runtime values carried by dataflow tokens.
//!
//! Marionette is a 32-bit architecture (the paper evaluates with "all data
//! types ... 32-bit", Table 5). Tokens therefore carry either a 32-bit
//! integer, a 32-bit float, a unit value (pure control/ordering tokens), or
//! [`Value::Poison`].
//!
//! `Poison` exists for the *predicated* execution mode used by von
//! Neumann-style PEs: under predication both sides of a branch fire every
//! iteration and the untaken side produces poison, which is discarded at the
//! merge point (see `marionette-sim`). Poison is absorbing for arithmetic.

use std::fmt;

/// A 32-bit machine value flowing through the data flow plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// 32-bit signed integer.
    I32(i32),
    /// 32-bit IEEE-754 float.
    F32(f32),
    /// Unit token: carries no payload, only ordering/control information
    /// (memory dependence tokens, activation ticks).
    Unit,
    /// Result of an operation on the untaken side of a predicated branch.
    Poison,
}

impl Value {
    /// Canonical `true` as produced by comparison operators.
    pub const TRUE: Value = Value::I32(1);
    /// Canonical `false` as produced by comparison operators.
    pub const FALSE: Value = Value::I32(0);

    /// Returns `true` if this value is [`Value::Poison`].
    #[inline]
    pub fn is_poison(self) -> bool {
        matches!(self, Value::Poison)
    }

    /// Interprets the value as a boolean predicate.
    ///
    /// Integer zero and float zero are false; everything else (except
    /// poison) is true. Poison yields `None`.
    #[inline]
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::I32(v) => Some(v != 0),
            Value::F32(v) => Some(v != 0.0),
            Value::Unit => Some(true),
            Value::Poison => None,
        }
    }

    /// Returns the integer payload, if this is an [`Value::I32`].
    #[inline]
    pub fn as_i32(self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the float payload, if this is an [`Value::F32`].
    #[inline]
    pub fn as_f32(self) -> Option<f32> {
        match self {
            Value::F32(v) => Some(v),
            _ => None,
        }
    }

    /// Integer payload with a lossy cast from floats; poison/unit become 0.
    ///
    /// Used by address computations, which are always integer in the ISA.
    #[inline]
    pub fn to_i32_lossy(self) -> i32 {
        match self {
            Value::I32(v) => v,
            Value::F32(v) => v as i32,
            Value::Unit | Value::Poison => 0,
        }
    }

    /// Reinterprets the value as its 32-bit raw encoding (ISA word payload).
    ///
    /// `Unit` encodes as 0; `Poison` has no encoding and returns `None`
    /// because poison never crosses the ISA boundary (it is a simulator
    /// artifact, not an architectural value).
    #[inline]
    pub fn to_bits(self) -> Option<u32> {
        match self {
            Value::I32(v) => Some(v as u32),
            Value::F32(v) => Some(v.to_bits()),
            Value::Unit => Some(0),
            Value::Poison => None,
        }
    }

    /// Bit-exact equality (floats compared by bit pattern, so `NaN == NaN`).
    #[inline]
    pub fn bit_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::I32(a), Value::I32(b)) => a == b,
            (Value::F32(a), Value::F32(b)) => a.to_bits() == b.to_bits(),
            (Value::Unit, Value::Unit) => true,
            (Value::Poison, Value::Poison) => true,
            _ => false,
        }
    }

    /// Approximate equality: exact for integers, relative tolerance for
    /// floats. Used by kernel correctness tests on float workloads.
    pub fn approx_eq(self, other: Value, rel_tol: f32) -> bool {
        match (self, other) {
            (Value::F32(a), Value::F32(b)) => {
                if a == b {
                    return true;
                }
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= rel_tol * scale
            }
            _ => self.bit_eq(other),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::I32(0)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        if v {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::I32(v as i32)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}f"),
            Value::Unit => write!(f, "()"),
            Value::Poison => write!(f, "poison"),
        }
    }
}

/// Describes the first bit-level disagreement between two value streams
/// (`None` when identical). Length mismatches are reported as such, so a
/// truncated stream becomes a comparison detail, never a panic. This is
/// the shared divergence-detection primitive of every differential check
/// (fuzz differentials, the `marc` driver, equivalence tests).
pub fn stream_mismatch(a: &[Value], b: &[Value]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!(": interp has {} values, sim {}", a.len(), b.len()));
    }
    (0..a.len())
        .find(|&i| !a[i].bit_eq(b[i]))
        .map(|i| format!("[{i}]: interp {}, sim {}", a[i], b[i]))
}

/// Bit-compares two labeled sink-stream maps: the label sets must match
/// and every stream must be bit-identical in arrival order.
///
/// # Errors
/// Returns a description of the first disagreement.
pub fn compare_sink_maps(
    expect: &std::collections::HashMap<String, Vec<Value>>,
    got: &std::collections::HashMap<String, Vec<Value>>,
) -> Result<(), String> {
    let mut labels: Vec<&String> = expect.keys().collect();
    labels.sort();
    let mut got_labels: Vec<&String> = got.keys().collect();
    got_labels.sort();
    if labels != got_labels {
        return Err(format!("sink sets differ: {labels:?} vs {got_labels:?}"));
    }
    for l in labels {
        if let Some(m) = stream_mismatch(&expect[l], &got[l]) {
            return Err(format!("sink {l}{m}"));
        }
    }
    Ok(())
}

/// Element type of a memory array declaration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElemTy {
    /// 32-bit signed integers.
    I32,
    /// 32-bit floats.
    F32,
}

impl ElemTy {
    /// The zero value of this element type.
    pub fn zero(self) -> Value {
        match self {
            ElemTy::I32 => Value::I32(0),
            ElemTy::F32 => Value::F32(0.0),
        }
    }
}

impl fmt::Display for ElemTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemTy::I32 => write!(f, "i32"),
            ElemTy::F32 => write!(f, "f32"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_coercion() {
        assert_eq!(Value::I32(0).as_bool(), Some(false));
        assert_eq!(Value::I32(-3).as_bool(), Some(true));
        assert_eq!(Value::F32(0.0).as_bool(), Some(false));
        assert_eq!(Value::F32(2.5).as_bool(), Some(true));
        assert_eq!(Value::Poison.as_bool(), None);
        assert_eq!(Value::Unit.as_bool(), Some(true));
    }

    #[test]
    fn bit_eq_nan() {
        let nan = Value::F32(f32::NAN);
        assert!(nan.bit_eq(nan));
        assert!(!Value::F32(0.0).bit_eq(Value::F32(-0.0)));
        assert_eq!(Value::F32(0.0), Value::F32(-0.0)); // PartialEq is numeric
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(Value::F32(100.0).approx_eq(Value::F32(100.0001), 1e-4));
        assert!(!Value::F32(100.0).approx_eq(Value::F32(101.0), 1e-4));
        assert!(Value::I32(5).approx_eq(Value::I32(5), 0.0));
        assert!(!Value::I32(5).approx_eq(Value::I32(6), 0.5));
    }

    #[test]
    fn bits_roundtrip() {
        assert_eq!(Value::I32(-1).to_bits(), Some(u32::MAX));
        assert_eq!(Value::F32(1.0).to_bits(), Some(1.0f32.to_bits()));
        assert_eq!(Value::Poison.to_bits(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7), Value::I32(7));
        assert_eq!(Value::from(true), Value::TRUE);
        assert_eq!(Value::from(1.5f32), Value::F32(1.5));
        assert_eq!(Value::from(0xFFFF_FFFFu32), Value::I32(-1));
    }

    #[test]
    fn display() {
        assert_eq!(Value::I32(3).to_string(), "3");
        assert_eq!(Value::F32(1.5).to_string(), "1.5f");
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Poison.to_string(), "poison");
        assert_eq!(ElemTy::I32.to_string(), "i32");
    }
}
