//! Sequential reference interpreter for CDFG programs.
//!
//! Executes the flat dataflow graph with unbounded FIFO channels until
//! quiescence. Because every operator is a deterministic FIFO consumer the
//! network is a Kahn process network: results are independent of firing
//! order, so this interpreter is the *semantic specification* that the
//! cycle-level simulator (and the golden kernel references) are tested
//! against.
//!
//! Two execution modes exist, mirroring the architectural split the paper
//! draws between dataflow-style and von Neumann-style control handling:
//!
//! - [`ExecMode::Dropping`]: branch steers drop untaken tokens (tagged
//!   dataflow semantics);
//! - [`ExecMode::Predicated`]: branch steers always emit (poison when
//!   untaken) and branch merges pop both sides — predicated execution as
//!   performed by von Neumann PE arrays.
//!
//! Both modes must produce identical results; tests verify this on every
//! kernel and on random programs.

use crate::graph::{Cdfg, NodeId, PortSrc};
use crate::memory::Memory;
use crate::op::{Op, SteerRole};
use crate::value::Value;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Steering semantics for branch-divergence control operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Untaken branch tokens are dropped (dataflow/Marionette execution).
    Dropping,
    /// Untaken branch tokens become poison and both sides fire
    /// (von Neumann predication).
    Predicated,
}

/// Interpreter failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The program exceeded the firing budget (livelock or unbounded loop).
    FiringBudgetExceeded {
        /// Budget that was exceeded.
        budget: u64,
    },
    /// Tokens were left in channels at quiescence: the graph has a token
    /// rate mismatch (builder bug or hand-constructed graph error).
    ResidualTokens {
        /// Offending `(node, port, count)` triples (truncated to 8).
        leftovers: Vec<(NodeId, usize, usize)>,
    },
    /// A parameter override named no declared parameter.
    UnknownParam {
        /// The unresolved parameter name.
        name: String,
    },
    /// A sink lookup named no sink label.
    UnknownSink {
        /// The unresolved sink label.
        name: String,
    },
    /// A scalar sink lookup found a stream of more or fewer than one value.
    SinkArity {
        /// The sink label.
        name: String,
        /// How many values the sink collected.
        count: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::FiringBudgetExceeded { budget } => {
                write!(f, "firing budget of {budget} exceeded (livelock?)")
            }
            InterpError::ResidualTokens { leftovers } => {
                write!(f, "residual tokens at quiescence: {leftovers:?}")
            }
            InterpError::UnknownParam { name } => write!(f, "no parameter named {name}"),
            InterpError::UnknownSink { name } => write!(f, "no sink named {name}"),
            InterpError::SinkArity { name, count } => {
                write!(
                    f,
                    "sink {name} collected {count} values, expected exactly 1"
                )
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of a successful interpretation.
#[derive(Debug, Clone)]
pub struct InterpResult {
    /// Values collected by each sink, in arrival order.
    pub sinks: HashMap<String, Vec<Value>>,
    /// Final memory state.
    pub memory: Memory,
    /// Total node firings.
    pub firings: u64,
    /// Firing count per node (profile for the compiler's reshape pass).
    pub fired_per_node: Vec<u64>,
}

impl InterpResult {
    /// The single value of a scalar sink.
    ///
    /// # Errors
    /// Returns [`InterpError::UnknownSink`] when no sink has this label
    /// and [`InterpError::SinkArity`] when the sink collected more or
    /// fewer than one value.
    pub fn scalar(&self, name: &str) -> Result<Value, InterpError> {
        let vs = self
            .sinks
            .get(name)
            .ok_or_else(|| InterpError::UnknownSink {
                name: name.to_string(),
            })?;
        if vs.len() != 1 {
            return Err(InterpError::SinkArity {
                name: name.to_string(),
                count: vs.len(),
            });
        }
        Ok(vs[0])
    }
}

/// Per-node sequencing state (Carry and Inv state machines).
#[derive(Clone, Copy, Debug, PartialEq)]
enum SeqState {
    /// Carry waiting for `init` / Inv waiting for `v`.
    Fresh,
    /// Carry in looping state.
    Looping,
    /// Inv holding a value.
    Held(Value),
}

struct Engine<'g> {
    g: &'g Cdfg,
    mode: ExecMode,
    consumers: Vec<Vec<(NodeId, usize)>>,
    /// One FIFO per node input port (flattened).
    queues: Vec<VecDeque<Value>>,
    port_base: Vec<usize>,
    state: Vec<SeqState>,
    params: Vec<Value>,
    memory: Memory,
    sinks: HashMap<String, Vec<Value>>,
    firings: u64,
    fired_per_node: Vec<u64>,
    ready: VecDeque<NodeId>,
    in_ready: Vec<bool>,
}

/// Default budget: generous enough for the largest evaluation kernels.
pub const DEFAULT_FIRING_BUDGET: u64 = 400_000_000;

/// Interprets a program with parameter overrides (`name -> value`).
///
/// # Errors
/// Returns [`InterpError`] on livelock or token-rate violations.
pub fn interpret(
    g: &Cdfg,
    mode: ExecMode,
    overrides: &[(&str, Value)],
) -> Result<InterpResult, InterpError> {
    interpret_with_budget(g, mode, overrides, DEFAULT_FIRING_BUDGET)
}

/// [`interpret`] with an explicit firing budget.
///
/// # Errors
/// Returns [`InterpError`] on livelock or token-rate violations.
pub fn interpret_with_budget(
    g: &Cdfg,
    mode: ExecMode,
    overrides: &[(&str, Value)],
    budget: u64,
) -> Result<InterpResult, InterpError> {
    let mut params: Vec<Value> = g.params.iter().map(|p| p.default).collect();
    for (name, v) in overrides {
        let id = g
            .param_by_name(name)
            .ok_or_else(|| InterpError::UnknownParam {
                name: (*name).to_string(),
            })?;
        params[id.0 as usize] = *v;
    }
    let mut port_base = Vec::with_capacity(g.nodes.len() + 1);
    let mut total = 0usize;
    for n in &g.nodes {
        port_base.push(total);
        total += n.inputs.len();
    }
    port_base.push(total);
    let mut eng = Engine {
        g,
        mode,
        consumers: g.consumers(),
        queues: vec![VecDeque::new(); total],
        port_base,
        state: vec![SeqState::Fresh; g.nodes.len()],
        params,
        memory: Memory::from_cdfg(g),
        sinks: g
            .sinks()
            .iter()
            .map(|(_, name)| (name.to_string(), Vec::new()))
            .collect(),
        firings: 0,
        fired_per_node: vec![0; g.nodes.len()],
        ready: VecDeque::new(),
        in_ready: vec![false; g.nodes.len()],
    };
    eng.run(budget)?;
    // Rate-consistency invariant: a quiescent well-formed program leaves no
    // tokens behind.
    let mut leftovers = Vec::new();
    for (id, n) in g.iter_nodes() {
        for port in 0..n.inputs.len() {
            let q = &eng.queues[eng.port_base[id.0 as usize] + port];
            if !q.is_empty() {
                leftovers.push((id, port, q.len()));
                if leftovers.len() >= 8 {
                    break;
                }
            }
        }
    }
    if !leftovers.is_empty() {
        return Err(InterpError::ResidualTokens { leftovers });
    }
    Ok(InterpResult {
        sinks: eng.sinks,
        memory: eng.memory,
        firings: eng.firings,
        fired_per_node: eng.fired_per_node,
    })
}

impl<'g> Engine<'g> {
    fn qidx(&self, node: NodeId, port: usize) -> usize {
        self.port_base[node.0 as usize] + port
    }

    /// Peeks the value available at a port without consuming.
    fn peek(&self, node: NodeId, port: usize) -> Option<Value> {
        match self.g.node(node).inputs[port] {
            PortSrc::Imm(v) => Some(v),
            PortSrc::Param(p) => Some(self.params[p.0 as usize]),
            PortSrc::Node(_) => self.queues[self.qidx(node, port)].front().copied(),
            PortSrc::None => None,
        }
    }

    fn avail(&self, node: NodeId, port: usize) -> bool {
        match self.g.node(node).inputs[port] {
            PortSrc::Imm(_) | PortSrc::Param(_) => true,
            PortSrc::Node(_) => !self.queues[self.qidx(node, port)].is_empty(),
            PortSrc::None => false,
        }
    }

    fn connected(&self, node: NodeId, port: usize) -> bool {
        self.g.node(node).inputs[port].is_connected()
    }

    /// Consumes and returns the value at a port (immediates are copied).
    fn pop(&mut self, node: NodeId, port: usize) -> Value {
        match self.g.node(node).inputs[port] {
            PortSrc::Imm(v) => v,
            PortSrc::Param(p) => self.params[p.0 as usize],
            PortSrc::Node(_) => {
                let qi = self.qidx(node, port);
                self.queues[qi].pop_front().expect("pop on empty queue")
            }
            PortSrc::None => panic!("pop on unconnected port"),
        }
    }

    fn emit(&mut self, node: NodeId, v: Value) {
        // Fan the token out to every consumer port.
        let cons = std::mem::take(&mut self.consumers[node.0 as usize]);
        for &(c, port) in &cons {
            let qi = self.qidx(c, port);
            self.queues[qi].push_back(v);
            self.mark_ready(c);
        }
        self.consumers[node.0 as usize] = cons;
    }

    fn mark_ready(&mut self, n: NodeId) {
        if !self.in_ready[n.0 as usize] {
            self.in_ready[n.0 as usize] = true;
            self.ready.push_back(n);
        }
    }

    fn run(&mut self, budget: u64) -> Result<(), InterpError> {
        // Seed: the Start node fires once.
        for (id, n) in self.g.iter_nodes() {
            if matches!(n.op, Op::Start) {
                self.firings += 1;
                self.fired_per_node[id.0 as usize] += 1;
                self.emit(id, Value::Unit);
            }
            // Nodes with all-immediate connected inputs would livelock;
            // the builder prevents them, but hand-built graphs could not.
        }
        while let Some(n) = self.ready.pop_front() {
            self.in_ready[n.0 as usize] = false;
            // Drain the node: fire as long as it can.
            while self.try_fire(n) {
                self.firings += 1;
                self.fired_per_node[n.0 as usize] += 1;
                if self.firings > budget {
                    return Err(InterpError::FiringBudgetExceeded { budget });
                }
            }
        }
        Ok(())
    }

    /// Attempts one firing of `n`; returns whether it fired.
    fn try_fire(&mut self, n: NodeId) -> bool {
        let op = self.g.node(n).op;
        match op {
            Op::Start => false, // fired at seed time
            Op::Bin(b) => {
                if !(self.avail(n, 0) && self.avail(n, 1)) {
                    return false;
                }
                let a = self.pop(n, 0);
                let c = self.pop(n, 1);
                self.emit(n, b.eval(a, c));
                true
            }
            Op::Un(u) => {
                if !self.avail(n, 0) {
                    return false;
                }
                let a = self.pop(n, 0);
                self.emit(n, u.eval(a));
                true
            }
            Op::Nl(u) => {
                if !self.avail(n, 0) {
                    return false;
                }
                let a = self.pop(n, 0);
                self.emit(n, u.eval(a));
                true
            }
            Op::Mux => {
                if !(self.avail(n, 0) && self.avail(n, 1) && self.avail(n, 2)) {
                    return false;
                }
                let p = self.pop(n, 0);
                let t = self.pop(n, 1);
                let f = self.pop(n, 2);
                let out = match p.as_bool() {
                    None => Value::Poison,
                    Some(true) => t,
                    Some(false) => f,
                };
                self.emit(n, out);
                true
            }
            Op::Load(arr) => {
                let need_dep = self.connected(n, 1);
                if !self.avail(n, 0) || (need_dep && !self.avail(n, 1)) {
                    return false;
                }
                let idx = self.pop(n, 0);
                if need_dep {
                    self.pop(n, 1);
                }
                let out = if idx.is_poison() {
                    Value::Poison
                } else {
                    self.memory.load(arr, idx.to_i32_lossy())
                };
                self.emit(n, out);
                true
            }
            Op::Store(arr) => {
                let need_dep = self.connected(n, 2);
                if !(self.avail(n, 0) && self.avail(n, 1)) || (need_dep && !self.avail(n, 2)) {
                    return false;
                }
                let idx = self.pop(n, 0);
                let val = self.pop(n, 1);
                if need_dep {
                    self.pop(n, 2);
                }
                if !idx.is_poison() && !val.is_poison() {
                    self.memory.store(arr, idx.to_i32_lossy(), val);
                }
                self.emit(n, Value::Unit);
                true
            }
            Op::Gate => {
                let val_tok = matches!(self.g.node(n).inputs[1], PortSrc::Node(_));
                if !self.avail(n, 0) || (val_tok && !self.avail(n, 1)) {
                    return false;
                }
                let trig = self.pop(n, 0);
                let v = self.pop(n, 1);
                let out = if trig.is_poison() { Value::Poison } else { v };
                self.emit(n, out);
                true
            }
            Op::Steer { sense, role } => {
                if !(self.avail(n, 0) && self.avail(n, 1)) {
                    return false;
                }
                let p = self.pop(n, 0);
                let v = self.pop(n, 1);
                let predicated = self.mode == ExecMode::Predicated && role == SteerRole::Branch;
                if predicated {
                    let out = match p.as_bool() {
                        Some(b) if b == sense => v,
                        _ => Value::Poison,
                    };
                    self.emit(n, out);
                } else {
                    debug_assert!(
                        !(p.is_poison() && role == SteerRole::LoopCtl),
                        "poison predicate reached loop-control steer {n}"
                    );
                    if p.as_bool() == Some(sense) {
                        self.emit(n, v);
                    }
                }
                true
            }
            Op::Merge { role } => {
                let predicated = self.mode == ExecMode::Predicated && role == SteerRole::Branch;
                if predicated {
                    if !(self.avail(n, 0) && self.avail(n, 1) && self.avail(n, 2)) {
                        return false;
                    }
                    let p = self.pop(n, 0);
                    let t = self.pop(n, 1);
                    let f = self.pop(n, 2);
                    let out = match p.as_bool() {
                        None => Value::Poison,
                        Some(true) => t,
                        Some(false) => f,
                    };
                    self.emit(n, out);
                    true
                } else {
                    let Some(p) = self.peek(n, 0) else {
                        return false;
                    };
                    let side = match p.as_bool() {
                        Some(true) => 1,
                        Some(false) => 2,
                        None => {
                            debug_assert!(false, "poison predicate at dropping merge {n}");
                            2
                        }
                    };
                    if !self.avail(n, side) {
                        return false;
                    }
                    self.pop(n, 0);
                    let v = self.pop(n, side);
                    self.emit(n, v);
                    true
                }
            }
            Op::Carry => {
                match self.state[n.0 as usize] {
                    SeqState::Fresh => {
                        if !self.avail(n, 1) {
                            return false;
                        }
                        let init = self.pop(n, 1);
                        self.state[n.0 as usize] = SeqState::Looping;
                        self.emit(n, init);
                        true
                    }
                    SeqState::Looping => {
                        let Some(last) = self.peek(n, 0) else {
                            return false;
                        };
                        // Both arms need the `next` token (use or drop).
                        if !self.avail(n, 2) {
                            return false;
                        }
                        self.pop(n, 0);
                        let next = self.pop(n, 2);
                        if last.as_bool() == Some(false) {
                            self.emit(n, next);
                        } else {
                            // Loop ended (or poisoned): drop and reset.
                            self.state[n.0 as usize] = SeqState::Fresh;
                        }
                        true
                    }
                    SeqState::Held(_) => unreachable!("carry never holds"),
                }
            }
            Op::Inv => match self.state[n.0 as usize] {
                SeqState::Fresh => {
                    if !self.avail(n, 0) {
                        return false;
                    }
                    let v = self.pop(n, 0);
                    self.state[n.0 as usize] = SeqState::Held(v);
                    self.emit(n, v);
                    true
                }
                SeqState::Held(v) => {
                    if !self.avail(n, 1) {
                        return false;
                    }
                    let last = self.pop(n, 1);
                    if last.as_bool() == Some(false) {
                        self.emit(n, v);
                    } else {
                        self.state[n.0 as usize] = SeqState::Fresh;
                    }
                    true
                }
                SeqState::Looping => unreachable!("inv never loops"),
            },
            Op::Sink => {
                if !self.avail(n, 0) {
                    return false;
                }
                let v = self.pop(n, 0);
                let label = self.g.node(n).label.clone().unwrap_or_default();
                self.sinks.entry(label).or_default().push(v);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CdfgBuilder;

    fn run_both(g: &Cdfg) -> (InterpResult, InterpResult) {
        let d = interpret(g, ExecMode::Dropping, &[]).expect("dropping mode");
        let p = interpret(g, ExecMode::Predicated, &[]).expect("predicated mode");
        (d, p)
    }

    #[test]
    fn straight_line_add() {
        let mut b = CdfgBuilder::new("t");
        let x = b.imm(2);
        let y = b.imm(40);
        let s = b.add(x, y);
        b.sink("s", s);
        let g = b.finish();
        let (d, p) = run_both(&g);
        assert_eq!(d.scalar("s").unwrap(), Value::I32(42));
        assert_eq!(p.scalar("s").unwrap(), Value::I32(42));
    }

    #[test]
    fn counted_loop_sum() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let outs = b.for_range(0, 10, &[zero], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("sum", outs[0]);
        let g = b.finish();
        let (d, p) = run_both(&g);
        assert_eq!(d.scalar("sum").unwrap(), Value::I32(45));
        assert_eq!(p.scalar("sum").unwrap(), Value::I32(45));
    }

    #[test]
    fn zero_trip_loop_bypasses() {
        let mut b = CdfgBuilder::new("t");
        let init = b.imm(7);
        let outs = b.for_range(5, 5, &[init], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("r", outs[0]);
        let g = b.finish();
        let (d, _) = run_both(&g);
        assert_eq!(d.scalar("r").unwrap(), Value::I32(7));
    }

    #[test]
    fn loop_with_step() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let outs = b.for_range_step(0, 10, 3, &[zero], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("sum", outs[0]);
        let g = b.finish();
        let (d, _) = run_both(&g);
        assert_eq!(d.scalar("sum").unwrap(), Value::I32(3 + 6 + 9));
    }

    #[test]
    fn nested_loops_with_invariant() {
        // sum_{i=0..4} sum_{j=0..i} (j + K) where K is loop-invariant
        let mut b = CdfgBuilder::new("t");
        let k = b.param("k", 10);
        let zero = b.imm(0);
        let outs = b.for_range(0, 4, &[zero], |b, i, v| {
            let inner = b.for_range(0, i, &[v[0]], |b, j, w| {
                let t = b.add(j, k);
                vec![b.add(w[0], t)]
            });
            vec![inner[0]]
        });
        b.sink("s", outs[0]);
        let g = b.finish();
        let (d, p) = run_both(&g);
        // i=0: nothing; i=1: j=0 -> 10; i=2: 10+11; i=3: 10+11+12
        let expect = 10 + (10 + 11) + (10 + 11 + 12);
        assert_eq!(d.scalar("s").unwrap(), Value::I32(expect));
        assert_eq!(p.scalar("s").unwrap(), Value::I32(expect));
    }

    #[test]
    fn branch_divergence_both_modes() {
        // for i in 0..8 { if i&1 { s += i*2 } else { s -= i } }
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let outs = b.for_range(0, 8, &[zero], |b, i, v| {
            let one = b.imm(1);
            let bit = b.and_(i, one);
            let r = b.if_else(
                bit,
                |b| {
                    let d = b.mul(i, 2.into());
                    vec![b.add(v[0], d)]
                },
                |b| vec![b.sub(v[0], i)],
            );
            vec![r[0]]
        });
        b.sink("s", outs[0]);
        let g = b.finish();
        let (d, p) = run_both(&g);
        let mut s = 0i32;
        for i in 0..8 {
            if i & 1 == 1 {
                s += i * 2;
            } else {
                s -= i;
            }
        }
        assert_eq!(d.scalar("s").unwrap(), Value::I32(s));
        assert_eq!(p.scalar("s").unwrap(), Value::I32(s));
    }

    #[test]
    fn nested_branches() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let outs = b.for_range(0, 10, &[zero], |b, i, v| {
            let c1 = b.gt(i, 4.into());
            let r = b.if_else(
                c1,
                |b| {
                    let c2 = b.gt(i, 7.into());
                    let inner = b.if_else(
                        c2,
                        |b| vec![b.add(v[0], 100.into())],
                        |b| vec![b.add(v[0], 10.into())],
                    );
                    vec![inner[0]]
                },
                |b| vec![b.add(v[0], 1.into())],
            );
            vec![r[0]]
        });
        b.sink("s", outs[0]);
        let g = b.finish();
        let (d, p) = run_both(&g);
        // i 0..=4: +1 (5), i 5..=7: +10 (30), i 8,9: +100 (200) => 235
        assert_eq!(d.scalar("s").unwrap(), Value::I32(235));
        assert_eq!(p.scalar("s").unwrap(), Value::I32(235));
    }

    #[test]
    fn memory_kernel() {
        // out[i] = a[i] * 2 + 1
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 8, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let out = b.array_i32("out", 8, &[]);
        b.mark_output(out);
        let zero = b.imm(0);
        let _ = b.for_range(0, 8, &[zero], |b, i, v| {
            let x = b.load(a, i);
            let y = b.mul(x, 2.into());
            let z = b.add(y, 1.into());
            b.store(out, i, z);
            vec![v[0]]
        });
        let g = b.finish();
        let (d, p) = run_both(&g);
        for i in 0..8 {
            assert_eq!(d.memory.array(out)[i], Value::I32((i as i32 + 1) * 2 + 1));
            assert_eq!(p.memory.array(out)[i], Value::I32((i as i32 + 1) * 2 + 1));
        }
        assert_eq!(d.memory.oob_events(), 0);
    }

    #[test]
    fn store_in_branch_predicated_skips_poison() {
        // only even i write out[i]
        let mut b = CdfgBuilder::new("t");
        let out = b.array_i32("out", 8, &[]);
        b.mark_output(out);
        let zero = b.imm(0);
        let _ = b.for_range(0, 8, &[zero], |b, i, v| {
            let bit = b.and_(i, 1.into());
            let even = b.lnot(bit);
            let r = b.if_else(
                even,
                |b| {
                    b.store(out, i, i);
                    vec![v[0]]
                },
                |_| vec![v[0]],
            );
            vec![r[0]]
        });
        let g = b.finish();
        let (d, p) = run_both(&g);
        for i in 0..8 {
            let expect = if i % 2 == 0 { i as i32 } else { 0 };
            assert_eq!(d.memory.array(out)[i], Value::I32(expect), "i={i}");
            assert_eq!(p.memory.array(out)[i], Value::I32(expect), "i={i}");
        }
    }

    #[test]
    fn while_loop_collatz() {
        // count steps for 27 to reach 1 (hammock inside while)
        let mut b = CdfgBuilder::new("t");
        let n0 = b.imm(27);
        let c0 = b.imm(0);
        let one = b.imm(1);
        let outs = b.loop_while(
            &[n0, c0],
            |b, vals| b.gt(vals[0], one),
            |b, vals| {
                let n = vals[0];
                let bit = b.and_(n, 1.into());
                let half = b.ashr(n, 1.into());
                let tri = b.mul(n, 3.into());
                let tri1 = b.add(tri, 1.into());
                let next = b.mux(bit, tri1, half);
                let cnt = b.add(vals[1], 1.into());
                vec![next, cnt]
            },
        );
        b.sink("steps", outs[1]);
        let g = b.finish();
        let (d, p) = run_both(&g);
        // reference
        let (mut n, mut c) = (27i64, 0i32);
        while n > 1 {
            n = if n % 2 == 1 { 3 * n + 1 } else { n / 2 };
            c += 1;
        }
        assert_eq!(d.scalar("steps").unwrap(), Value::I32(c));
        assert_eq!(p.scalar("steps").unwrap(), Value::I32(c));
    }

    #[test]
    fn rmw_with_dependence_tokens() {
        // histogram: acc[a[i]] += 1, RMW chained through dep tokens
        let mut b = CdfgBuilder::new("t");
        let a = b.array_i32("a", 8, &[1, 3, 1, 0, 3, 3, 2, 1]);
        let acc = b.array_i32("acc", 4, &[]);
        b.mark_output(acc);
        let zero = b.imm(0);
        let start = b.start_token();
        let _ = b.for_range(0, 8, &[start, zero], |b, i, v| {
            let idx = b.load(a, i);
            let cur = b.load_dep(acc, idx, v[0]);
            let inc = b.add(cur, 1.into());
            let tok = b.store(acc, idx, inc);
            vec![tok, v[1]]
        });
        let g = b.finish();
        let (d, p) = run_both(&g);
        let expect = [1, 3, 1, 3];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(d.memory.array(acc)[i], Value::I32(*e));
            assert_eq!(p.memory.array(acc)[i], Value::I32(*e));
        }
    }

    #[test]
    fn param_override() {
        let mut b = CdfgBuilder::new("t");
        let n = b.param("n", 3);
        let zero = b.imm(0);
        let outs = b.for_range(0, n, &[zero], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("s", outs[0]);
        let g = b.finish();
        let r = interpret(&g, ExecMode::Dropping, &[("n", Value::I32(5))]).unwrap();
        assert_eq!(r.scalar("s").unwrap(), Value::I32(10));
    }

    #[test]
    fn firing_budget_enforced() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let outs = b.for_range(0, 1000, &[zero], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("s", outs[0]);
        let g = b.finish();
        let err = interpret_with_budget(&g, ExecMode::Dropping, &[], 100).unwrap_err();
        assert!(matches!(err, InterpError::FiringBudgetExceeded { .. }));
    }

    #[test]
    fn unknown_param_override_is_a_typed_error() {
        let mut b = CdfgBuilder::new("t");
        let n = b.param("n", 4);
        b.sink("n", n);
        let g = b.finish();
        let err = interpret(&g, ExecMode::Dropping, &[("bogus", Value::I32(1))]).unwrap_err();
        assert_eq!(
            err,
            InterpError::UnknownParam {
                name: "bogus".into()
            }
        );
        assert_eq!(err.to_string(), "no parameter named bogus");
    }

    #[test]
    fn unknown_and_nonscalar_sinks_are_typed_errors() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let outs = b.for_range(0, 3, &[zero], |b, i, v| {
            let x = b.add(i, 1.into());
            b.sink("stream", x);
            vec![b.add(v[0], i)]
        });
        b.sink("s", outs[0]);
        let g = b.finish();
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        assert_eq!(
            r.scalar("nope").unwrap_err(),
            InterpError::UnknownSink {
                name: "nope".into()
            }
        );
        assert_eq!(
            r.scalar("stream").unwrap_err(),
            InterpError::SinkArity {
                name: "stream".into(),
                count: 3
            }
        );
        assert_eq!(r.scalar("s").unwrap(), Value::I32(3));
    }

    #[test]
    fn firing_counts_profile() {
        let mut b = CdfgBuilder::new("t");
        let zero = b.imm(0);
        let outs = b.for_range(0, 10, &[zero], |b, i, v| vec![b.add(v[0], i)]);
        b.sink("s", outs[0]);
        let g = b.finish();
        let r = interpret(&g, ExecMode::Dropping, &[]).unwrap();
        // The accumulator add lives in the body (the induction increment
        // belongs to the header cluster). It fires once per iteration.
        let adds: Vec<u64> = g
            .iter_nodes()
            .filter(|(_, n)| {
                matches!(n.op, Op::Bin(crate::op::BinOp::Add))
                    && g.block(n.bb).kind == crate::graph::BlockKind::LoopBody
            })
            .map(|(id, _)| r.fired_per_node[id.0 as usize])
            .collect();
        assert_eq!(adds, vec![10]);
    }
}
