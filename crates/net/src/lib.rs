//! # marionette-net
//!
//! Interconnect substrate of the Marionette reproduction:
//!
//! - [`benes`]: N×N rearrangeable non-blocking Benes network with the
//!   looping routing algorithm (the control network's permutation core,
//!   Fig 6a);
//! - [`cs`]: Consecutive-Spreading broadcast stages (Fig 6b);
//! - [`csbenes`]: the composed CS-Benes control network — statically
//!   configured single-cycle peer-to-peer multicast with no arbitration
//!   (Fig 6c);
//! - [`mesh`]: the XY-routed mesh data network topology whose per-link
//!   bandwidth the simulator accounts cycle by cycle.
//!
//! Switch/cell counts exposed here feed the `marionette-hw` area models
//! behind Table 6 and the Fig 13 scalability study.
//!
//! The permutation core is rearrangeable non-blocking: the looping
//! algorithm routes *any* permutation, and evaluating the resulting
//! switch configuration reproduces it exactly:
//!
//! ```
//! use marionette_net::Benes;
//!
//! let net = Benes::new(8);
//! let perm = [3, 1, 4, 0, 6, 2, 7, 5]; // perm[i] = output reached from input i
//! let cfg = net.route(&perm).expect("any permutation routes");
//! let out = net.evaluate(&cfg); // out[o] = input arriving at output o
//! for (i, &o) in perm.iter().enumerate() {
//!     assert_eq!(out[o], i);
//! }
//! assert_eq!(net.stages(), 5); // 2·log2(8) − 1
//! ```

#![warn(missing_docs)]

pub mod benes;
pub mod cs;
pub mod csbenes;
pub mod mesh;

pub use benes::{Benes, BenesConfig};
pub use cs::{CsConfig, CsNetwork};
pub use csbenes::{CsBenesNetwork, CtrlNetConfig, CtrlNetError};
pub use mesh::{Dir, LinkId, Mesh};
