//! The CS-Benes control network (Fig 6c): single-cycle, statically
//! configured, peer-to-peer multicast of control flow between PEs, control
//! FIFOs and the controller.
//!
//! The paper composes Consecutive-Spreading stages with a 64×64 Benes
//! permutation so that each of the 16 PE-array control outputs can reach
//! any set of control inputs with *no arbitration*: the network is
//! configured once per mapping and every path sustains one transfer per
//! cycle. We realize the same composition constructively:
//!
//! 1. each multicast source is assigned a consecutive interval of internal
//!    lines sized by its fanout;
//! 2. the Benes permutation carries source `i` to the start of its
//!    interval;
//! 3. the CS stage spreads it across the interval;
//! 4. a per-output selector picks the line carrying the value destined to
//!    that output.
//!
//! Total fanout is bounded by the internal line count (64 in the paper's
//! 4×4 instance); the compiler degrades to time-multiplexed delivery when
//! a mapping exceeds it (none of the evaluation kernels do).

use crate::benes::{Benes, BenesConfig};
use crate::cs::{CsConfig, CsNetwork};
use std::fmt;

/// A configured control-network instance.
#[derive(Clone, Debug, PartialEq)]
pub struct CtrlNetConfig {
    /// Permutation stage settings.
    pub benes: BenesConfig,
    /// Spreading stage settings.
    pub cs: CsConfig,
    /// Per-output line selector (`None` = output unused).
    pub out_sel: Vec<Option<usize>>,
    /// Source port feeding each interval, for diagnostics.
    pub intervals: Vec<(usize, usize, usize)>,
}

/// Control network routing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlNetError {
    /// Sum of fanouts exceeds the internal line count.
    FanoutExceeded {
        /// Requested total fanout.
        requested: usize,
        /// Available internal lines.
        capacity: usize,
    },
    /// More sources than input ports.
    TooManySources,
    /// A destination port is out of range or doubly driven.
    BadDestination(usize),
}

impl fmt::Display for CtrlNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlNetError::FanoutExceeded {
                requested,
                capacity,
            } => write!(f, "total fanout {requested} exceeds {capacity} lines"),
            CtrlNetError::TooManySources => write!(f, "more sources than input ports"),
            CtrlNetError::BadDestination(d) => write!(f, "bad destination {d}"),
        }
    }
}

impl std::error::Error for CtrlNetError {}

/// The control network of a Marionette fabric: `ports` endpoints (PE
/// control I/O, control FIFOs, controller) over `lines` internal lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsBenesNetwork {
    ports: usize,
    lines: usize,
}

impl CsBenesNetwork {
    /// Creates a network with the given endpoint count and internal line
    /// count (the paper's 4×4 instance uses 16+ ports over 64 lines).
    ///
    /// # Panics
    /// Panics unless `lines` is a power of two, at least `ports`.
    pub fn new(ports: usize, lines: usize) -> Self {
        assert!(lines.is_power_of_two() && lines >= 2, "lines must be 2^k");
        assert!(lines >= ports, "need at least one line per port");
        CsBenesNetwork { ports, lines }
    }

    /// The control network sized for a fabric with `ports` PE-array
    /// control endpoints: four internal lines per endpoint (the paper's
    /// fan-out provisioning), rounded up to the Benes power-of-two line
    /// count. `for_fabric(16)` reproduces the paper's 64-line 4×4
    /// instance; a 6×6 fabric gets 36 ports over 256 lines.
    pub fn for_fabric(ports: usize) -> Self {
        CsBenesNetwork::new(ports, (4 * ports).next_power_of_two())
    }

    /// The paper's configuration: 16 endpoints over a 64×64 Benes with
    /// 16×16 CS stages.
    pub fn paper_4x4() -> Self {
        CsBenesNetwork::for_fabric(16)
    }

    /// Endpoint count.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Internal line count.
    pub fn lines(&self) -> usize {
        self.lines
    }

    /// Total 2×2-switch-equivalent count (Benes switches + CS cells),
    /// the basis of the Table 6 area comparison.
    pub fn switch_count(&self) -> usize {
        Benes::new(self.lines).switch_count() + CsNetwork::new(self.lines).cell_count() / 2
    }

    /// Configures the network for a set of multicasts: `casts[k] = (src,
    /// dsts)` routes source port `src` to every port in `dsts`. Each
    /// destination may be driven by at most one source.
    ///
    /// # Errors
    /// See [`CtrlNetError`].
    pub fn route(&self, casts: &[(usize, Vec<usize>)]) -> Result<CtrlNetConfig, CtrlNetError> {
        if casts.len() > self.ports {
            return Err(CtrlNetError::TooManySources);
        }
        let total: usize = casts.iter().map(|(_, d)| d.len()).sum();
        if total > self.lines {
            return Err(CtrlNetError::FanoutExceeded {
                requested: total,
                capacity: self.lines,
            });
        }
        let mut out_sel: Vec<Option<usize>> = vec![None; self.ports];
        let mut intervals = Vec::new();
        let mut perm_pairs: Vec<(usize, usize)> = Vec::new(); // (input line, target line)
        let mut cursor = 0usize;
        let mut cs_intervals = Vec::new();
        for (src, dsts) in casts {
            if *src >= self.ports {
                return Err(CtrlNetError::BadDestination(*src));
            }
            if dsts.is_empty() {
                continue; // source drives nothing: no lines needed
            }
            let lo = cursor;
            let hi = cursor + dsts.len();
            perm_pairs.push((*src, lo));
            cs_intervals.push((lo, hi));
            for (k, &d) in dsts.iter().enumerate() {
                if d >= self.ports || out_sel[d].is_some() {
                    return Err(CtrlNetError::BadDestination(d));
                }
                out_sel[d] = Some(lo + k);
            }
            intervals.push((lo, hi, *src));
            cursor = hi;
        }
        // Complete the permutation: unused inputs map to leftover lines.
        let mut used_out = vec![false; self.lines];
        for &(_, t) in &perm_pairs {
            used_out[t] = true;
        }
        let mut used_in = vec![false; self.lines];
        for &(s, _) in &perm_pairs {
            used_in[s] = true;
        }
        let mut perm = vec![usize::MAX; self.lines];
        for &(s, t) in &perm_pairs {
            perm[s] = t;
        }
        let mut free_out = (0..self.lines).filter(|&o| !used_out[o]);
        for (i, p) in perm.iter_mut().enumerate() {
            if *p == usize::MAX {
                let _ = i;
                *p = free_out.next().expect("line counts match");
            }
        }
        let benes = Benes::new(self.lines)
            .route(&perm)
            .expect("constructed permutation is valid");
        let cs = CsNetwork::new(self.lines)
            .route(&cs_intervals)
            .expect("intervals are disjoint by construction");
        Ok(CtrlNetConfig {
            benes,
            cs,
            out_sel,
            intervals,
        })
    }

    /// Evaluates a configured network on source port values.
    ///
    /// Returns the value arriving at each output port.
    pub fn evaluate<T: Copy>(&self, cfg: &CtrlNetConfig, inputs: &[Option<T>]) -> Vec<Option<T>> {
        assert_eq!(inputs.len(), self.ports);
        // Input ports sit on the first `ports` lines.
        let mut lines: Vec<Option<T>> = vec![None; self.lines];
        lines[..self.ports].copy_from_slice(inputs);
        // Benes permutation.
        let mapping = Benes::new(self.lines).evaluate(&cfg.benes);
        let mut permuted: Vec<Option<T>> = vec![None; self.lines];
        for (out_line, &in_line) in mapping.iter().enumerate() {
            permuted[out_line] = lines[in_line];
        }
        // CS spreading.
        let spread = CsNetwork::new(self.lines).evaluate(&cfg.cs, &permuted);
        // Output selectors.
        cfg.out_sel
            .iter()
            .map(|sel| sel.and_then(|line| spread[line]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(net: CsBenesNetwork, casts: Vec<(usize, Vec<usize>)>) {
        let cfg = net.route(&casts).expect("routable");
        let mut inputs = vec![None; net.ports()];
        for (src, _) in &casts {
            inputs[*src] = Some(*src as u32 + 100);
        }
        let out = net.evaluate(&cfg, &inputs);
        let mut expected = vec![None; net.ports()];
        for (src, dsts) in &casts {
            for &d in dsts {
                expected[d] = Some(*src as u32 + 100);
            }
        }
        assert_eq!(out, expected);
    }

    #[test]
    fn unicast_pairs() {
        check(
            CsBenesNetwork::paper_4x4(),
            vec![(0, vec![5]), (1, vec![0]), (7, vec![7])],
        );
    }

    #[test]
    fn broadcast_one_to_all() {
        let all: Vec<usize> = (0..16).collect();
        check(CsBenesNetwork::paper_4x4(), vec![(3, all)]);
    }

    #[test]
    fn mixed_multicast() {
        check(
            CsBenesNetwork::paper_4x4(),
            vec![
                (0, vec![1, 2, 3]),
                (4, vec![0, 8, 9, 10]),
                (5, vec![4]),
                (15, vec![5, 6, 7, 11, 12, 13, 14, 15]),
            ],
        );
    }

    #[test]
    fn fanout_limit_enforced() {
        let net = CsBenesNetwork::new(4, 4);
        let err = net
            .route(&[(0, vec![0, 1, 2]), (1, vec![3]), (2, vec![])])
            .map(|_| ());
        assert!(err.is_ok());
        let err = net.route(&[(0, vec![0, 1, 2, 3]), (1, vec![0])]);
        assert!(matches!(
            err.unwrap_err(),
            CtrlNetError::BadDestination(0) | CtrlNetError::FanoutExceeded { .. }
        ));
    }

    #[test]
    fn double_driven_output_rejected() {
        let net = CsBenesNetwork::paper_4x4();
        let err = net.route(&[(0, vec![3]), (1, vec![3])]).unwrap_err();
        assert_eq!(err, CtrlNetError::BadDestination(3));
    }

    #[test]
    fn fabric_sizing() {
        let n4 = CsBenesNetwork::for_fabric(16);
        assert_eq!(
            (n4.ports(), n4.lines()),
            (16, 64),
            "the paper's 4x4 instance"
        );
        assert_eq!(n4, CsBenesNetwork::paper_4x4());
        let n6 = CsBenesNetwork::for_fabric(36);
        assert_eq!((n6.ports(), n6.lines()), (36, 256));
        let n8 = CsBenesNetwork::for_fabric(64);
        assert_eq!((n8.ports(), n8.lines()), (64, 256));
        // A broadcast from every source still routes on the bigger nets.
        check(n6, vec![(0, (0..36).collect())]);
    }

    #[test]
    fn switch_count_sane() {
        let net = CsBenesNetwork::paper_4x4();
        // 64x64 Benes: 11 stages * 32 = 352; CS(64): 64*6/2 = 192
        assert_eq!(net.switch_count(), 352 + 192);
    }

    proptest! {
        #[test]
        fn random_multicasts(seed in 0u64..2000) {
            let net = CsBenesNetwork::paper_4x4();
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); (s >> 33) as usize };
            // random assignment of each output to at most one source
            let nsrc = 1 + next() % 8;
            let srcs: Vec<usize> = (0..nsrc).map(|_| next() % 16).collect();
            let mut casts: Vec<(usize, Vec<usize>)> = Vec::new();
            let mut seen_src = std::collections::HashSet::new();
            for &s0 in &srcs {
                if seen_src.insert(s0) {
                    casts.push((s0, vec![]));
                }
            }
            for out in 0..16 {
                if next() % 3 == 0 {
                    let k = next() % casts.len();
                    casts[k].1.push(out);
                }
            }
            check(net, casts);
        }
    }
}
