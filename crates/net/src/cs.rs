//! Consecutive-Spreading (CS) broadcast network.
//!
//! The Benes network cannot broadcast; the paper augments it with the CS
//! network of Lea (1988), which spreads each input over a *consecutive*
//! range of outputs at a cost far below cascading same-sized networks
//! (Fig 6b). We implement the spreading fabric as `log2(N)` stages of
//! per-line 2:1 copy cells with strides `N/2, N/4, …, 1`: a value sitting
//! at the start of its target interval doubles across the interval, one
//! stride at a time. Disjoint intervals use disjoint cells, so any
//! non-overlapping interval assignment is conflict-free.

use std::fmt;

/// Configuration of one CS network: for each stage, for each line, whether
/// the line copies from its stride partner (`line - stride`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsConfig {
    /// `copy[stage][line]` — line takes the value from `line - stride`.
    pub copy: Vec<Vec<bool>>,
}

/// Interval assignment error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsError {
    /// An interval exceeds the line range.
    OutOfRange,
    /// Two intervals overlap.
    Overlap,
    /// A value's line is not at the start of its interval.
    Misaligned,
}

impl fmt::Display for CsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsError::OutOfRange => write!(f, "interval out of range"),
            CsError::Overlap => write!(f, "intervals overlap"),
            CsError::Misaligned => write!(f, "value not at interval start"),
        }
    }
}

impl std::error::Error for CsError {}

/// An N-line consecutive-spreading network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CsNetwork {
    n: usize,
}

impl CsNetwork {
    /// Creates an N-line network.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "cs size must be 2^k >= 2");
        CsNetwork { n }
    }

    /// Line count.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Stage count: `log2(N)`.
    pub fn stages(&self) -> usize {
        self.n.trailing_zeros() as usize
    }

    /// Copy-cell count: one 2:1 selector per line per stage.
    pub fn cell_count(&self) -> usize {
        self.n * self.stages()
    }

    /// Configures spreading for non-overlapping intervals.
    ///
    /// Each `(lo, hi)` entry spreads the value entering at line `lo` over
    /// output lines `lo..hi`.
    ///
    /// # Errors
    /// Returns [`CsError`] if intervals are out of range or overlap.
    pub fn route(&self, intervals: &[(usize, usize)]) -> Result<CsConfig, CsError> {
        let mut owner = vec![usize::MAX; self.n];
        for (k, &(lo, hi)) in intervals.iter().enumerate() {
            if lo >= hi {
                continue; // empty interval: nothing to spread
            }
            if hi > self.n {
                return Err(CsError::OutOfRange);
            }
            for slot in &mut owner[lo..hi] {
                if *slot != usize::MAX {
                    return Err(CsError::Overlap);
                }
                *slot = k;
            }
        }
        let stages = self.stages();
        let mut copy = vec![vec![false; self.n]; stages];
        for &(lo, hi) in intervals {
            if lo >= hi {
                continue;
            }
            // Doubling schedule: after the stage with stride s, lines
            // { lo + m·s } ∩ [lo, hi) hold the value.
            let mut occupied: Vec<usize> = vec![lo];
            for (si, stage) in copy.iter_mut().enumerate() {
                let stride = self.n >> (si + 1);
                let mut new = Vec::new();
                for &x in &occupied {
                    let y = x + stride;
                    if y < hi {
                        stage[y] = true;
                        new.push(y);
                    }
                }
                occupied.extend(new);
            }
        }
        Ok(CsConfig { copy })
    }

    /// Applies a configuration to input line values; `None` lines are
    /// empty.
    pub fn evaluate<T: Copy>(&self, cfg: &CsConfig, inputs: &[Option<T>]) -> Vec<Option<T>> {
        assert_eq!(inputs.len(), self.n);
        let mut lines = inputs.to_vec();
        for (si, stage) in cfg.copy.iter().enumerate() {
            let stride = self.n >> (si + 1);
            let prev = lines.clone();
            for (line, &c) in stage.iter().enumerate() {
                if c {
                    lines[line] = prev[line - stride];
                }
            }
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check(n: usize, intervals: Vec<(usize, usize)>) {
        let net = CsNetwork::new(n);
        let cfg = net.route(&intervals).expect("routable");
        let mut inputs = vec![None; n];
        for (k, &(lo, hi)) in intervals.iter().enumerate() {
            if lo < hi {
                inputs[lo] = Some(k);
            }
        }
        let out = net.evaluate(&cfg, &inputs);
        for (k, &(lo, hi)) in intervals.iter().enumerate() {
            for (line, o) in out.iter().enumerate().take(hi).skip(lo) {
                assert_eq!(*o, Some(k), "line {line} of interval {k}");
            }
        }
        // Lines outside every interval must not receive spurious copies of
        // interval starts that were overwritten... they may carry stale
        // input values but never a spread value.
        for line in 0..n {
            let inside = intervals.iter().any(|&(lo, hi)| line >= lo && line < hi);
            if !inside && out[line].is_some() {
                // Only acceptable if the line held an input and no one
                // overwrote it.
                assert_eq!(out[line], inputs[line], "stray copy at {line}");
            }
        }
    }

    #[test]
    fn single_full_broadcast() {
        check(8, vec![(0, 8)]);
        check(16, vec![(0, 16)]);
    }

    #[test]
    fn arbitrary_intervals() {
        check(8, vec![(1, 6)]);
        check(8, vec![(0, 3), (3, 5), (5, 8)]);
        check(16, vec![(2, 5), (7, 8), (9, 16)]);
        check(8, vec![(3, 5)]);
    }

    #[test]
    fn empty_intervals_allowed() {
        check(8, vec![(0, 0), (2, 4), (6, 6)]);
    }

    #[test]
    fn overlap_rejected() {
        let net = CsNetwork::new(8);
        assert_eq!(net.route(&[(0, 4), (3, 6)]).unwrap_err(), CsError::Overlap);
        assert_eq!(net.route(&[(4, 10)]).unwrap_err(), CsError::OutOfRange);
    }

    #[test]
    fn structural_counts() {
        let net = CsNetwork::new(16);
        assert_eq!(net.stages(), 4);
        assert_eq!(net.cell_count(), 64);
    }

    proptest! {
        #[test]
        fn random_interval_sets(seed in 0u64..3000) {
            let n = 64usize;
            // carve 0..n into random disjoint intervals with gaps
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || { s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407); (s >> 33) as usize };
            let mut intervals = Vec::new();
            let mut pos = 0usize;
            while pos < n {
                let gap = next() % 3;
                pos += gap;
                if pos >= n { break; }
                let len = 1 + next() % (n - pos);
                intervals.push((pos, pos + len));
                pos += len;
            }
            check(n, intervals);
        }
    }
}
