//! Mesh data network topology: dimension-ordered (XY) routes over a 2-D
//! grid of PE-attached routers.
//!
//! The simulator models contention by accounting one token per directed
//! link per cycle; this module owns the topology — link enumeration, route
//! computation and distance metrics (the paper quotes "6 cycle latency
//! through data network" for a corner-to-corner control transfer on the
//! 4×4 fabric: 6 hops).

/// A directed link of the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub u32);

/// Link direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Dir {
    East,
    West,
    South,
    North,
}

impl Dir {
    fn code(self) -> u32 {
        match self {
            Dir::East => 0,
            Dir::West => 1,
            Dir::South => 2,
            Dir::North => 3,
        }
    }
}

/// An R×C mesh topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesh {
    rows: usize,
    cols: usize,
}

impl Mesh {
    /// Creates an R×C mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
        Mesh { rows, cols }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of tiles.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Upper bound of the [`LinkId`] space (`4 · tiles`; not all ids are
    /// physical links, border directions are simply never produced).
    pub fn link_id_space(&self) -> usize {
        4 * self.pe_count()
    }

    /// Number of physical directed links.
    pub fn link_count(&self) -> usize {
        // horizontal: rows * (cols-1) in each direction; vertical likewise
        2 * (self.rows * (self.cols - 1) + self.cols * (self.rows - 1))
    }

    /// The directed link leaving `tile` in direction `dir`.
    ///
    /// # Panics
    /// Panics if the link would leave the grid.
    pub fn link(&self, tile: usize, dir: Dir) -> LinkId {
        let (r, c) = (tile / self.cols, tile % self.cols);
        let ok = match dir {
            Dir::East => c + 1 < self.cols,
            Dir::West => c > 0,
            Dir::South => r + 1 < self.rows,
            Dir::North => r > 0,
        };
        assert!(ok, "link {dir:?} from tile {tile} leaves the grid");
        LinkId((tile as u32) * 4 + dir.code())
    }

    /// Manhattan distance between two tiles.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        let (r0, c0) = (src / self.cols, src % self.cols);
        let (r1, c1) = (dst / self.cols, dst % self.cols);
        r0.abs_diff(r1) + c0.abs_diff(c1)
    }

    /// Dimension-ordered route: X first, then Y. Returns the traversed
    /// directed links; empty when `src == dst`.
    pub fn xy_route(&self, src: usize, dst: usize) -> Vec<LinkId> {
        assert!(src < self.pe_count() && dst < self.pe_count());
        let mut links = Vec::with_capacity(self.hops(src, dst));
        let (mut r, mut c) = (src / self.cols, src % self.cols);
        let (r1, c1) = (dst / self.cols, dst % self.cols);
        while c != c1 {
            let dir = if c < c1 { Dir::East } else { Dir::West };
            links.push(self.link(r * self.cols + c, dir));
            if c < c1 {
                c += 1;
            } else {
                c -= 1;
            }
        }
        while r != r1 {
            let dir = if r < r1 { Dir::South } else { Dir::North };
            links.push(self.link(r * self.cols + c, dir));
            if r < r1 {
                r += 1;
            } else {
                r -= 1;
            }
        }
        links
    }

    /// Dimension-ordered route, Y first then X — the alternative
    /// dimension order a congestion-aware router can fall back to when
    /// the XY path crosses a hot link.
    pub fn yx_route(&self, src: usize, dst: usize) -> Vec<LinkId> {
        assert!(src < self.pe_count() && dst < self.pe_count());
        let mut links = Vec::with_capacity(self.hops(src, dst));
        self.for_each_yx_link(src, dst, |l| links.push(l));
        links
    }

    /// Calls `f` for every directed link of the XY route from `src` to
    /// `dst`, without allocating. This is the hot-path query of the
    /// mapping explorer's cost model: per-candidate-placement link loads
    /// are accumulated by walking millions of these routes.
    pub fn for_each_xy_link(&self, src: usize, dst: usize, mut f: impl FnMut(LinkId)) {
        let (mut r, mut c) = (src / self.cols, src % self.cols);
        let (r1, c1) = (dst / self.cols, dst % self.cols);
        while c != c1 {
            let dir = if c < c1 { Dir::East } else { Dir::West };
            f(self.link(r * self.cols + c, dir));
            if c < c1 {
                c += 1;
            } else {
                c -= 1;
            }
        }
        while r != r1 {
            let dir = if r < r1 { Dir::South } else { Dir::North };
            f(self.link(r * self.cols + c, dir));
            if r < r1 {
                r += 1;
            } else {
                r -= 1;
            }
        }
    }

    /// Calls `f` for every directed link of the YX route (Y first).
    pub fn for_each_yx_link(&self, src: usize, dst: usize, mut f: impl FnMut(LinkId)) {
        let (mut r, mut c) = (src / self.cols, src % self.cols);
        let (r1, c1) = (dst / self.cols, dst % self.cols);
        while r != r1 {
            let dir = if r < r1 { Dir::South } else { Dir::North };
            f(self.link(r * self.cols + c, dir));
            if r < r1 {
                r += 1;
            } else {
                r -= 1;
            }
        }
        while c != c1 {
            let dir = if c < c1 { Dir::East } else { Dir::West };
            f(self.link(r * self.cols + c, dir));
            if c < c1 {
                c += 1;
            } else {
                c -= 1;
            }
        }
    }

    /// Tiles visited by the YX route, inclusive of both endpoints.
    pub fn path_tiles_yx(&self, src: usize, dst: usize) -> Vec<u16> {
        let mut tiles = vec![src as u16];
        let (mut r, mut c) = (src / self.cols, src % self.cols);
        let (r1, c1) = (dst / self.cols, dst % self.cols);
        while r != r1 {
            if r < r1 {
                r += 1;
            } else {
                r -= 1;
            }
            tiles.push((r * self.cols + c) as u16);
        }
        while c != c1 {
            if c < c1 {
                c += 1;
            } else {
                c -= 1;
            }
            tiles.push((r * self.cols + c) as u16);
        }
        tiles
    }

    /// The directed links of an arbitrary tile walk, or `None` when a
    /// step is not between mesh neighbours (route-legality query used by
    /// the compiler's placement tests and the explored-mapping checks).
    pub fn links_of_path(&self, path: &[u16]) -> Option<Vec<LinkId>> {
        let mut links = Vec::with_capacity(path.len().saturating_sub(1));
        for w in path.windows(2) {
            let (from, to) = (w[0] as usize, w[1] as usize);
            if from >= self.pe_count() || to >= self.pe_count() {
                return None;
            }
            let (r0, c0) = (from / self.cols, from % self.cols);
            let (r1, c1) = (to / self.cols, to % self.cols);
            let dir = match (r1 as i64 - r0 as i64, c1 as i64 - c0 as i64) {
                (0, 1) => Dir::East,
                (0, -1) => Dir::West,
                (1, 0) => Dir::South,
                (-1, 0) => Dir::North,
                _ => return None,
            };
            links.push(self.link(from, dir));
        }
        Some(links)
    }

    /// Tiles visited by the XY route, inclusive of both endpoints.
    pub fn path_tiles(&self, src: usize, dst: usize) -> Vec<u16> {
        let mut tiles = vec![src as u16];
        let (mut r, mut c) = (src / self.cols, src % self.cols);
        let (r1, c1) = (dst / self.cols, dst % self.cols);
        while c != c1 {
            if c < c1 {
                c += 1;
            } else {
                c -= 1;
            }
            tiles.push((r * self.cols + c) as u16);
        }
        while r != r1 {
            if r < r1 {
                r += 1;
            } else {
                r -= 1;
            }
            tiles.push((r * self.cols + c) as u16);
        }
        tiles
    }

    /// The tile nearest the array controller/memory corner (tile 0), used
    /// for CCU round-trip distances.
    pub fn ccu_tile(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_4x4() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.pe_count(), 16);
        assert_eq!(m.link_count(), 2 * (4 * 3 + 4 * 3));
        assert_eq!(m.hops(0, 15), 6, "corner-to-corner is the paper's 6 hops");
    }

    #[test]
    fn xy_route_shape() {
        let m = Mesh::new(4, 4);
        let route = m.xy_route(0, 15);
        assert_eq!(route.len(), 6);
        // X-first: three east links then three south links
        assert_eq!(route[0], m.link(0, Dir::East));
        assert_eq!(route[2], m.link(2, Dir::East));
        assert_eq!(route[3], m.link(3, Dir::South));
        assert!(m.xy_route(5, 5).is_empty());
    }

    #[test]
    fn path_tiles_inclusive() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.path_tiles(0, 5), vec![0, 1, 5]);
        assert_eq!(m.path_tiles(5, 5), vec![5]);
        assert_eq!(m.path_tiles(10, 1), vec![10, 9, 5, 1]);
    }

    #[test]
    #[should_panic(expected = "leaves the grid")]
    fn border_link_panics() {
        let m = Mesh::new(2, 2);
        let _ = m.link(1, Dir::East);
    }

    proptest! {
        #[test]
        fn route_length_is_manhattan(src in 0usize..16, dst in 0usize..16) {
            let m = Mesh::new(4, 4);
            prop_assert_eq!(m.xy_route(src, dst).len(), m.hops(src, dst));
            prop_assert_eq!(m.path_tiles(src, dst).len(), m.hops(src, dst) + 1);
        }

        #[test]
        fn links_unique_along_route(src in 0usize..36, dst in 0usize..36) {
            let m = Mesh::new(6, 6);
            let route = m.xy_route(src, dst);
            let set: std::collections::HashSet<_> = route.iter().collect();
            prop_assert_eq!(set.len(), route.len());
        }

        #[test]
        fn yx_matches_xy_length_and_endpoints(src in 0usize..36, dst in 0usize..36) {
            let m = Mesh::new(6, 6);
            prop_assert_eq!(m.yx_route(src, dst).len(), m.hops(src, dst));
            let p = m.path_tiles_yx(src, dst);
            prop_assert_eq!(p.len(), m.hops(src, dst) + 1);
            prop_assert_eq!(p[0] as usize, src);
            prop_assert_eq!(*p.last().unwrap() as usize, dst);
            // Both dimension orders are legal walks.
            prop_assert_eq!(m.links_of_path(&p).unwrap(), m.yx_route(src, dst));
            prop_assert_eq!(
                m.links_of_path(&m.path_tiles(src, dst)).unwrap(),
                m.xy_route(src, dst)
            );
        }

        #[test]
        fn link_walkers_match_routes(src in 0usize..16, dst in 0usize..16) {
            let m = Mesh::new(4, 4);
            let mut xy = Vec::new();
            m.for_each_xy_link(src, dst, |l| xy.push(l));
            prop_assert_eq!(xy, m.xy_route(src, dst));
            let mut yx = Vec::new();
            m.for_each_yx_link(src, dst, |l| yx.push(l));
            prop_assert_eq!(yx, m.yx_route(src, dst));
        }
    }

    #[test]
    fn nonsquare_routes_are_legal_walks_with_correct_endpoints() {
        // Exhaustive all-pairs legality on non-square and larger
        // fabrics: both dimension orders must produce Manhattan-length
        // legal mesh walks whose links match the allocation-free
        // walkers.
        for (rows, cols) in [(4, 6), (6, 4), (8, 8)] {
            let m = Mesh::new(rows, cols);
            assert_eq!(m.link_count(), 2 * (rows * (cols - 1) + cols * (rows - 1)));
            for src in 0..m.pe_count() {
                for dst in 0..m.pe_count() {
                    let what = format!("{rows}x{cols} {src}->{dst}");
                    let xy = m.xy_route(src, dst);
                    let yx = m.yx_route(src, dst);
                    assert_eq!(xy.len(), m.hops(src, dst), "{what}: xy length");
                    assert_eq!(yx.len(), m.hops(src, dst), "{what}: yx length");
                    for (tag, tiles) in [
                        ("xy", m.path_tiles(src, dst)),
                        ("yx", m.path_tiles_yx(src, dst)),
                    ] {
                        assert_eq!(tiles[0] as usize, src, "{what}: {tag} start");
                        assert_eq!(*tiles.last().unwrap() as usize, dst, "{what}: {tag} end");
                        assert!(
                            m.links_of_path(&tiles).is_some(),
                            "{what}: {tag} path is not a legal mesh walk"
                        );
                    }
                    assert_eq!(
                        m.links_of_path(&m.path_tiles(src, dst)).unwrap(),
                        xy,
                        "{what}"
                    );
                    assert_eq!(
                        m.links_of_path(&m.path_tiles_yx(src, dst)).unwrap(),
                        yx,
                        "{what}"
                    );
                    let mut walked = Vec::new();
                    m.for_each_xy_link(src, dst, |l| walked.push(l));
                    assert_eq!(walked, xy, "{what}: xy walker");
                    walked.clear();
                    m.for_each_yx_link(src, dst, |l| walked.push(l));
                    assert_eq!(walked, yx, "{what}: yx walker");
                }
            }
        }
    }

    #[test]
    fn nonsquare_corner_distances() {
        assert_eq!(Mesh::new(4, 6).hops(0, 23), 8);
        assert_eq!(Mesh::new(6, 4).hops(0, 23), 8);
        assert_eq!(Mesh::new(8, 8).hops(0, 63), 14);
    }

    #[test]
    fn illegal_paths_rejected() {
        let m = Mesh::new(4, 4);
        assert!(m.links_of_path(&[0, 5]).is_none(), "diagonal step");
        assert!(m.links_of_path(&[0, 2]).is_none(), "two-tile jump");
        assert!(m.links_of_path(&[0, 99]).is_none(), "off-grid tile");
        assert_eq!(m.links_of_path(&[7]).unwrap(), vec![]);
    }
}
