//! Benes rearrangeable non-blocking network.
//!
//! An N×N Benes network (N a power of two) consists of `2·log2(N) − 1`
//! stages of N/2 two-by-two switches. It can realize *any* permutation of
//! its inputs — the property the paper's control network design starts
//! from (Fig 6a) because it needs far fewer switches than a crossbar.
//!
//! Routing uses the classic *looping algorithm*: connections sharing an
//! input switch must use different subnetworks, and likewise for output
//! switches; alternating these constraints around each loop 2-colors the
//! connection graph, yielding the two half-size sub-permutations that are
//! routed recursively.

use std::fmt;

/// Configuration of one Benes network: a recursive switch-setting tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BenesConfig {
    /// 2×2 base case: `cross == false` routes straight.
    Leaf {
        /// Whether the single switch crosses its inputs.
        cross: bool,
    },
    /// Recursive case.
    Node {
        /// Input-stage switch settings (`true` = cross), N/2 entries.
        in_cross: Vec<bool>,
        /// Output-stage switch settings, N/2 entries.
        out_cross: Vec<bool>,
        /// Upper N/2 subnetwork.
        upper: Box<BenesConfig>,
        /// Lower N/2 subnetwork.
        lower: Box<BenesConfig>,
    },
}

/// Routing failure: the requested mapping is not a permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotAPermutation;

impl fmt::Display for NotAPermutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "requested mapping is not a permutation")
    }
}

impl std::error::Error for NotAPermutation {}

/// An N×N Benes network descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Benes {
    n: usize,
}

impl Benes {
    /// Creates a descriptor for an N×N network.
    ///
    /// # Panics
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "benes size must be 2^k >= 2");
        Benes { n }
    }

    /// Network radix.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of switch stages: `2·log2(N) − 1`.
    pub fn stages(&self) -> usize {
        2 * self.n.trailing_zeros() as usize - 1
    }

    /// Total number of 2×2 switches: `stages · N/2`.
    pub fn switch_count(&self) -> usize {
        self.stages() * self.n / 2
    }

    /// Configures the network to realize `perm` (`perm[i]` is the output
    /// reached from input `i`) using the looping algorithm.
    ///
    /// # Errors
    /// Returns [`NotAPermutation`] if `perm` is not a permutation of
    /// `0..n`.
    pub fn route(&self, perm: &[usize]) -> Result<BenesConfig, NotAPermutation> {
        if perm.len() != self.n {
            return Err(NotAPermutation);
        }
        let mut seen = vec![false; self.n];
        for &p in perm {
            if p >= self.n || seen[p] {
                return Err(NotAPermutation);
            }
            seen[p] = true;
        }
        Ok(route_rec(perm))
    }

    /// Applies a configuration: returns `out` where `out[perm[i]] = i`,
    /// i.e. the input index arriving at each output.
    pub fn evaluate(&self, cfg: &BenesConfig) -> Vec<usize> {
        let inputs: Vec<usize> = (0..self.n).collect();
        eval_rec(cfg, &inputs)
    }
}

fn route_rec(perm: &[usize]) -> BenesConfig {
    let n = perm.len();
    if n == 2 {
        return BenesConfig::Leaf {
            cross: perm[0] == 1,
        };
    }
    let mut inv = vec![0usize; n];
    for (i, &o) in perm.iter().enumerate() {
        inv[o] = i;
    }
    // assign[i] == Some(true) => connection from input i uses the upper
    // subnetwork.
    let mut assign: Vec<Option<bool>> = vec![None; n];
    for seed in 0..n {
        if assign[seed].is_some() {
            continue;
        }
        let mut cur = seed;
        let color = true;
        loop {
            assign[cur] = Some(color);
            // The output partner of cur's output must use the opposite
            // subnetwork (they share an output switch).
            let partner_out = perm[cur] ^ 1;
            let partner_in = inv[partner_out];
            if assign[partner_in].is_some() {
                break;
            }
            assign[partner_in] = Some(!color);
            // partner_in's input-switch partner must use the opposite of
            // partner_in, i.e. `color` again.
            let next = partner_in ^ 1;
            if assign[next].is_some() {
                break;
            }
            cur = next;
        }
    }
    let half = n / 2;
    let mut in_cross = vec![false; half];
    let mut out_cross = vec![false; half];
    let mut up_perm = vec![usize::MAX; half];
    let mut low_perm = vec![usize::MAX; half];
    for i in 0..n {
        let upper = assign[i].expect("all assigned");
        let s = i / 2; // input switch
        let t = perm[i] / 2; // output switch
        if upper {
            up_perm[s] = t;
        } else {
            low_perm[s] = t;
        }
        // Input switch: straight sends even input to upper subnet.
        if (i & 1 == 0) != upper {
            in_cross[s] = true;
        }
        // Output switch: straight delivers upper subnet to even output.
        if (perm[i] & 1 == 0) != upper {
            out_cross[t] = true;
        }
    }
    debug_assert!(up_perm.iter().all(|&x| x != usize::MAX));
    debug_assert!(low_perm.iter().all(|&x| x != usize::MAX));
    BenesConfig::Node {
        in_cross,
        out_cross,
        upper: Box::new(route_rec(&up_perm)),
        lower: Box::new(route_rec(&low_perm)),
    }
}

fn eval_rec(cfg: &BenesConfig, inputs: &[usize]) -> Vec<usize> {
    match cfg {
        BenesConfig::Leaf { cross } => {
            if *cross {
                vec![inputs[1], inputs[0]]
            } else {
                inputs.to_vec()
            }
        }
        BenesConfig::Node {
            in_cross,
            out_cross,
            upper,
            lower,
        } => {
            let half = inputs.len() / 2;
            let mut up_in = vec![0usize; half];
            let mut low_in = vec![0usize; half];
            for s in 0..half {
                let (a, b) = (inputs[2 * s], inputs[2 * s + 1]);
                if in_cross[s] {
                    up_in[s] = b;
                    low_in[s] = a;
                } else {
                    up_in[s] = a;
                    low_in[s] = b;
                }
            }
            let up_out = eval_rec(upper, &up_in);
            let low_out = eval_rec(lower, &low_in);
            let mut out = vec![0usize; inputs.len()];
            for t in 0..half {
                if out_cross[t] {
                    out[2 * t] = low_out[t];
                    out[2 * t + 1] = up_out[t];
                } else {
                    out[2 * t] = up_out[t];
                    out[2 * t + 1] = low_out[t];
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_perm(n: usize, perm: Vec<usize>) {
        let net = Benes::new(n);
        let cfg = net.route(&perm).expect("routable");
        let out = net.evaluate(&cfg);
        for (i, &o) in perm.iter().enumerate() {
            assert_eq!(out[o], i, "input {i} should reach output {o}");
        }
    }

    #[test]
    fn identity_and_reversal() {
        check_perm(8, (0..8).collect());
        check_perm(8, (0..8).rev().collect());
        check_perm(2, vec![1, 0]);
        check_perm(2, vec![0, 1]);
    }

    #[test]
    fn all_permutations_of_4() {
        // exhaustive for N=4 (24 permutations)
        let mut perm = [0usize, 1, 2, 3];
        permutohedron_heap(&mut perm, &mut |p| check_perm(4, p.to_vec()));
    }

    /// Minimal Heap's algorithm to avoid a dependency.
    fn permutohedron_heap(arr: &mut [usize; 4], f: &mut impl FnMut(&[usize; 4])) {
        fn heap(k: usize, arr: &mut [usize; 4], f: &mut impl FnMut(&[usize; 4])) {
            if k == 1 {
                f(arr);
                return;
            }
            for i in 0..k {
                heap(k - 1, arr, f);
                if k.is_multiple_of(2) {
                    arr.swap(i, k - 1);
                } else {
                    arr.swap(0, k - 1);
                }
            }
        }
        heap(4, arr, f);
    }

    #[test]
    fn structural_counts() {
        let n64 = Benes::new(64);
        assert_eq!(n64.stages(), 11);
        assert_eq!(n64.switch_count(), 11 * 32);
        let n16 = Benes::new(16);
        assert_eq!(n16.stages(), 7);
        assert_eq!(n16.switch_count(), 7 * 8);
    }

    #[test]
    fn rejects_non_permutations() {
        let net = Benes::new(4);
        assert!(net.route(&[0, 0, 1, 2]).is_err());
        assert!(net.route(&[0, 1, 2]).is_err());
        assert!(net.route(&[0, 1, 2, 9]).is_err());
    }

    #[test]
    #[should_panic(expected = "benes size must be 2^k")]
    fn rejects_non_power_of_two() {
        let _ = Benes::new(6);
    }

    proptest! {
        #[test]
        fn routes_any_permutation_64(seed in 0u64..5000) {
            // Fisher-Yates with a tiny LCG for determinism.
            let n = 64usize;
            let mut perm: Vec<usize> = (0..n).collect();
            let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            check_perm(n, perm);
        }

        #[test]
        fn routes_any_permutation_16(seed in 0u64..2000) {
            let n = 16usize;
            let mut perm: Vec<usize> = (0..n).collect();
            let mut s = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            for i in (1..n).rev() {
                s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let j = (s >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            check_perm(n, perm);
        }
    }
}
