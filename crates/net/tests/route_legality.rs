//! Route legality over exhaustive small cases: every routed path must be
//! conflict-free and must reach its sink.
//!
//! The inline unit tests of each module sample randomly; these tests
//! close the gap by enumerating *every* permutation / interval partition /
//! unicast assignment at small sizes, so any systematic routing bug at
//! the base of the recursion is caught deterministically.

use marionette_net::{Benes, BenesConfig, CsBenesNetwork, CsNetwork, Dir, Mesh};

// ---------------------------------------------------------------------
// Benes: exhaustive permutations
// ---------------------------------------------------------------------

/// Heap's algorithm over a vector, calling `f` on every permutation.
fn for_each_permutation(n: usize, f: &mut impl FnMut(&[usize])) {
    fn heap(k: usize, arr: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if k <= 1 {
            f(arr);
            return;
        }
        for i in 0..k {
            heap(k - 1, arr, f);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut arr: Vec<usize> = (0..n).collect();
    heap(n, &mut arr, f);
}

/// Structural sanity of a Benes configuration: every recursion level has
/// the right switch-vector lengths for its size.
fn assert_benes_shape(cfg: &BenesConfig, n: usize) {
    match cfg {
        BenesConfig::Leaf { .. } => assert_eq!(n, 2, "leaf at size {n}"),
        BenesConfig::Node {
            in_cross,
            out_cross,
            upper,
            lower,
        } => {
            assert_eq!(in_cross.len(), n / 2);
            assert_eq!(out_cross.len(), n / 2);
            assert_benes_shape(upper, n / 2);
            assert_benes_shape(lower, n / 2);
        }
    }
}

fn check_benes_exhaustive(n: usize) {
    let net = Benes::new(n);
    let mut count = 0usize;
    for_each_permutation(n, &mut |perm| {
        let cfg = net.route(perm).expect("any permutation is routable");
        assert_benes_shape(&cfg, n);
        let out = net.evaluate(&cfg);
        // Delivery: input i reaches exactly output perm[i] ...
        for (i, &o) in perm.iter().enumerate() {
            assert_eq!(out[o], i, "input {i} must reach output {o} ({perm:?})");
        }
        // ... and conflict-freedom: the realized mapping is a bijection
        // (no output line carries two inputs, none is starved).
        let mut seen = vec![false; n];
        for &src in &out {
            assert!(src < n && !seen[src], "line conflict in {perm:?}");
            seen[src] = true;
        }
        count += 1;
    });
    let expected: usize = (1..=n).product();
    assert_eq!(count, expected);
}

#[test]
fn benes_all_permutations_of_4() {
    check_benes_exhaustive(4);
}

#[test]
fn benes_all_permutations_of_8() {
    check_benes_exhaustive(8); // 40 320 permutations
}

// ---------------------------------------------------------------------
// CS: exhaustive disjoint-interval assignments
// ---------------------------------------------------------------------

/// Enumerates every set of disjoint, non-empty intervals over `0..n`
/// (each line is a gap, starts an interval, or extends the previous one).
fn for_each_interval_set(n: usize, f: &mut impl FnMut(&[(usize, usize)])) {
    fn rec(
        pos: usize,
        n: usize,
        acc: &mut Vec<(usize, usize)>,
        f: &mut impl FnMut(&[(usize, usize)]),
    ) {
        if pos == n {
            f(acc);
            return;
        }
        // gap at pos
        rec(pos + 1, n, acc, f);
        // interval [pos, end) for every end
        for end in pos + 1..=n {
            acc.push((pos, end));
            rec(end, n, acc, f);
            acc.pop();
        }
    }
    rec(0, n, &mut Vec::new(), f);
}

#[test]
fn cs_all_interval_partitions_of_8() {
    let n = 8usize;
    let net = CsNetwork::new(n);
    let mut count = 0usize;
    for_each_interval_set(n, &mut |intervals| {
        count += 1;
        let cfg = net.route(intervals).expect("disjoint intervals route");
        // Conflict-freedom: the combined configuration is exactly the
        // disjoint union of each interval's standalone configuration —
        // no copy cell serves two intervals.
        let mut cells = 0usize;
        for &iv in intervals {
            let solo = net.route(&[iv]).expect("single interval routes");
            for (stage, (c, s)) in cfg.copy.iter().zip(&solo.copy).enumerate() {
                for (line, &set) in s.iter().enumerate() {
                    if set {
                        assert!(
                            c[line],
                            "stage {stage} line {line}: combined config lost a copy"
                        );
                        cells += 1;
                    }
                }
            }
        }
        let total: usize = cfg
            .copy
            .iter()
            .map(|s| s.iter().filter(|&&b| b).count())
            .sum();
        assert_eq!(cells, total, "copy cell shared between intervals");
        // Delivery: every line of every interval receives its source.
        let mut inputs = vec![None; n];
        for (k, &(lo, _)) in intervals.iter().enumerate() {
            inputs[lo] = Some(k);
        }
        let out = net.evaluate(&cfg, &inputs);
        for (k, &(lo, hi)) in intervals.iter().enumerate() {
            for (line, o) in out.iter().enumerate().take(hi).skip(lo) {
                assert_eq!(*o, Some(k), "line {line} of {intervals:?}");
            }
        }
    });
    // Interval sets over 8 lines: a(n) with a(0)=1, a(k)=a(k-1)+sum — just
    // assert we enumerated a non-trivial space.
    assert!(count > 1000, "only {count} interval sets enumerated");
}

// ---------------------------------------------------------------------
// CS-Benes: exhaustive unicast assignments on a small instance
// ---------------------------------------------------------------------

#[test]
fn csbenes_all_unicast_assignments_4x4() {
    // Every function {output -> driver in {none, src0..3}}: 5^4 cases.
    let net = CsBenesNetwork::new(4, 4);
    for code in 0..5usize.pow(4) {
        let mut driver = [usize::MAX; 4];
        let mut c = code;
        for d in &mut driver {
            let v = c % 5;
            c /= 5;
            *d = v; // 0 = undriven, 1..=4 = src 0..=3
        }
        let mut casts: Vec<(usize, Vec<usize>)> = (0..4).map(|s| (s, vec![])).collect();
        for (out, &d) in driver.iter().enumerate() {
            if d > 0 {
                casts[d - 1].1.push(out);
            }
        }
        let cfg = net.route(&casts).expect("fanout <= lines always routes");
        let inputs: Vec<Option<u32>> = (0..4).map(|s| Some(s as u32 + 10)).collect();
        let out = net.evaluate(&cfg, &inputs);
        for (o, &d) in driver.iter().enumerate() {
            let expect = if d == 0 {
                None
            } else {
                Some(d as u32 - 1 + 10)
            };
            assert_eq!(out[o], expect, "case {code}, output {o}");
        }
    }
}

#[test]
fn csbenes_every_source_can_broadcast_paper_instance() {
    let net = CsBenesNetwork::paper_4x4();
    let all: Vec<usize> = (0..net.ports()).collect();
    for src in 0..net.ports() {
        let cfg = net.route(&[(src, all.clone())]).expect("full broadcast");
        let mut inputs = vec![None; net.ports()];
        inputs[src] = Some(7u32);
        let out = net.evaluate(&cfg, &inputs);
        assert!(out.iter().all(|&v| v == Some(7)), "src {src} broadcast");
    }
}

// ---------------------------------------------------------------------
// Mesh: every XY route is a connected path that reaches its sink
// ---------------------------------------------------------------------

#[test]
fn mesh_xy_routes_are_connected_and_terminate() {
    let m = Mesh::new(4, 4);
    for src in 0..m.pe_count() {
        for dst in 0..m.pe_count() {
            let links = m.xy_route(src, dst);
            assert_eq!(links.len(), m.hops(src, dst));
            // Walk the links: each must leave the tile we are on, and the
            // walk must end at dst.
            let mut tile = src;
            for l in &links {
                let from = (l.0 / 4) as usize;
                assert_eq!(from, tile, "route {src}->{dst} teleports");
                let dir = l.0 % 4;
                let (r, c) = (tile / m.cols(), tile % m.cols());
                tile = match dir {
                    0 => tile + 1,        // East
                    1 => tile - 1,        // West
                    2 => tile + m.cols(), // South
                    3 => tile - m.cols(), // North
                    _ => unreachable!(),
                };
                // stays on the grid
                let (nr, nc) = (tile / m.cols(), tile % m.cols());
                assert!(nr < m.rows() && nc < m.cols());
                assert_eq!(r.abs_diff(nr) + c.abs_diff(nc), 1, "non-adjacent hop");
            }
            assert_eq!(tile, dst, "route {src}->{dst} misses its sink");
            // Path tiles agree with the link walk.
            let tiles = m.path_tiles(src, dst);
            assert_eq!(tiles.first().copied(), Some(src as u16));
            assert_eq!(tiles.last().copied(), Some(dst as u16));
        }
    }
}

#[test]
fn mesh_link_ids_unique_per_direction() {
    let m = Mesh::new(4, 4);
    let mut seen = std::collections::HashSet::new();
    for t in 0..m.pe_count() {
        for d in [Dir::East, Dir::West, Dir::South, Dir::North] {
            let (r, c) = (t / m.cols(), t % m.cols());
            let ok = match d {
                Dir::East => c + 1 < m.cols(),
                Dir::West => c > 0,
                Dir::South => r + 1 < m.rows(),
                Dir::North => r > 0,
            };
            if ok {
                assert!(seen.insert(m.link(t, d)), "duplicate link id");
            }
        }
    }
    assert_eq!(seen.len(), m.link_count());
}
