//! Offline stand-in for the `rand` crate.
//!
//! The repository must build with no network access and no registry
//! cache, so the tiny API surface the workspace uses (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over primitive ranges,
//! `SliceRandom::shuffle`) is re-implemented here over a splitmix64
//! generator. Streams are deterministic per seed, which is all the
//! workload generators require; they make no claim of statistical or
//! cryptographic quality and the values differ from upstream `rand`.

#![warn(missing_docs)]

use std::ops::Range;

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable from a [`Range`] by [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Samples uniformly from `range` using `rng`.
    fn sample(range: Range<Self>, rng: &mut StdRng) -> Self;
}

/// Uniform sampling helpers over a raw 64-bit source.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: AsMut<StdRng>,
    {
        T::sample(range, self.as_mut())
    }
}

/// The standard deterministic generator (splitmix64).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl AsMut<StdRng> for StdRng {
    fn as_mut(&mut self) -> &mut StdRng {
        self
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

macro_rules! int_sample {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for $t {
            fn sample(range: Range<Self>, rng: &mut StdRng) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                let v = rng.next_u64() % span;
                ((range.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

int_sample!(i32 => i64, u32 => u64, i64 => i64, u64 => u64, usize => u64, u8 => u64, i8 => i64, u16 => u64, i16 => i64);

impl SampleRange for f32 {
    fn sample(range: Range<Self>, rng: &mut StdRng) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        // 24 mantissa bits of uniformity in [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f64 {
    fn sample(range: Range<Self>, rng: &mut StdRng) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Generator type aliases, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, StdRng};

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// In-place Fisher-Yates shuffle.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let f: f32 = r.gen_range(0.5f32..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut StdRng::seed_from_u64(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "shuffle should move things");
    }
}
