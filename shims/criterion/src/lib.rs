//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — over a simple
//! median-of-samples wall-clock harness. There is no statistical
//! analysis, plotting or baseline comparison; results print one line per
//! benchmark.

#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl Bencher {
    fn new(sample_count: u32) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Times `f`, collecting the configured number of samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // one warmup call
        black_box(f());
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / self.iters_per_sample);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn run_one(label: &str, sample_count: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(sample_count);
    f(&mut b);
    match b.median() {
        Some(t) => println!("bench {label:<40} median {t:>12.3?} ({sample_count} samples)"),
        None => println!("bench {label:<40} (no measurement)"),
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: u32,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1) as u32;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_count, &mut f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_count, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_count: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            name: name.into(),
            sample_count,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into().to_string();
        run_one(&label, self.sample_count, &mut f);
        self
    }
}

/// Declares a benchmark group runner function, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran >= 3, "closure should run warmup + samples, ran {ran}");
    }

    #[test]
    fn id_formats_with_parameter() {
        assert_eq!(
            BenchmarkId::new("benes_route", 64).to_string(),
            "benes_route/64"
        );
    }
}
