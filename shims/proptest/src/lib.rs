//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the `proptest!` macro over `ident in strategy` arguments,
//! `prop_assert*`, primitive range strategies, `any::<T>()` and
//! `collection::vec` — with a deterministic per-test RNG instead of
//! shrinking case generation. Failures report the sampled inputs via the
//! standard panic message; there is no shrinking.

#![warn(missing_docs)]

use std::ops::Range;

/// Per-test deterministic RNG (splitmix64 seeded from the test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for a named test; the same name always yields the
    /// same case sequence so failures reproduce.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical unconstrained strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy yielding arbitrary values of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u8>()` etc).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing fixed-length vectors of an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vectors of exactly `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` that samples its strategies for the configured number of
/// cases and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let _ = case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn vectors_have_requested_length(v in crate::collection::vec(any::<u8>(), 4)) {
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
